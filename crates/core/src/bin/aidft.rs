//! `aidft` — command-line front end for the DFT toolkit.
//!
//! ```text
//! aidft stats    <design.bench>            netlist statistics
//! aidft atpg     <design.bench>            run ATPG, print sign-off
//! aidft flow     <design.bench> [chains]   full flow (scan+ATPG+EDT)
//! aidft bist     <design.bench> [patterns] logic-BIST session
//! aidft gen      <name> <out.bench>        write a generated circuit
//! aidft diagnose <design.bench> <log.json> diagnose a failure log
//! aidft repair   [--max-bad-cores N]       BISR + core-harvesting demo
//! aidft serve    <design.bench>            test-floor fleet server
//! aidft top      <addr>                    live fleet dashboard
//! aidft fleet-stats <addr>                 one-shot stats scrape
//! aidft fsck     <journal> [--repair]      validate/repair a journal
//! ```
//!
//! `serve` streams compressed pattern windows to a simulated die fleet
//! over loopback TCP and verifies the uploaded MISR signatures. It
//! accepts `--dies N` (fleet size, default 16), `--window K` (patterns
//! per window, default 32), `--client-threads N` (concurrent die
//! clients, default from `--threads`), `--max-reconnects N` (circuit-
//! breaker budget per die before it is quarantined `Untestable`,
//! default 32), and `--backoff-base MS` (base of the deterministic
//! reconnect backoff schedule, default 1; `0` disables backoff), plus
//! the durability flags below (`--checkpoint-every` counts dies). The
//! final fleet state is bit-identical for any thread count and any
//! kill/resume split; a fleet with an unreachable die completes and
//! reports it quarantined instead of hanging.
//!
//! Live telemetry (strictly read-only — the final fleet state is
//! unchanged with it on or off):
//!
//! - `--stats-addr ADDR` — publish a scrape endpoint for the run
//!   (Prometheus text at `/metrics`, JSON at `/stats.json`; `:0` picks
//!   an ephemeral port, printed on stderr). Implies suppressing the
//!   one-line progress spinner.
//! - `--events PATH` — append an `aidft-telemetry-v1` JSONL event
//!   stream (session transitions, quarantines, checkpoints, chaos
//!   injections, retests) to a framed journal at PATH.
//!
//! `aidft top <addr> [--interval-ms N] [--frames N]` attaches to a
//! serving fleet's `--stats-addr` endpoint and redraws a multi-line
//! dashboard (fleet gauges, breaker states, rolling rates, latency
//! quantiles) until the run ends. `aidft fleet-stats <addr>
//! [--metrics]` scrapes once and prints the JSON (or raw Prometheus
//! text) to stdout.
//!
//! `atpg`, `flow`, and `bist` accept `--threads N` (`0` = one worker per
//! hardware thread, the default; `1` = serial). The `AIDFT_THREADS`
//! environment variable sets the default for all commands. Any thread
//! count produces bit-identical results.
//!
//! `atpg`, `flow`, `bist`, and `repair` also accept:
//!
//! - `--metrics-json <path>` — the hot-path metric snapshot of the run
//!   (PODEM backtracks, fault-sim gate evaluations, EDT encode stats,
//!   phase timers) as JSON. See EXPERIMENTS.md for the schema.
//! - `--trace <path>` — a Chrome `trace_event` file of the run's span
//!   tree, loadable in `ui.perfetto.dev` or `chrome://tracing`.
//! - `--trace-jsonl <path>` — the same spans as a line-oriented
//!   `aidft-trace-v1` journal (schema in EXPERIMENTS.md).
//!
//! Any of those paths may be `-` to write the payload to stdout; the
//! human-readable report then moves to stderr so the machine output
//! stays clean. When stderr is an interactive terminal, the long
//! commands additionally show a one-line live progress spinner (current
//! phase plus pattern/fault counters), erased before the report prints.
//!
//! # Durability
//!
//! `atpg` and `flow` are durable: Ctrl-C (SIGINT) or SIGTERM drains the
//! engines cleanly at a fault boundary instead of killing the process
//! mid-write. Related flags:
//!
//! - `--checkpoint <path>` — append resume checkpoints to an
//!   `aidft-ckpt-v1` journal (schema in EXPERIMENTS.md).
//! - `--checkpoint-every <n>` — checkpoint cadence in faults
//!   (default 64; `0` = phase boundaries only).
//! - `--phase-timeout <ms>` — per-phase deadline; an overrunning phase
//!   is drained and checkpointed like a signal.
//! - `--resume <path>` — continue from the newest complete checkpoint
//!   in the journal; the finished run is bit-identical to an
//!   uninterrupted one.
//! - `--checkpoint-replicas <n>` — mirror every checkpoint append to
//!   `n` journal replicas (`<path>`, `<path>.r1`, ...). Resume falls
//!   back to the newest intact record across all replicas, so one
//!   rotted or torn copy costs nothing.
//!
//! The `AIDFT_CHAOS` environment variable enables deterministic fault
//! injection (worker panics, delayed batches, torn checkpoint writes,
//! deadline-clock skips, and disk faults on journal appends — `eio=`,
//! `shortwrite=`, `bitrot=`, `fsync_fail=`) for durability testing;
//! see EXPERIMENTS.md for the knob table.
//!
//! `aidft fsck <journal> [--repair]` validates any of the three framed
//! journal formats (`aidft-ckpt-v1`, `aidft-serve-v2`,
//! `aidft-telemetry-v1`): per-record verdicts (intact / bad-crc /
//! torn), scrub-index cross-check, and a summary verdict. `--repair`
//! rewrites the journal as a clean copy holding exactly the intact
//! records. A journal with zero intact records exits `5`.
//!
//! Exit codes: `0` success, `1` runtime failure, `2` usage error,
//! `3` interrupted (a resume checkpoint path is printed when one was
//! written), `4` lost worker (panic), `5` journal corrupt beyond
//! repair (`fsck`).
//!
//! Generator names for `gen`: anything from the benchmark suite (`c17`,
//! `s27`, `add8`, `mult8`, `alu8`, `mac4`, `sys4x4`, ...).

use std::fs;
use std::io::{IsTerminal, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dft_core::atpg::{Atpg, AtpgConfig, AtpgError, Durability};
use dft_core::bist::LogicBist;
use dft_core::checkpoint::{fsck, CancelToken, ChaosConfig, CkptError, FramedJournal, Journal};
use dft_core::diagnosis::{diagnose, FailureLog};
use dft_core::logicsim::PatternSet;
use dft_core::metrics::MetricsHandle;
use dft_core::netlist::generators::benchmark_suite;
use dft_core::netlist::{kind_histogram, parse_bench, write_bench, Netlist, NetlistStats};
use dft_core::progress::{self, Dashboard, ProgressLine};
use dft_core::serve::{run_fleet, BackoffPolicy, ServeConfig, ServeError, ServeOpts, SERVE_FORMAT};
use dft_core::telemetry::{self, TelemetryConfig, TelemetrySession};
use dft_core::trace::{TraceConfig, TraceHandle, TraceSession};
use dft_core::{DftError, DftFlow, PartialResult};

/// Set by the `SIGINT`/`SIGTERM` handler; a watcher thread converts it
/// into a [`CancelToken`] fire so the engines drain cooperatively.
static SIGNAL_FIRED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNAL_FIRED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: the handler only touches an atomic flag, which is
    // async-signal-safe; `signal` itself is a plain libc call.
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {}

/// Installs the signal handler and spawns the watcher thread that trips
/// `token` when a signal lands. The thread exits once the token fires
/// (from the signal or from a phase deadline).
fn cancel_on_signals(token: CancelToken) {
    install_signal_handler();
    std::thread::spawn(move || loop {
        if SIGNAL_FIRED.load(Ordering::SeqCst) {
            token.cancel();
            return;
        }
        if token.is_cancelled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
}

/// Writes a human-readable report line: stdout normally, stderr when
/// some `-` flag routed a machine payload to stdout.
macro_rules! say {
    ($out:expr, $($arg:tt)*) => { $out.line(format!($($arg)*)) };
}

/// The durability knobs shared by the `atpg` and `flow` commands.
struct DurOpts {
    /// Journal path for new checkpoints (`--checkpoint`).
    checkpoint: Option<String>,
    /// Checkpoint cadence in faults (`--checkpoint-every`).
    every: Option<u64>,
    /// Per-phase deadline in milliseconds (`--phase-timeout`).
    timeout_ms: u64,
    /// Journal to resume from (`--resume`).
    resume: Option<String>,
    /// Replica count for journal appends (`--checkpoint-replicas`).
    replicas: Option<u64>,
    /// Parsed `AIDFT_CHAOS` configuration, when set and active.
    chaos: Option<ChaosConfig>,
}

impl DurOpts {
    /// The configured replica count (default 1, floor 1).
    fn replica_count(&self) -> u32 {
        self.replicas.unwrap_or(1).clamp(1, u64::from(u32::MAX)) as u32
    }

    /// A checkpoint journal at `path` with the replica count and disk
    /// chaos applied. Writes and resume loads must both go through
    /// this so recovery scans the same replica set the appends fed.
    fn journal(&self, path: &str) -> Journal {
        let mut j = Journal::new(path).with_replicas(self.replica_count());
        if let Some(chaos) = self.chaos {
            j = j.with_disk_chaos(chaos);
        }
        j
    }

    /// Builds the engine-side [`Durability`] handle: cancellation token
    /// wired to the process signals, journal, cadence, chaos, and the
    /// loaded resume state.
    fn build(&self) -> Result<Durability, DftError> {
        let token = CancelToken::new();
        cancel_on_signals(token.clone());
        let mut dur = Durability::new(token);
        if let Some(path) = self.checkpoint.as_ref().or(self.resume.as_ref()) {
            dur = dur.with_journal(self.journal(path));
        }
        if let Some(n) = self.every {
            dur = dur.checkpoint_every(n);
        }
        if let Some(chaos) = self.chaos {
            dur = dur.with_chaos(chaos);
        }
        if let Some(path) = &self.resume {
            let (state, recovery) = self.journal(path).load_last_report()?;
            if recovery.degraded() {
                eprintln!(
                    "aidft: resume healed over {} damaged record(s) \
                     (served from replica {})",
                    recovery.damaged, recovery.source_replica
                );
            }
            dur = dur.resume_from(state);
        }
        Ok(dur)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = (|| -> Result<_, DftError> {
        let threads = extract_threads(&mut args)?;
        let metrics_path = extract_path_flag(&mut args, "--metrics-json")?;
        let trace_path = extract_path_flag(&mut args, "--trace")?;
        let trace_jsonl_path = extract_path_flag(&mut args, "--trace-jsonl")?;
        let dur = DurOpts {
            checkpoint: extract_path_flag(&mut args, "--checkpoint")?,
            every: extract_u64_flag(&mut args, "--checkpoint-every")?,
            timeout_ms: extract_u64_flag(&mut args, "--phase-timeout")?.unwrap_or(0),
            resume: extract_path_flag(&mut args, "--resume")?,
            replicas: extract_u64_flag(&mut args, "--checkpoint-replicas")?,
            chaos: ChaosConfig::from_env()
                .map_err(|e| DftError::usage(format!("bad AIDFT_CHAOS value: {e}")))?,
        };
        Ok((threads, metrics_path, trace_path, trace_jsonl_path, dur))
    })();
    let (threads, metrics_path, trace_path, trace_jsonl_path, dur_opts) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("aidft: {e}");
            return ExitCode::from(2);
        }
    };
    let out = Out {
        human_to_stderr: [&metrics_path, &trace_path, &trace_jsonl_path]
            .iter()
            .any(|p| p.as_deref() == Some("-")),
    };
    // A full session when an export was requested, a phases-only one
    // when we just need phase names for the terminal progress line.
    let want_export = trace_path.is_some() || trace_jsonl_path.is_some();
    let session = if want_export {
        Some(TraceSession::new(TraceConfig::default()))
    } else if std::io::stderr().is_terminal() {
        Some(TraceSession::new(TraceConfig::phases_only()))
    } else {
        None
    };
    let trace = session
        .as_ref()
        .map(|s| s.handle())
        .unwrap_or_else(TraceHandle::disabled);
    let result = match args.first().map(String::as_str) {
        Some("stats") => with_design(&args, 2, |nl, _| {
            println!("{}", NetlistStats::of(nl));
            for (kind, count) in kind_histogram(nl) {
                println!("  {kind:<8} {count}");
            }
            Ok(())
        }),
        Some("atpg") => with_design(&args, 2, |nl, _| {
            let handle = MetricsHandle::enabled();
            let progress = ProgressLine::spawn(trace.clone(), handle.clone());
            let mut dur = dur_opts.build()?;
            let cfg = AtpgConfig::new()
                .threads(threads)
                .deadline_ms(dur_opts.timeout_ms);
            let run = Atpg::new(nl)
                .with_metrics(handle.clone())
                .with_trace(trace.clone())
                .run_durable(&cfg, &mut dur)
                .map_err(|e| lift_atpg_error(nl.name(), e));
            progress.finish();
            let run = run?;
            say!(
                out,
                "{}: {} patterns, FC {:.2}%, TC {:.2}%, {} untestable, {} aborted, {:?}",
                nl.name(),
                run.patterns.len(),
                run.fault_list.fault_coverage() * 100.0,
                run.test_coverage() * 100.0,
                run.untestable,
                run.aborted,
                run.elapsed
            );
            write_metrics(&out, &metrics_path, &handle)
        }),
        Some("flow") => with_design(&args, 2, |nl, rest| {
            let chains = rest.first().and_then(|s| s.parse().ok()).unwrap_or(4usize);
            let handle = MetricsHandle::enabled();
            let progress = ProgressLine::spawn(trace.clone(), handle.clone());
            let mut dur = dur_opts.build()?;
            let report = DftFlow::new(nl)
                .chains(chains)
                .threads(threads)
                .atpg_config(AtpgConfig::new().deadline_ms(dur_opts.timeout_ms))
                .metrics(handle)
                .trace(trace.clone())
                .run_durable(&mut dur);
            progress.finish();
            let report = report?;
            out.text(format!("{report}"));
            if let Some(path) = &metrics_path {
                out.payload(path, &report.metrics.to_json())?;
            }
            Ok(())
        }),
        Some("bist") => with_design(&args, 2, |nl, rest| {
            let patterns = rest
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1024usize);
            let handle = MetricsHandle::enabled();
            let progress = ProgressLine::spawn(trace.clone(), handle.clone());
            let r = LogicBist::new(nl, 32)
                .metrics(handle.clone())
                .trace(trace.clone())
                .threads(threads)
                .run(patterns, 0xB157);
            progress.finish();
            say!(
                out,
                "{}: {} PRPG patterns, coverage {:.2}%, signature {:016x}, {} undetected",
                nl.name(),
                r.patterns,
                r.coverage * 100.0,
                r.signature,
                r.undetected
            );
            write_metrics(&out, &metrics_path, &handle)
        }),
        Some("gen") => {
            if args.len() != 3 {
                Err(DftError::usage("usage: aidft gen <name> <out.bench>"))
            } else {
                match benchmark_suite().into_iter().find(|c| c.name == args[1]) {
                    Some(c) => fs::write(&args[2], write_bench(&c.netlist))
                        .map_err(|e| DftError::io(format!("write {}", args[2]), e)),
                    None => Err(DftError::usage(format!(
                        "unknown circuit `{}`; available: {}",
                        args[1],
                        benchmark_suite()
                            .iter()
                            .map(|c| c.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))),
                }
            }
        }
        Some("diagnose") => with_design(&args, 3, |nl, rest| {
            let text = fs::read_to_string(&rest[0]).map_err(|e| DftError::io("read log", e))?;
            let log = FailureLog::from_json(&text)?;
            // The pattern set must match the one used on the tester; the
            // CLI convention is the seeded default set.
            let patterns = PatternSet::random(nl, 256, 0xD1A6);
            let cands = diagnose(nl, &patterns, &log, 10);
            if cands.is_empty() {
                println!("clean log or no candidates");
            }
            for (i, c) in cands.iter().enumerate() {
                println!(
                    "#{:<2} {:<30} score {:<6} tfsf {} tpsf {} tfsp {}",
                    i + 1,
                    c.fault.describe(nl),
                    c.score(),
                    c.tfsf,
                    c.tpsf,
                    c.tfsp
                );
            }
            Ok(())
        }),
        Some("serve") => with_design(&args, 2, |nl, rest| {
            let mut rest: Vec<String> = rest.to_vec();
            let dies = extract_u64_flag(&mut rest, "--dies")?.unwrap_or(16) as usize;
            let window = extract_u64_flag(&mut rest, "--window")?.unwrap_or(32) as usize;
            let client_threads = extract_u64_flag(&mut rest, "--client-threads")?
                .map(|n| n as usize)
                .unwrap_or_else(|| threads.clamp(1, 8))
                .max(1);
            let max_reconnects = extract_u64_flag(&mut rest, "--max-reconnects")?;
            let backoff_base = extract_u64_flag(&mut rest, "--backoff-base")?;
            let stats_addr = extract_path_flag(&mut rest, "--stats-addr")?;
            let events_path = extract_path_flag(&mut rest, "--events")?;
            if let Some(extra) = rest.first() {
                return Err(DftError::usage(format!("unknown serve argument `{extra}`")));
            }
            let handle = MetricsHandle::enabled();
            // Telemetry first: a bound scrape endpoint owns the live
            // view, so the one-line spinner must stay suppressed before
            // the reporter spawns.
            let tele = if stats_addr.is_some() || events_path.is_some() {
                if stats_addr.is_some() {
                    progress::set_suppressed(true);
                }
                let cfg = TelemetryConfig {
                    stats_addr: stats_addr.clone(),
                    events_path: events_path.as_ref().map(std::path::PathBuf::from),
                    ..TelemetryConfig::default()
                };
                let session = TelemetrySession::start(cfg, handle.clone())
                    .map_err(|e| DftError::io("start telemetry", e))?;
                if let Some(addr) = session.stats_addr() {
                    // Stderr only: the stdout summary must stay
                    // byte-identical to a run without telemetry.
                    eprintln!("aidft: stats endpoint listening on {addr}");
                }
                Some(session)
            } else {
                None
            };
            let progress = ProgressLine::spawn(trace.clone(), handle.clone());
            let token = CancelToken::new();
            cancel_on_signals(token.clone());
            let journal = dur_opts
                .checkpoint
                .as_ref()
                .or(dur_opts.resume.as_ref())
                .map(|p| {
                    let mut j =
                        FramedJournal::new(p, SERVE_FORMAT).with_replicas(dur_opts.replica_count());
                    if let Some(chaos) = dur_opts.chaos {
                        j = j.with_disk_chaos(chaos);
                    }
                    j
                });
            let opts = ServeOpts {
                metrics: handle.clone(),
                trace: trace.clone(),
                cancel: token,
                chaos: dur_opts.chaos.unwrap_or_default(),
                journal,
                resume: dur_opts.resume.is_some(),
                telemetry: tele
                    .as_ref()
                    .map(TelemetrySession::handle)
                    .unwrap_or_default(),
            };
            let mut cfg = ServeConfig {
                dies: dies.max(1),
                window_patterns: window.max(1),
                client_threads,
                ..ServeConfig::default()
            };
            if let Some(n) = dur_opts.every {
                cfg.checkpoint_every = n as usize;
            }
            if let Some(n) = max_reconnects {
                cfg.max_reconnects = n.min(u64::from(u32::MAX)) as u32;
            }
            if let Some(ms) = backoff_base {
                cfg.backoff_base_ms = ms;
            }
            let report = run_fleet(nl, &cfg, &opts);
            progress.finish();
            if let Some(session) = tele {
                let fin = session.finish();
                progress::set_suppressed(false);
                eprintln!(
                    "aidft: telemetry: {} samples, {} scrapes, {} events, \
                     peak {:.1} dies/s, p99 window {:.0} us",
                    fin.samples,
                    fin.scrapes,
                    fin.events,
                    fin.peak_dies_per_sec,
                    fin.p99_window_latency_us
                );
            }
            let report = report.map_err(|e| lift_serve_error(nl.name(), e))?;
            if report.resumed_dies > 0 {
                say!(
                    out,
                    "resumed: {} dies restored from checkpoint",
                    report.resumed_dies
                );
            }
            out.text(report.summary.render(report.wall));
            write_metrics(&out, &metrics_path, &handle)
        }),
        Some("repair") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            match extract_max_bad_cores(&mut rest) {
                Ok(max_bad_cores) => {
                    run_repair_demo(&out, threads, max_bad_cores, &metrics_path, &trace)
                }
                Err(e) => Err(e),
            }
        }
        Some("top") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            run_top(&mut rest)
        }
        Some("fleet-stats") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            run_fleet_stats(&mut rest)
        }
        Some("fsck") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            run_fsck(&mut rest)
        }
        _ => Err(DftError::usage(
            "usage: aidft <stats|atpg|flow|bist|gen|diagnose|repair|serve|top|fleet-stats|fsck> \
             [--threads N] \
             [--metrics-json <path>] [--trace <path>] [--trace-jsonl <path>] \
             [--checkpoint <path>] [--checkpoint-every <faults>] [--phase-timeout <ms>] \
             [--resume <path>] [--checkpoint-replicas <n>] <args>; \
             `-` as a path writes to stdout; see README",
        )),
    };
    let result = result.and_then(|()| {
        if let Some(session) = &session {
            let dump = session.snapshot();
            if let Some(path) = &trace_path {
                out.payload(path, &dump.to_perfetto_json())?;
            }
            if let Some(path) = &trace_jsonl_path {
                out.payload(path, &dump.to_jsonl())?;
            }
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("aidft: {e}");
            if let DftError::Interrupted {
                checkpoint: Some(path),
                ..
            } = &e
            {
                eprintln!("aidft: checkpoint written to {}", path.display());
            }
            ExitCode::from(match e {
                DftError::Usage(_) => 2,
                DftError::Interrupted { .. } => 3,
                DftError::WorkerPanic { .. } => 4,
                DftError::CorruptJournal { .. } => 5,
                _ => 1,
            })
        }
    }
}

/// Lifts a serve-layer fleet error into the CLI error type. An
/// interrupted fleet maps onto the standard interrupt shape (exit 3,
/// checkpoint path printed) with dies standing in for faults.
fn lift_serve_error(design: &str, e: ServeError) -> DftError {
    match e {
        ServeError::Interrupted {
            checkpoint,
            done,
            dies,
        } => DftError::Interrupted {
            checkpoint,
            partial: Box::new(PartialResult {
                design: design.to_owned(),
                phase: "serve",
                patterns: done,
                detected: done,
                total_faults: dies,
                deadline: false,
            }),
        },
        ServeError::Checkpoint(e) => DftError::Checkpoint(e),
        ServeError::Io(e) => DftError::io(format!("serve {design}"), e),
        ServeError::Client(msg) => DftError::worker_panic(format!("serve {design}"), msg),
    }
}

/// Lifts an ATPG-layer durability error into the CLI error type,
/// attaching the design name.
fn lift_atpg_error(design: &str, e: AtpgError) -> DftError {
    match e {
        AtpgError::Interrupted(i) => DftError::Interrupted {
            checkpoint: i.checkpoint,
            partial: Box::new(PartialResult {
                design: design.to_owned(),
                phase: i.phase,
                patterns: i.patterns,
                detected: i.detected,
                total_faults: i.total_faults,
                deadline: i.deadline,
            }),
        },
        AtpgError::Resume(e) => e.into(),
    }
}

/// Where human-readable report text goes, and how machine payloads are
/// written. When any `--metrics-json`/`--trace`/`--trace-jsonl` path is
/// `-`, stdout is reserved for that payload and the report moves to
/// stderr.
#[derive(Clone, Copy)]
struct Out {
    human_to_stderr: bool,
}

impl Out {
    fn line(&self, s: String) {
        if self.human_to_stderr {
            eprintln!("{s}");
        } else {
            println!("{s}");
        }
    }

    /// Like [`Out::line`] but without a trailing newline (for payloads
    /// that already end in one, e.g. the flow report).
    fn text(&self, s: String) {
        if self.human_to_stderr {
            eprint!("{s}");
        } else {
            print!("{s}");
        }
    }

    /// Writes a machine payload to `path`, or to stdout when `path` is
    /// `-`.
    fn payload(&self, path: &str, content: &str) -> Result<(), DftError> {
        if path == "-" {
            let mut o = std::io::stdout().lock();
            o.write_all(content.as_bytes())
                .and_then(|()| o.flush())
                .map_err(|e| DftError::io("write stdout", e))
        } else {
            fs::write(path, content).map_err(|e| DftError::io(format!("write {path}"), e))
        }
    }
}

/// Removes `--threads N` from `args` and returns the worker count:
/// the flag wins, then `AIDFT_THREADS`, then `0` (one worker per
/// hardware thread).
fn extract_threads(args: &mut Vec<String>) -> Result<usize, DftError> {
    let mut threads: Option<usize> = None;
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        if pos + 1 >= args.len() {
            return Err(DftError::usage("--threads requires a value"));
        }
        let value = args[pos + 1]
            .parse()
            .map_err(|_| DftError::usage(format!("bad --threads value `{}`", args[pos + 1])))?;
        args.drain(pos..pos + 2);
        threads = Some(value);
    }
    if threads.is_none() {
        if let Ok(env) = std::env::var("AIDFT_THREADS") {
            threads = Some(
                env.parse()
                    .map_err(|_| DftError::usage(format!("bad AIDFT_THREADS value `{env}`")))?,
            );
        }
    }
    Ok(threads.unwrap_or(0))
}

/// Removes `--max-bad-cores N` from `args` and returns the harvesting
/// floor (default 2, i.e. an N-2 part still ships).
fn extract_max_bad_cores(args: &mut Vec<String>) -> Result<usize, DftError> {
    if let Some(pos) = args.iter().position(|a| a == "--max-bad-cores") {
        if pos + 1 >= args.len() {
            return Err(DftError::usage("--max-bad-cores requires a value"));
        }
        let value = args[pos + 1].parse().map_err(|_| {
            DftError::usage(format!("bad --max-bad-cores value `{}`", args[pos + 1]))
        })?;
        args.drain(pos..pos + 2);
        return Ok(value);
    }
    Ok(2)
}

/// The `repair` command: a self-contained demonstration of both halves
/// of the repair subsystem — memory BISR (detect → repair → re-verify on
/// a seeded faulty SRAM, plus a yield sweep) and core harvesting (screen
/// a replicated-core SoC, fuse off the bad cores, recompute the test
/// schedule, and check degraded inference accuracy).
fn run_repair_demo(
    out: &Out,
    threads: usize,
    max_bad_cores: usize,
    metrics_path: &Option<String>,
    trace: &TraceHandle,
) -> Result<(), DftError> {
    use dft_core::aichip::{broadcast_screen_traced, hierarchical_plan_traced, SocConfig};
    use dft_core::bist::SramModel;
    use dft_core::netlist::generators::mac_pe;
    use dft_core::repair::{
        plan_degradation, random_point_faults, run_inference_check, yield_sweep, BisrEngine,
        ShipGrade, SpareConfig, SramGeometry,
    };

    let handle = MetricsHandle::enabled();

    // --- Memory BISR ---
    let geom = SramGeometry { rows: 16, cols: 16 };
    let spares = SpareConfig {
        spare_rows: 2,
        spare_cols: 2,
    };
    say!(
        out,
        "memory BISR: {}x{} SRAM + {} spare rows, {} spare cols (March C-)",
        geom.rows,
        geom.cols,
        spares.spare_rows,
        spares.spare_cols
    );
    let engine = BisrEngine::new()
        .with_metrics(handle.clone())
        .with_trace(trace.clone());
    let faults = random_point_faults(geom, &spares, 3, 0xB15);
    let physical = SramModel::with_faults(spares.physical_size(&geom), faults);
    let report = engine.run(&physical, geom, &spares);
    say!(
        out,
        "  seeded die: {} failing cells -> {} spare(s) in {} round(s), {}",
        report.initial_fails,
        report.signature.spares_used(),
        report.rounds,
        if report.repaired {
            "repaired (re-March clean)"
        } else if report.unrepairable {
            "UNREPAIRABLE"
        } else {
            "clean, no repair needed"
        }
    );
    say!(out, "  yield sweep (20 dies per density):");
    say!(out, "    faults  clean  repaired  unrepairable  yield");
    for p in yield_sweep(&engine, geom, &spares, &[1, 2, 3, 4, 6, 8], 20, 0xD1E) {
        say!(
            out,
            "    {:<7} {:<6} {:<9} {:<13} {:.0}%",
            p.faults_injected,
            p.clean,
            p.repaired,
            p.unrepairable,
            p.yield_fraction() * 100.0
        );
    }

    // --- Core harvesting ---
    let core = mac_pe(4);
    let cfg = SocConfig {
        threads,
        ..SocConfig::default()
    };
    let atpg = AtpgConfig::new().threads(threads);
    let progress = ProgressLine::spawn(trace.clone(), handle.clone());
    let plan = hierarchical_plan_traced(&core, &cfg, &atpg, trace.clone());
    let defective = [4usize, 13];
    let pass_map = broadcast_screen_traced(&core, &cfg, &atpg, &defective, trace.clone());
    progress.finish();
    let hplan = plan_degradation(
        &pass_map,
        plan.per_core_cycles,
        &cfg,
        max_bad_cores,
        &handle,
    );
    say!(
        out,
        "core harvesting: {}-core SoC, seeded bad cores {:?}, floor --max-bad-cores {}",
        cfg.num_cores,
        defective,
        max_bad_cores
    );
    let grade = match hplan.grade {
        ShipGrade::Full => "full spec".to_owned(),
        ShipGrade::Degraded(n) => format!("degraded N-{n}"),
        ShipGrade::Scrap => "SCRAP".to_owned(),
    };
    say!(
        out,
        "  screen: {}/{} cores pass; disabled {:?}; grade {}",
        hplan.good_cores,
        hplan.total_cores,
        hplan.disabled,
        grade
    );
    say!(
        out,
        "  retest schedule for shipped part: {} broadcast cycles ({:.3} ms), {} flat cycles",
        hplan.broadcast_cycles,
        hplan.test_time_ms,
        hplan.flat_cycles
    );
    if hplan.ships {
        let check = run_inference_check(cfg.num_cores, &hplan.disabled, 0xC0DE);
        say!(
            out,
            "  inference: healthy {:.1}%, unfused-faulty {:.1}%, harvested {:.1}% \
             at {:.0}% throughput",
            check.healthy_accuracy * 100.0,
            check.faulty_accuracy * 100.0,
            check.harvested_accuracy * 100.0,
            check.throughput_fraction * 100.0
        );
    } else {
        say!(out, "  die does not ship at this harvesting floor");
    }

    write_metrics(out, metrics_path, &handle)
}

/// The `fsck` command: scan (or `--repair`) a framed journal and print
/// the per-record report. Zero intact records is the corrupt-beyond-
/// repair verdict, exit code 5.
fn run_fsck(rest: &mut Vec<String>) -> Result<(), DftError> {
    let repair = if let Some(pos) = rest.iter().position(|a| a == "--repair") {
        rest.remove(pos);
        true
    } else {
        false
    };
    let path = match rest.as_slice() {
        [path] => path.clone(),
        _ => return Err(DftError::usage("usage: aidft fsck <journal> [--repair]")),
    };
    let target = std::path::Path::new(&path);
    let report = if repair {
        fsck::repair(target)
    } else {
        fsck::scan(target)
    }
    .map_err(|e| match e {
        CkptError::Corrupt { path } => DftError::CorruptJournal { path },
        other => other.into(),
    })?;
    print!("{}", report.render());
    if !report.records.is_empty() && report.intact() == 0 {
        return Err(DftError::CorruptJournal { path });
    }
    Ok(())
}

/// Scrapes `addr` with a short retry window: connection-refused errors
/// are retried on the seeded deterministic backoff schedule for ~2 s
/// (covering a serve endpoint that has not finished binding yet); any
/// other error is returned immediately.
fn scrape_with_retry(addr: &str, path: &str) -> std::io::Result<String> {
    let policy = BackoffPolicy::new(Duration::from_millis(25), 0x5C8A_9E01);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut attempt = 0u32;
    loop {
        match telemetry::scrape(addr, path) {
            Ok(body) => return Ok(body),
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionRefused
                    && std::time::Instant::now() < deadline =>
            {
                attempt += 1;
                std::thread::sleep(policy.delay(0, attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

/// The `top` command: attach to a serving fleet's `--stats-addr`
/// endpoint and redraw a live dashboard until the run ends. Before the
/// first successful scrape the endpoint is polled patiently with the
/// connection-refused retry schedule (the serve may still be compiling
/// its stimulus); after it, the endpoint disappearing means the fleet
/// finished — a clean exit, not an error.
fn run_top(rest: &mut Vec<String>) -> Result<(), DftError> {
    let interval_ms = extract_u64_flag(rest, "--interval-ms")?
        .unwrap_or(500)
        .max(50);
    let frames_cap = extract_u64_flag(rest, "--frames")?;
    let addr = match rest.as_slice() {
        [addr] => addr.clone(),
        _ => {
            return Err(DftError::usage(
                "usage: aidft top <addr> [--interval-ms N] [--frames N]",
            ))
        }
    };
    let mut dash = Dashboard::new();
    let mut attached = false;
    let mut frames = 0u64;
    let mut misses = 0u32;
    loop {
        // Pre-attach scrapes absorb connection-refused internally (the
        // endpoint may still be binding), so the miss budget here only
        // has to cover slower failure modes.
        let scraped = if attached {
            telemetry::scrape(addr.as_str(), "/metrics")
        } else {
            scrape_with_retry(addr.as_str(), "/metrics")
        };
        match scraped {
            Ok(text) => {
                attached = true;
                misses = 0;
                frames += 1;
                dash.draw(&top_frame(&addr, &telemetry::parse_prometheus(&text)));
                if frames_cap.is_some_and(|cap| frames >= cap) {
                    return Ok(());
                }
            }
            Err(e) => {
                misses += 1;
                if attached {
                    dash.clear();
                    eprintln!("aidft top: endpoint {addr} closed after {frames} frame(s)");
                    return Ok(());
                }
                if misses >= 5 {
                    return Err(DftError::io(format!("scrape {addr}"), e));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(if attached {
            interval_ms
        } else {
            200
        }));
    }
}

/// Renders one `aidft top` frame from parsed `/metrics` scrape pairs.
fn top_frame(addr: &str, pairs: &[(String, f64)]) -> Vec<String> {
    let v = |name: &str| telemetry::pair_value(pairs, name).unwrap_or(f64::NAN);
    // The info metric carries the design as a label, so it is matched
    // by prefix rather than by full name.
    let design = pairs
        .iter()
        .find_map(|(n, _)| {
            n.strip_prefix("aidft_fleet_info{design=\"")
                .and_then(|s| s.strip_suffix("\"}"))
        })
        .unwrap_or("?");
    vec![
        format!(
            "aidft top - {addr}  design {design}  sample #{:.0}  up {:.1}s",
            v("aidft_sample_seq"),
            v("aidft_uptime_ms") / 1000.0
        ),
        format!(
            "fleet    {:.0}/{:.0} dies done, {:.0} windows/die, {:.0} sessions active, \
             {:.0} windows in flight",
            v("aidft_fleet_dies_done"),
            v("aidft_fleet_dies"),
            v("aidft_fleet_windows_per_die"),
            v("aidft_sessions_active"),
            v("aidft_windows_in_flight")
        ),
        format!(
            "breaker  {:.0} closed, {:.0} backoff, {:.0} quarantined",
            v("aidft_breaker_closed"),
            v("aidft_breaker_backoff"),
            v("aidft_breaker_quarantined")
        ),
        format!(
            "rates    {:.1} dies/s (peak {:.1}), {:.1} signatures/s",
            v("aidft_dies_per_sec"),
            v("aidft_peak_dies_per_sec"),
            v("aidft_signatures_per_sec")
        ),
        format!(
            "latency  window p50 {:.0} us / p99 {:.0} us, signature p50 {:.0} us / p99 {:.0} us",
            v("aidft_window_latency_us_p50"),
            v("aidft_window_latency_us_p99"),
            v("aidft_signature_latency_us_p50"),
            v("aidft_signature_latency_us_p99")
        ),
    ]
}

/// The `fleet-stats` command: one scrape of a live endpoint, printed to
/// stdout (JSON by default, raw Prometheus text with `--metrics`).
fn run_fleet_stats(rest: &mut Vec<String>) -> Result<(), DftError> {
    let metrics = if let Some(pos) = rest.iter().position(|a| a == "--metrics") {
        rest.remove(pos);
        true
    } else {
        false
    };
    let addr = match rest.as_slice() {
        [addr] => addr.clone(),
        _ => {
            return Err(DftError::usage(
                "usage: aidft fleet-stats <addr> [--metrics]",
            ))
        }
    };
    let path = if metrics { "/metrics" } else { "/stats.json" };
    let body = scrape_with_retry(addr.as_str(), path)
        .map_err(|e| DftError::io(format!("scrape {addr}"), e))?;
    print!("{body}");
    if !body.ends_with('\n') {
        println!();
    }
    Ok(())
}

/// Removes `<flag> <n>` from `args` and returns the parsed integer, if
/// given.
fn extract_u64_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, DftError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(DftError::usage(format!("{flag} requires a value")));
        }
        let value = args[pos + 1]
            .parse()
            .map_err(|_| DftError::usage(format!("bad {flag} value `{}`", args[pos + 1])))?;
        args.drain(pos..pos + 2);
        return Ok(Some(value));
    }
    Ok(None)
}

/// Removes `<flag> <path>` from `args` and returns the path, if given.
fn extract_path_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, DftError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(DftError::usage(format!("{flag} requires a path")));
        }
        let path = args[pos + 1].clone();
        args.drain(pos..pos + 2);
        return Ok(Some(path));
    }
    Ok(None)
}

/// Writes the snapshot of `handle` to `path` as JSON (no-op when the flag
/// was not given).
fn write_metrics(out: &Out, path: &Option<String>, handle: &MetricsHandle) -> Result<(), DftError> {
    if let (Some(path), Some(snap)) = (path, handle.snapshot()) {
        out.payload(path, &snap.to_json())?;
    }
    Ok(())
}

/// Parses the design argument and hands off to `f` with any remaining
/// arguments.
fn with_design(
    args: &[String],
    min_args: usize,
    f: impl FnOnce(&Netlist, &[String]) -> Result<(), DftError>,
) -> Result<(), DftError> {
    if args.len() < min_args {
        return Err(DftError::usage("missing <design.bench> argument"));
    }
    let path = &args[1];
    let text = fs::read_to_string(path).map_err(|e| DftError::io(format!("read {path}"), e))?;
    let name = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".bench");
    let nl = parse_bench(name, &text).map_err(|e| DftError::netlist(format!("parse {path}"), e))?;
    f(&nl, &args[min_args.min(args.len())..])
}
