//! `dft-core`: the end-to-end DFT flow for AI chips.
//!
//! This facade crate re-exports the whole `aidft` toolkit and adds
//! [`DftFlow`], the sign-off pipeline a user actually runs: scan
//! insertion → ATPG (random + deterministic, compaction) → EDT
//! compression → test-time accounting → coverage sign-off.
//!
//! # Quickstart
//!
//! ```
//! use dft_core::{DftFlow, netlist::generators::mac_pe};
//!
//! let core = mac_pe(4);
//! let report = DftFlow::new(&core).chains(4).channels(1).run();
//! assert!(report.test_coverage > 0.95);
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

/// Re-export of `dft-checkpoint` (cooperative cancellation, the
/// `aidft-ckpt-v1` checkpoint journal, and the `AIDFT_CHAOS` fault
/// injection harness).
pub use dft_checkpoint as checkpoint;

/// Re-export of `dft-netlist`.
pub use dft_netlist as netlist;

/// Re-export of `dft-fault`.
pub use dft_fault as fault;

/// Re-export of `dft-logicsim`.
pub use dft_logicsim as logicsim;

/// Re-export of `dft-metrics` (counters, histograms, phase timers).
pub use dft_metrics as metrics;

/// Re-export of `dft-trace` (hierarchical span tracing, Perfetto/JSONL
/// export).
pub use dft_trace as trace;

/// Re-export of `dft-atpg`.
pub use dft_atpg as atpg;

/// Re-export of `dft-scan`.
pub use dft_scan as scan;

/// Re-export of `dft-compress`.
pub use dft_compress as compress;

/// Re-export of `dft-bist`.
pub use dft_bist as bist;

/// Re-export of `dft-diagnosis`.
pub use dft_diagnosis as diagnosis;

/// Re-export of `dft-aichip`.
pub use dft_aichip as aichip;

/// Re-export of `dft-repair` (memory BISR, core harvesting).
pub use dft_repair as repair;

/// Re-export of `dft-serve` (test-floor pattern server).
pub use dft_serve as serve;

/// Re-export of `dft-telemetry` (live fleet telemetry: scrape endpoint,
/// event stream, sampler).
pub use dft_telemetry as telemetry;

pub mod config;
mod error;
pub mod progress;

pub use error::{DftError, PartialResult};

use dft_atpg::{Atpg, AtpgConfig, AtpgError, Durability};
use dft_compress::{CompressionStats, ScanEdt};
use dft_logicsim::Parallelism;
use dft_metrics::{MetricsHandle, MetricsSnapshot};
use dft_netlist::Netlist;
use dft_scan::{insert_scan, ScanConfig, ScanInsertion, TestTimeModel};
use dft_trace::TraceHandle;

/// The one-stop DFT sign-off flow.
///
/// Configure with the builder methods, then [`DftFlow::run`].
#[derive(Debug)]
pub struct DftFlow<'a> {
    nl: &'a Netlist,
    chains: usize,
    channels: usize,
    ring_len: Option<usize>,
    shift_mhz: u32,
    atpg: AtpgConfig,
    threads: Option<usize>,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl<'a> DftFlow<'a> {
    /// Starts a flow for `nl` with default settings (4 chains, 2
    /// channels, auto-sized ring generator, 100 MHz shift, default ATPG).
    pub fn new(nl: &'a Netlist) -> DftFlow<'a> {
        DftFlow {
            nl,
            chains: 4,
            channels: 2,
            ring_len: None,
            shift_mhz: 100,
            atpg: AtpgConfig::default(),
            threads: None,
            metrics: MetricsHandle::enabled(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Sets the scan-chain count.
    pub fn chains(mut self, chains: usize) -> Self {
        self.chains = chains;
        self
    }

    /// Sets the EDT channel count.
    pub fn channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the ring-generator length (default: auto-sized to the scan
    /// chain length, clamped to `[8, 32]` — the warm-up cost scales with
    /// the ring, so small designs get small rings).
    pub fn ring_len(mut self, bits: usize) -> Self {
        self.ring_len = Some(bits);
        self
    }

    /// Sets the scan shift clock in MHz.
    pub fn shift_mhz(mut self, mhz: u32) -> Self {
        self.shift_mhz = mhz;
        self
    }

    /// Overrides the ATPG configuration.
    pub fn atpg_config(mut self, cfg: AtpgConfig) -> Self {
        self.atpg = cfg;
        self
    }

    /// Sets the worker-thread count for the fault-simulation phases
    /// (`0` = one per hardware thread, `1` = serial). Takes precedence
    /// over [`AtpgConfig::threads`] regardless of call order. Results are
    /// bit-identical for any value — only wall-clock changes.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Points the flow at a tracing session (see [`trace`]): every phase
    /// records a span, ATPG adds sampled per-fault spans, and the
    /// fault-simulation engines add worker-tagged batch spans. The
    /// default disabled handle costs one untaken branch per record site.
    /// Phase *timings* in [`FlowReport`] are span-derived either way, so
    /// `sum(phases) <= total` always holds.
    pub fn trace(mut self, handle: TraceHandle) -> Self {
        self.trace = handle;
        self
    }

    /// Overrides the metrics registry. By default each flow run collects
    /// into a fresh registry surfaced as [`FlowReport::metrics`]; pass
    /// [`MetricsHandle::disabled`] to strip every instrument down to one
    /// untaken branch, or a shared handle to aggregate several runs.
    pub fn metrics(mut self, handle: MetricsHandle) -> Self {
        self.metrics = handle;
        self
    }

    /// Runs the full flow: scan insertion, ATPG, compression, timing.
    ///
    /// Every phase duration in [`FlowReport::phase_times`] is the length
    /// of that phase's trace span; the spans are opened and closed
    /// sequentially on one monotonic clock inside the enclosing `flow`
    /// span, so the per-phase times are disjoint and
    /// `sum(phases) <= total` holds by construction.
    pub fn run(self) -> FlowReport {
        match self.run_inner(None) {
            Ok(report) => report,
            // A plain run has no cancellation source and no resume
            // state, so the durable error paths cannot occur.
            Err(e) => unreachable!("plain flow cannot fail: {e}"),
        }
    }

    /// Runs the flow durably: cancellation (signals, per-phase
    /// deadlines) drains cleanly into a checkpoint, and a resume state
    /// loaded into `dur` continues a prior run to the bit-identical
    /// final result.
    ///
    /// On interruption the ATPG engine writes a final checkpoint and
    /// this returns [`DftError::Interrupted`] carrying the journal path
    /// and a [`PartialResult`] progress summary; a stale or mismatched
    /// resume state returns [`DftError::Checkpoint`]. EDT compression
    /// also polls the token — cubes skipped by a late cancel are counted
    /// in [`CompressionStats::skipped`] rather than failing the run,
    /// since by then the checkpoint already covers the full pattern set.
    pub fn run_durable(self, dur: &mut Durability) -> Result<FlowReport, DftError> {
        self.run_inner(Some(dur))
    }

    fn run_inner(self, mut dur: Option<&mut Durability>) -> Result<FlowReport, DftError> {
        let design = self.nl.name().to_owned();
        let mut atpg_cfg = self.atpg.clone();
        if let Some(t) = self.threads {
            atpg_cfg.threads = t;
        }
        let t_flow = self.trace.phase_span("flow");
        let t_scan = self.trace.phase_span("scan_insertion");
        let scan = {
            let _t = self.metrics.get().map(|m| m.t_scan_insertion.timed());
            insert_scan(
                self.nl,
                &ScanConfig {
                    num_chains: self.chains,
                },
            )
        };
        let scan_time = t_scan.finish();
        let atpg = Atpg::new(self.nl)
            .with_metrics(self.metrics.clone())
            .with_trace(self.trace.clone());
        let run = match dur.as_deref_mut() {
            Some(d) => atpg
                .run_durable(&atpg_cfg, d)
                .map_err(|e| flow_error(&design, e))?,
            None => atpg.run(&atpg_cfg),
        };
        let timing = TestTimeModel::for_architecture(&scan, run.patterns.len(), self.shift_mhz);
        let t_compress = self.trace.phase_span("compression");
        let compression = if self.nl.num_dffs() > 0 && !run.cubes.is_empty() {
            let _t = self.metrics.get().map(|m| m.t_edt_compress.timed());
            let ring_len = self
                .ring_len
                .unwrap_or_else(|| scan.shift_cycles().clamp(8, 32));
            let edt = ScanEdt::new(self.nl, &scan, self.channels, ring_len, 0xED7)
                .with_metrics(self.metrics.clone())
                .with_trace(self.trace.clone());
            Some(match dur.as_deref() {
                Some(d) => edt.compress_all_cancellable(&run.cubes, d.cancel()),
                None => edt.compress_all(&run.cubes),
            })
        } else {
            None
        };
        let compression_time = t_compress.finish();
        let phase_times = PhaseTimes {
            scan: scan_time,
            compile: run.compile_time,
            random_sim: run.random_time,
            deterministic: run.deterministic_time + run.signoff_time,
            compression: compression_time,
            total: t_flow.finish(),
            threads: Parallelism::from_threads(atpg_cfg.threads).resolve(),
        };
        let metrics = self
            .metrics
            .snapshot()
            .unwrap_or_else(|| dft_metrics::Metrics::new().snapshot());
        Ok(FlowReport {
            phase_times,
            metrics,
            design,
            gates: self.nl.num_gates(),
            flops: self.nl.num_dffs(),
            scan_added_gates: scan.added_gates,
            chains: scan.chains.len(),
            max_chain_len: scan.shift_cycles(),
            patterns: run.patterns.len(),
            fault_coverage: run.fault_list.fault_coverage(),
            test_coverage: run.fault_list.test_coverage(),
            untestable: run.untestable,
            aborted: run.aborted,
            escalated: run.escalated,
            rescued: run.rescued,
            failed_sim_batches: run.failed_sim_batches,
            atpg_time: run.elapsed,
            test_cycles: timing.total_cycles(),
            test_time_ms: timing.test_time_ms(),
            compression,
            scan,
            atpg_run: run,
        })
    }
}

/// Lifts an ATPG-layer durability error into the flow error type,
/// attaching the design name the ATPG interrupt does not carry.
fn flow_error(design: &str, e: AtpgError) -> DftError {
    match e {
        AtpgError::Interrupted(i) => DftError::Interrupted {
            checkpoint: i.checkpoint,
            partial: Box::new(PartialResult {
                design: design.to_owned(),
                phase: i.phase,
                patterns: i.patterns,
                detected: i.detected,
                total_faults: i.total_faults,
                deadline: i.deadline,
            }),
        },
        AtpgError::Resume(e) => DftError::Checkpoint(e),
    }
}

/// Wall-clock breakdown of one [`DftFlow::run`], per pipeline phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimes {
    /// Scan insertion.
    pub scan: Duration,
    /// Simulation-kernel compilation (tape levelization and layout;
    /// paid once per run, before the first simulation phase).
    pub compile: Duration,
    /// Random-pattern fault simulation (ATPG phase 1).
    pub random_sim: Duration,
    /// Deterministic ATPG: top-off, compaction, and sign-off simulation.
    pub deterministic: Duration,
    /// EDT compression of the deterministic cubes.
    pub compression: Duration,
    /// Whole-flow wall-clock (the `flow` trace span). The phases above
    /// are disjoint sub-intervals measured on the same clock, so their
    /// sum never exceeds this.
    pub total: Duration,
    /// Resolved worker-thread count the simulation phases ran with.
    pub threads: usize,
}

impl PhaseTimes {
    /// Sum of the per-phase durations (always `<=` [`PhaseTimes::total`]).
    pub fn sum_phases(&self) -> Duration {
        self.scan + self.compile + self.random_sim + self.deterministic + self.compression
    }
}

/// The sign-off report produced by [`DftFlow::run`].
#[derive(Debug)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Gate count of the functional netlist.
    pub gates: usize,
    /// Flip-flop count.
    pub flops: usize,
    /// Gates added by scan insertion.
    pub scan_added_gates: usize,
    /// Scan chains built.
    pub chains: usize,
    /// Longest chain (shift cycles).
    pub max_chain_len: usize,
    /// Final pattern count.
    pub patterns: usize,
    /// Stuck-at fault coverage.
    pub fault_coverage: f64,
    /// Test coverage (untestable excluded).
    pub test_coverage: f64,
    /// Proven-untestable faults (collapsed).
    pub untestable: usize,
    /// Aborted faults (collapsed).
    pub aborted: usize,
    /// Faults escalated from PODEM to the D-algorithm after a backtrack
    /// abort.
    pub escalated: usize,
    /// Escalated faults the D-algorithm resolved (tested or proven
    /// untestable) instead of aborting.
    pub rescued: usize,
    /// Fault-simulation batches lost to an isolated worker panic. Zero
    /// on a healthy run; nonzero means coverage is a lower bound.
    pub failed_sim_batches: usize,
    /// ATPG wall-clock time.
    pub atpg_time: Duration,
    /// Tester cycles for the session.
    pub test_cycles: u64,
    /// Tester time at the configured shift clock.
    pub test_time_ms: f64,
    /// EDT compression statistics (designs with flops and deterministic
    /// cubes only).
    pub compression: Option<CompressionStats>,
    /// Per-phase wall-clock breakdown.
    pub phase_times: PhaseTimes,
    /// Hot-path observability snapshot (PODEM backtracks, gate
    /// evaluations, EDT encode stats, phase timers). All-zero when the
    /// flow was built with a disabled [`MetricsHandle`].
    pub metrics: MetricsSnapshot,
    /// The scan architecture (for downstream tooling).
    pub scan: ScanInsertion,
    /// The full ATPG run (patterns, cubes, fault list).
    pub atpg_run: dft_atpg::AtpgRun,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DFT sign-off: {} ({} gates, {} flops)",
            self.design, self.gates, self.flops
        )?;
        writeln!(
            f,
            "  scan: {} chains, max length {}, +{} gates",
            self.chains, self.max_chain_len, self.scan_added_gates
        )?;
        writeln!(
            f,
            "  atpg: {} patterns, FC {:.2}%, TC {:.2}%, {} untestable, {} aborted ({:?})",
            self.patterns,
            self.fault_coverage * 100.0,
            self.test_coverage * 100.0,
            self.untestable,
            self.aborted,
            self.atpg_time
        )?;
        if self.escalated > 0 {
            writeln!(
                f,
                "  escalation: {} aborts retried with D-algorithm, {} rescued",
                self.escalated, self.rescued
            )?;
        }
        if self.failed_sim_batches > 0 {
            writeln!(
                f,
                "  WARNING: {} fault-simulation batch{} lost to worker panics; coverage is a lower bound",
                self.failed_sim_batches,
                if self.failed_sim_batches == 1 { "" } else { "es" }
            )?;
        }
        writeln!(
            f,
            "  tester: {} cycles ({:.3} ms)",
            self.test_cycles, self.test_time_ms
        )?;
        if let Some(c) = &self.compression {
            writeln!(
                f,
                "  edt: {:.1}x stimulus compression, {:.0}% cubes encoded",
                c.ratio(),
                c.encode_rate() * 100.0
            )?;
        }
        let t = &self.phase_times;
        writeln!(
            f,
            "  timing: scan {:?}, compile {:?}, random sim {:?}, deterministic {:?}, compression {:?}, total {:?} ({} thread{})",
            t.scan,
            t.compile,
            t.random_sim,
            t.deterministic,
            t.compression,
            t.total,
            t.threads,
            if t.threads == 1 { "" } else { "s" }
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::{c17, counter, mac_pe};

    #[test]
    fn flow_on_combinational_design() {
        let nl = c17();
        let report = DftFlow::new(&nl).run();
        assert!(report.test_coverage > 0.99);
        assert!(report.compression.is_none(), "no flops, no compression");
        assert!(report.to_string().contains("c17"));
    }

    #[test]
    fn flow_on_sequential_design_compresses() {
        let nl = mac_pe(4);
        let report = DftFlow::new(&nl).chains(4).channels(1).ring_len(24).run();
        assert!(report.test_coverage > 0.95);
        let c = report.compression.expect("flops present");
        assert!(c.encoded > 0);
        assert!(report.test_cycles > 0);
    }

    #[test]
    fn builder_knobs_apply() {
        let nl = counter(8);
        let report = DftFlow::new(&nl).chains(2).shift_mhz(50).run();
        assert_eq!(report.chains, 2);
        assert_eq!(report.max_chain_len, 4);
    }

    #[test]
    fn phase_times_sum_never_exceeds_total() {
        // The phase durations are span-derived sub-intervals of the one
        // `flow` span, all measured on the same monotonic clock, so the
        // report can never claim more phase time than wall-clock time.
        let nl = mac_pe(4);
        for _ in 0..3 {
            let report = DftFlow::new(&nl).chains(4).run();
            let t = &report.phase_times;
            assert!(
                t.sum_phases() <= t.total,
                "phase drift: {:?} + {:?} + {:?} + {:?} + {:?} = {:?} > total {:?}",
                t.scan,
                t.compile,
                t.random_sim,
                t.deterministic,
                t.compression,
                t.sum_phases(),
                t.total
            );
            assert!(t.total > std::time::Duration::ZERO);
            // The kernel-compile phase is measured (its span ran), even
            // if it rounds to zero on tiny designs.
            assert!(t.sum_phases() >= t.compile);
        }
    }

    #[test]
    fn flow_trace_records_phase_and_worker_spans() {
        let session = dft_trace::TraceSession::new(dft_trace::TraceConfig::default());
        let nl = mac_pe(4);
        let report = DftFlow::new(&nl)
            .chains(4)
            .threads(4)
            .trace(session.handle())
            .run();
        assert!(report.patterns > 0);
        let dump = session.snapshot();
        let spans = dump.spans().expect("balanced span forest");
        let mut names: Vec<&'static str> = Vec::new();
        fn collect(nodes: &[dft_trace::SpanNode], out: &mut Vec<&'static str>) {
            for n in nodes {
                out.push(n.name);
                collect(&n.children, out);
            }
        }
        collect(&spans, &mut names);
        for phase in [
            "flow",
            "scan_insertion",
            "sim_compile",
            "atpg_random",
            "atpg_topoff",
            "atpg_signoff",
            "compression",
        ] {
            assert!(names.contains(&phase), "missing phase span {phase}");
        }
        assert!(
            names.iter().filter(|n| **n == "faultsim_batch").count() >= 2,
            "expected worker-tagged fault-sim batch spans, got names {names:?}"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let nl = mac_pe(4);
        let serial = DftFlow::new(&nl).threads(1).run();
        let parallel = DftFlow::new(&nl).threads(8).run();
        assert_eq!(serial.patterns, parallel.patterns);
        assert_eq!(serial.fault_coverage, parallel.fault_coverage);
        assert_eq!(serial.test_coverage, parallel.test_coverage);
        assert_eq!(serial.untestable, parallel.untestable);
        assert_eq!(serial.aborted, parallel.aborted);
        assert_eq!(serial.phase_times.threads, 1);
        assert_eq!(parallel.phase_times.threads, 8);
        assert!(parallel.to_string().contains("timing: scan"));
        assert!(parallel.to_string().contains("8 threads"));
    }

    #[test]
    fn poisoned_sim_batch_is_reported_not_fatal() {
        // A worker panic inside fault simulation (injected via the
        // test-only poison hook) must not kill the flow: the batch is
        // isolated, surfaced in the report, and everything else signs
        // off normally.
        let nl = mac_pe(4);
        let universe = dft_fault::universe_stuck_at(&nl);
        let clean = DftFlow::new(&nl).threads(4).run();
        let poisoned = DftFlow::new(&nl)
            .threads(4)
            .atpg_config(AtpgConfig::default().poison_fault(universe[5]))
            .run();
        assert_eq!(clean.failed_sim_batches, 0);
        assert!(!clean.to_string().contains("WARNING"));
        assert!(poisoned.failed_sim_batches > 0);
        assert!(poisoned.to_string().contains("WARNING"));
        // The lost batch costs at most one fault's worth of coverage.
        assert!(poisoned.test_coverage > clean.test_coverage - 0.02);
    }

    #[test]
    fn flow_threads_override_atpg_config() {
        use crate::config::AtpgConfig;
        let nl = c17();
        // threads() wins over atpg_config() regardless of call order.
        let report = DftFlow::new(&nl)
            .threads(3)
            .atpg_config(AtpgConfig::new().threads(1))
            .run();
        assert_eq!(report.phase_times.threads, 3);
    }
}
