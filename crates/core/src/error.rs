//! Typed errors for the flow facade and the `aidft` CLI.

use std::fmt;
use std::io;

use dft_diagnosis::JsonError;
use dft_netlist::NetlistError;

/// Everything that can go wrong driving the toolkit from the outside:
/// file I/O, `.bench` parsing, failure-log parsing, and bad arguments.
///
/// The [`fmt::Display`] impl renders exactly the operator-facing message
/// (`read <path>: ...`, `parse <path>: ...`), so CLI output is stable
/// across the `Result<(), String>` → `DftError` migration.
#[derive(Debug)]
pub enum DftError {
    /// A file read or write failed. `context` names the operation and
    /// target, e.g. `read designs/mac4.bench`.
    Io {
        /// Operation and target, prefix of the rendered message.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A `.bench` netlist failed to parse. `context` names the source,
    /// e.g. `parse designs/mac4.bench`.
    Netlist {
        /// Operation and target, prefix of the rendered message.
        context: String,
        /// The underlying netlist error.
        source: NetlistError,
    },
    /// A tester failure log failed to parse.
    FailLog(JsonError),
    /// The command line did not make sense.
    Usage(String),
}

impl DftError {
    /// An I/O error with its operation context, e.g.
    /// `DftError::io(format!("read {path}"), err)`.
    pub fn io(context: impl Into<String>, source: io::Error) -> DftError {
        DftError::Io {
            context: context.into(),
            source,
        }
    }

    /// A netlist parse error with its source context.
    pub fn netlist(context: impl Into<String>, source: NetlistError) -> DftError {
        DftError::Netlist {
            context: context.into(),
            source,
        }
    }

    /// A usage error carrying the message shown to the operator.
    pub fn usage(message: impl Into<String>) -> DftError {
        DftError::Usage(message.into())
    }
}

impl fmt::Display for DftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DftError::Io { context, source } => write!(f, "{context}: {source}"),
            DftError::Netlist { context, source } => write!(f, "{context}: {source}"),
            DftError::FailLog(e) => write!(f, "parse log: {e}"),
            DftError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DftError::Io { source, .. } => Some(source),
            DftError::Netlist { source, .. } => Some(source),
            DftError::FailLog(e) => Some(e),
            DftError::Usage(_) => None,
        }
    }
}

impl From<JsonError> for DftError {
    fn from(e: JsonError) -> DftError {
        DftError::FailLog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_cli_conventions() {
        let e = DftError::io(
            "read x.bench",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(e.to_string(), "read x.bench: gone");
        let e = DftError::usage("usage: aidft gen <name> <out.bench>");
        assert_eq!(e.to_string(), "usage: aidft gen <name> <out.bench>");
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e = DftError::io("write y", io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(DftError::usage("x").source().is_none());
    }
}
