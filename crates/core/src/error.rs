//! Typed errors for the flow facade and the `aidft` CLI.

use std::fmt;
use std::io;
use std::path::PathBuf;

use dft_checkpoint::CkptError;
use dft_diagnosis::JsonError;
use dft_logicsim::ExecError;
use dft_netlist::NetlistError;

/// What a durable flow had accomplished when it was interrupted: the
/// progress counters an operator needs to decide whether to resume.
/// The *resumable state itself* lives in the checkpoint journal, not
/// here — an interrupted run's partial patterns are never trusted.
#[derive(Debug, Clone)]
pub struct PartialResult {
    /// Design name.
    pub design: String,
    /// The phase the interrupt landed in (`random`, `topoff`,
    /// `signoff`).
    pub phase: &'static str,
    /// Patterns accumulated so far.
    pub patterns: usize,
    /// Detected faults so far (collapsed).
    pub detected: usize,
    /// Total collapsed faults targeted.
    pub total_faults: usize,
    /// `true` when a phase deadline (not a signal) fired the token.
    pub deadline: bool,
}

/// Everything that can go wrong driving the toolkit from the outside:
/// file I/O, `.bench` parsing, failure-log parsing, bad arguments, and
/// recoverable engine faults (exhausted budgets, lost worker batches).
///
/// The [`fmt::Display`] impl renders exactly the operator-facing message
/// (`read <path>: ...`, `parse <path>: ...`), so CLI output is stable
/// across the `Result<(), String>` → `DftError` migration.
///
/// Marked `#[non_exhaustive]`: the hardened engines keep growing new
/// recoverable failure classes, so downstream matches must carry a
/// wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum DftError {
    /// A file read or write failed. `context` names the operation and
    /// target, e.g. `read designs/mac4.bench`.
    Io {
        /// Operation and target, prefix of the rendered message.
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A `.bench` netlist failed to parse. `context` names the source,
    /// e.g. `parse designs/mac4.bench`.
    Netlist {
        /// Operation and target, prefix of the rendered message.
        context: String,
        /// The underlying netlist error.
        source: NetlistError,
    },
    /// A tester failure log failed to parse.
    FailLog(JsonError),
    /// The command line did not make sense.
    Usage(String),
    /// An engine gave up inside its effort budget (e.g. ATPG backtrack
    /// or per-fault time limits) without producing a result. The work is
    /// incomplete but the process is healthy — callers may retry with a
    /// larger budget.
    Aborted {
        /// What was being attempted, e.g. `atpg mac4`.
        context: String,
    },
    /// A parallel worker panicked and its batch was isolated and lost;
    /// the rest of the run completed. Carries the rendered panic message
    /// so operators can file the underlying bug.
    WorkerPanic {
        /// What the pool was computing, e.g. `fault simulation chunk 3`.
        context: String,
        /// The worker's panic payload rendered as text.
        message: String,
    },
    /// A durable flow was interrupted (signal or phase deadline) and
    /// drained cleanly. When `checkpoint` is set, the journal holds a
    /// complete resume record and `aidft --resume <path>` reproduces the
    /// uninterrupted result bit-identically.
    Interrupted {
        /// Journal holding a complete resume checkpoint, when one was
        /// written.
        checkpoint: Option<PathBuf>,
        /// Progress at the point of interruption.
        partial: Box<PartialResult>,
    },
    /// A resume checkpoint could not be used: the journal is missing,
    /// has no complete record, or belongs to a different design or
    /// configuration.
    Checkpoint(CkptError),
    /// An `aidft fsck` verdict: the journal holds zero intact records
    /// and cannot be repaired. Maps to CLI exit code 5 so tooling can
    /// tell "restore from a replica or rerun" apart from ordinary
    /// checkpoint trouble.
    CorruptJournal {
        /// The journal path.
        path: String,
    },
}

impl DftError {
    /// An I/O error with its operation context, e.g.
    /// `DftError::io(format!("read {path}"), err)`.
    pub fn io(context: impl Into<String>, source: io::Error) -> DftError {
        DftError::Io {
            context: context.into(),
            source,
        }
    }

    /// A netlist parse error with its source context.
    pub fn netlist(context: impl Into<String>, source: NetlistError) -> DftError {
        DftError::Netlist {
            context: context.into(),
            source,
        }
    }

    /// A usage error carrying the message shown to the operator.
    pub fn usage(message: impl Into<String>) -> DftError {
        DftError::Usage(message.into())
    }

    /// A budget-exhaustion abort with its operation context.
    pub fn aborted(context: impl Into<String>) -> DftError {
        DftError::Aborted {
            context: context.into(),
        }
    }

    /// A lost worker batch with its operation context and panic text.
    pub fn worker_panic(context: impl Into<String>, message: impl Into<String>) -> DftError {
        DftError::WorkerPanic {
            context: context.into(),
            message: message.into(),
        }
    }

    /// `true` when the error is recoverable engine trouble (a budget
    /// abort, an isolated worker panic, or a checkpointed interrupt)
    /// rather than bad input.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            DftError::Aborted { .. } | DftError::WorkerPanic { .. } | DftError::Interrupted { .. }
        )
    }
}

impl fmt::Display for DftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DftError::Io { context, source } => write!(f, "{context}: {source}"),
            DftError::Netlist { context, source } => write!(f, "{context}: {source}"),
            DftError::FailLog(e) => write!(f, "parse log: {e}"),
            DftError::Usage(msg) => write!(f, "{msg}"),
            DftError::Aborted { context } => {
                write!(f, "{context}: aborted (budget exhausted)")
            }
            DftError::WorkerPanic { context, message } => {
                write!(f, "{context}: worker panicked: {message}")
            }
            DftError::Interrupted {
                checkpoint,
                partial,
            } => {
                write!(
                    f,
                    "flow {} interrupted in {} phase ({}): {}/{} faults detected, {} patterns",
                    partial.design,
                    partial.phase,
                    if partial.deadline {
                        "phase deadline"
                    } else {
                        "cancelled"
                    },
                    partial.detected,
                    partial.total_faults,
                    partial.patterns
                )?;
                match checkpoint {
                    Some(path) => write!(f, "; resume with --resume {}", path.display()),
                    None => write!(f, "; no checkpoint written"),
                }
            }
            DftError::Checkpoint(e) => write!(f, "cannot resume: {e}"),
            DftError::CorruptJournal { path } => {
                write!(f, "{path}: corrupt beyond repair (no intact record)")
            }
        }
    }
}

impl std::error::Error for DftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DftError::Io { source, .. } => Some(source),
            DftError::Netlist { source, .. } => Some(source),
            DftError::FailLog(e) => Some(e),
            DftError::Checkpoint(e) => Some(e),
            DftError::Usage(_)
            | DftError::Aborted { .. }
            | DftError::WorkerPanic { .. }
            | DftError::Interrupted { .. }
            | DftError::CorruptJournal { .. } => None,
        }
    }
}

impl From<CkptError> for DftError {
    fn from(e: CkptError) -> DftError {
        DftError::Checkpoint(e)
    }
}

impl From<JsonError> for DftError {
    fn from(e: JsonError) -> DftError {
        DftError::FailLog(e)
    }
}

impl From<ExecError> for DftError {
    fn from(e: ExecError) -> DftError {
        DftError::WorkerPanic {
            context: format!("parallel chunk {}", e.chunk),
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_cli_conventions() {
        let e = DftError::io(
            "read x.bench",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(e.to_string(), "read x.bench: gone");
        let e = DftError::usage("usage: aidft gen <name> <out.bench>");
        assert_eq!(e.to_string(), "usage: aidft gen <name> <out.bench>");
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e = DftError::io("write y", io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(DftError::usage("x").source().is_none());
    }

    #[test]
    fn recoverable_engine_faults_render_and_classify() {
        let e = DftError::aborted("atpg mac4");
        assert_eq!(e.to_string(), "atpg mac4: aborted (budget exhausted)");
        assert!(e.is_recoverable());

        let e = DftError::worker_panic("fault simulation", "index out of bounds");
        assert_eq!(
            e.to_string(),
            "fault simulation: worker panicked: index out of bounds"
        );
        assert!(e.is_recoverable());
        assert!(!DftError::usage("x").is_recoverable());
    }

    #[test]
    fn interrupted_renders_progress_and_resume_hint() {
        let partial = PartialResult {
            design: "mac4".into(),
            phase: "topoff",
            patterns: 12,
            detected: 90,
            total_faults: 120,
            deadline: false,
        };
        let e = DftError::Interrupted {
            checkpoint: Some(PathBuf::from("/tmp/mac4.ckpt")),
            partial: Box::new(partial.clone()),
        };
        let msg = e.to_string();
        assert!(msg.contains("mac4"), "{msg}");
        assert!(msg.contains("topoff"), "{msg}");
        assert!(msg.contains("90/120"), "{msg}");
        assert!(msg.contains("--resume /tmp/mac4.ckpt"), "{msg}");
        assert!(e.is_recoverable());

        let e = DftError::Interrupted {
            checkpoint: None,
            partial: Box::new(PartialResult {
                deadline: true,
                ..partial
            }),
        };
        let msg = e.to_string();
        assert!(msg.contains("phase deadline"), "{msg}");
        assert!(msg.contains("no checkpoint written"), "{msg}");
    }

    #[test]
    fn checkpoint_errors_chain_their_source() {
        use std::error::Error;
        let e: DftError = CkptError::NoValidRecord {
            path: "x.ckpt".to_owned(),
        }
        .into();
        assert!(e.to_string().starts_with("cannot resume:"));
        assert!(e.source().is_some());
        assert!(!e.is_recoverable());
    }

    #[test]
    fn exec_error_converts_to_worker_panic() {
        let exec = dft_logicsim::ExecError {
            chunk: 3,
            message: "boom".into(),
        };
        let e: DftError = exec.into();
        assert_eq!(e.to_string(), "parallel chunk 3: worker panicked: boom");
        assert!(e.is_recoverable());
    }
}
