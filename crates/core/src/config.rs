//! One-stop configuration namespace.
//!
//! Every tunable the flow exposes, re-exported in one place so callers
//! can `use dft_core::config::*` instead of hunting through the
//! sub-crates. All config types follow the same convention: public
//! fields for struct-update syntax, plus chainable builder setters
//! (`AtpgConfig::new().random_patterns(64).threads(8)`).
//!
//! The simulation-kernel surface ([`SimKernel`], [`AnyKernel`],
//! [`KernelKind`]) lives here too: kernel selection (`AIDFT_KERNEL`) is
//! part of flow configuration the same way thread counts are.

pub use dft_aichip::SocConfig;
pub use dft_atpg::{AtpgConfig, CompactionMode, Durability};
pub use dft_checkpoint::{CancelToken, ChaosConfig, CkptState, Journal};
pub use dft_logicsim::{AnyKernel, Executor, KernelKind, Parallelism, SimKernel};
pub use dft_netlist::generators::SystolicConfig;
pub use dft_repair::{SpareConfig, SramGeometry};
pub use dft_scan::ScanConfig;
