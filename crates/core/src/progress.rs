//! Terminal live-progress line for long flow runs.
//!
//! [`ProgressLine::spawn`] starts a background thread that polls the
//! flow's [`TraceHandle`](dft_trace::TraceHandle) for the current phase
//! and the [`MetricsHandle`](dft_metrics::MetricsHandle) for fault and
//! pattern counters, rewriting a single spinner line on stderr roughly
//! ten times a second. The line is only drawn when stderr is an
//! interactive terminal (or when forced for tests); in pipes and CI
//! logs the reporter is a silent no-op. [`ProgressLine::finish`] stops
//! the thread and clears the line so the final report starts on a
//! clean row.
//!
//! Two consumers beyond the flow commands live here too: a process-wide
//! suppression latch ([`set_suppressed`]) so the one-line spinner stays
//! out of the way when richer live output owns the terminal (`aidft
//! top`, or a serve run publishing a `--stats-addr` scrape endpoint),
//! and [`Dashboard`], the multi-line redraw primitive `aidft top`
//! renders its fleet view with.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dft_metrics::MetricsHandle;
use dft_trace::TraceHandle;

const SPINNER: [char; 4] = ['|', '/', '-', '\\'];
const POLL: Duration = Duration::from_millis(100);

/// Process-wide latch: while set, [`ProgressLine::spawn`] (and the
/// forced variant) return no-op handles and a live reporter stops
/// drawing. Set by commands whose own live output would fight the
/// spinner for the terminal.
static SUPPRESSED: AtomicBool = AtomicBool::new(false);

/// Suppresses (or re-enables) the progress line process-wide.
pub fn set_suppressed(on: bool) {
    SUPPRESSED.store(on, Ordering::Release);
}

/// `true` while the progress line is suppressed.
pub fn is_suppressed() -> bool {
    SUPPRESSED.load(Ordering::Acquire)
}

/// Handle to a running progress reporter thread.
///
/// Dropping the handle without calling [`ProgressLine::finish`] also
/// stops the thread and clears the line.
pub struct ProgressLine {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ProgressLine {
    /// Starts the reporter if stderr is a terminal; otherwise returns a
    /// no-op handle. `trace` supplies the phase name (use a
    /// `phases_only` session when full tracing is not wanted) and
    /// `metrics` the live counters.
    pub fn spawn(trace: TraceHandle, metrics: MetricsHandle) -> ProgressLine {
        ProgressLine::spawn_inner(trace, metrics, std::io::stderr().is_terminal())
    }

    /// Like [`ProgressLine::spawn`] but with an explicit TTY decision,
    /// so tests can exercise the thread without a terminal.
    pub fn spawn_forced(trace: TraceHandle, metrics: MetricsHandle) -> ProgressLine {
        ProgressLine::spawn_inner(trace, metrics, true)
    }

    fn spawn_inner(trace: TraceHandle, metrics: MetricsHandle, active: bool) -> ProgressLine {
        if !active || !trace.is_enabled() || is_suppressed() {
            return ProgressLine {
                stop: Arc::new(AtomicBool::new(true)),
                thread: None,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut tick = 0usize;
            while !stop2.load(Ordering::Acquire) {
                if is_suppressed() {
                    std::thread::sleep(POLL);
                    continue;
                }
                let line = render(&trace, &metrics, SPINNER[tick % SPINNER.len()]);
                let mut err = std::io::stderr().lock();
                // Pad-and-return keeps a shrinking line from leaving
                // stale characters behind.
                let _ = write!(err, "\r{line:<70}\r");
                let _ = err.flush();
                tick += 1;
                std::thread::sleep(POLL);
            }
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:70}\r", "");
            let _ = err.flush();
        });
        ProgressLine {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the reporter thread and clears the line.
    pub fn finish(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ProgressLine {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// Multi-line terminal redraw for live dashboards (`aidft top`): each
/// [`Dashboard::draw`] replaces the previously drawn block in place
/// (cursor-up + erase-below) when stderr is a TTY, and degrades to
/// plain appended lines in pipes and CI logs. Frames go to stderr so
/// stdout stays machine-readable.
pub struct Dashboard {
    tty: bool,
    lines_drawn: usize,
}

impl Dashboard {
    /// A dashboard that redraws in place when stderr is a terminal.
    pub fn new() -> Dashboard {
        Dashboard::with_tty(std::io::stderr().is_terminal())
    }

    /// Explicit TTY decision (tests, forced plain output).
    pub fn with_tty(tty: bool) -> Dashboard {
        Dashboard {
            tty,
            lines_drawn: 0,
        }
    }

    /// Draws one frame, replacing the previous one in TTY mode.
    pub fn draw(&mut self, lines: &[String]) {
        let mut err = std::io::stderr().lock();
        if self.tty && self.lines_drawn > 0 {
            let _ = write!(err, "\x1b[{}A\x1b[J", self.lines_drawn);
        }
        for line in lines {
            let _ = writeln!(err, "{line}");
        }
        let _ = err.flush();
        self.lines_drawn = if self.tty { lines.len() } else { 0 };
    }

    /// Erases the last frame (TTY mode; a no-op in pipes, where the
    /// frames are part of the log).
    pub fn clear(&mut self) {
        if self.tty && self.lines_drawn > 0 {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\x1b[{}A\x1b[J", self.lines_drawn);
            let _ = err.flush();
            self.lines_drawn = 0;
        }
    }
}

impl Default for Dashboard {
    fn default() -> Dashboard {
        Dashboard::new()
    }
}

/// One progress-line snapshot (exposed for tests; the thread calls this
/// every poll).
pub fn render(trace: &TraceHandle, metrics: &MetricsHandle, spinner: char) -> String {
    let phase = trace.current_phase().unwrap_or("starting");
    match metrics.get() {
        Some(m) => {
            let patterns = m.atpg_patterns.get() + m.bist_patterns.get();
            let faults = m.faultsim_detected.get() + m.transition_detected.get();
            format!(
                "{spinner} {phase}: {} patterns, {} faults detected, {} podem calls",
                patterns,
                faults,
                m.podem_calls.get()
            )
        }
        None => format!("{spinner} {phase}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_trace::{TraceConfig, TraceSession};
    use std::sync::Mutex;

    /// Tests that spawn reporters or toggle the process-wide
    /// suppression latch serialize here — the harness runs tests
    /// concurrently in one process.
    static TTY_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn render_reports_phase_and_counters() {
        let session = TraceSession::new(TraceConfig::phases_only());
        let trace = session.handle();
        let metrics = MetricsHandle::enabled();
        let _phase = trace.phase_span("atpg_random");
        metrics.get().unwrap().atpg_patterns.add(7);
        metrics.get().unwrap().podem_calls.add(3);
        let line = render(&trace, &metrics, '|');
        assert!(line.contains("atpg_random"), "line: {line}");
        assert!(line.contains("7 patterns"), "line: {line}");
        assert!(line.contains("3 podem calls"), "line: {line}");
    }

    #[test]
    fn disabled_trace_spawns_no_thread() {
        let p = ProgressLine::spawn_forced(TraceHandle::disabled(), MetricsHandle::disabled());
        assert!(p.thread.is_none());
        p.finish();
    }

    #[test]
    fn spawned_reporter_stops_cleanly() {
        let _lock = TTY_TESTS.lock().unwrap();
        let session = TraceSession::new(TraceConfig::phases_only());
        let p = ProgressLine::spawn_forced(session.handle(), MetricsHandle::enabled());
        assert!(p.thread.is_some());
        std::thread::sleep(Duration::from_millis(30));
        p.finish();
    }

    #[test]
    fn suppression_latch_blocks_the_reporter() {
        let _lock = TTY_TESTS.lock().unwrap();
        let session = TraceSession::new(TraceConfig::phases_only());
        set_suppressed(true);
        assert!(is_suppressed());
        let p = ProgressLine::spawn_forced(session.handle(), MetricsHandle::enabled());
        assert!(p.thread.is_none(), "suppressed spawn must be a no-op");
        p.finish();
        set_suppressed(false);
        let p = ProgressLine::spawn_forced(session.handle(), MetricsHandle::enabled());
        assert!(p.thread.is_some());
        p.finish();
    }

    #[test]
    fn dashboard_tracks_drawn_block_height() {
        let mut d = Dashboard::with_tty(false);
        d.draw(&["a".into(), "b".into()]);
        assert_eq!(d.lines_drawn, 0, "pipes never redraw in place");
        let mut d = Dashboard::with_tty(true);
        d.draw(&["a".into(), "b".into(), "c".into()]);
        assert_eq!(d.lines_drawn, 3);
        d.draw(&["a".into()]);
        assert_eq!(d.lines_drawn, 1);
        d.clear();
        assert_eq!(d.lines_drawn, 0);
    }
}
