//! Terminal live-progress line for long flow runs.
//!
//! [`ProgressLine::spawn`] starts a background thread that polls the
//! flow's [`TraceHandle`](dft_trace::TraceHandle) for the current phase
//! and the [`MetricsHandle`](dft_metrics::MetricsHandle) for fault and
//! pattern counters, rewriting a single spinner line on stderr roughly
//! ten times a second. The line is only drawn when stderr is an
//! interactive terminal (or when forced for tests); in pipes and CI
//! logs the reporter is a silent no-op. [`ProgressLine::finish`] stops
//! the thread and clears the line so the final report starts on a
//! clean row.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dft_metrics::MetricsHandle;
use dft_trace::TraceHandle;

const SPINNER: [char; 4] = ['|', '/', '-', '\\'];
const POLL: Duration = Duration::from_millis(100);

/// Handle to a running progress reporter thread.
///
/// Dropping the handle without calling [`ProgressLine::finish`] also
/// stops the thread and clears the line.
pub struct ProgressLine {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ProgressLine {
    /// Starts the reporter if stderr is a terminal; otherwise returns a
    /// no-op handle. `trace` supplies the phase name (use a
    /// `phases_only` session when full tracing is not wanted) and
    /// `metrics` the live counters.
    pub fn spawn(trace: TraceHandle, metrics: MetricsHandle) -> ProgressLine {
        ProgressLine::spawn_inner(trace, metrics, std::io::stderr().is_terminal())
    }

    /// Like [`ProgressLine::spawn`] but with an explicit TTY decision,
    /// so tests can exercise the thread without a terminal.
    pub fn spawn_forced(trace: TraceHandle, metrics: MetricsHandle) -> ProgressLine {
        ProgressLine::spawn_inner(trace, metrics, true)
    }

    fn spawn_inner(trace: TraceHandle, metrics: MetricsHandle, active: bool) -> ProgressLine {
        if !active || !trace.is_enabled() {
            return ProgressLine {
                stop: Arc::new(AtomicBool::new(true)),
                thread: None,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut tick = 0usize;
            while !stop2.load(Ordering::Acquire) {
                let line = render(&trace, &metrics, SPINNER[tick % SPINNER.len()]);
                let mut err = std::io::stderr().lock();
                // Pad-and-return keeps a shrinking line from leaving
                // stale characters behind.
                let _ = write!(err, "\r{line:<70}\r");
                let _ = err.flush();
                tick += 1;
                std::thread::sleep(POLL);
            }
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:70}\r", "");
            let _ = err.flush();
        });
        ProgressLine {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the reporter thread and clears the line.
    pub fn finish(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ProgressLine {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// One progress-line snapshot (exposed for tests; the thread calls this
/// every poll).
pub fn render(trace: &TraceHandle, metrics: &MetricsHandle, spinner: char) -> String {
    let phase = trace.current_phase().unwrap_or("starting");
    match metrics.get() {
        Some(m) => {
            let patterns = m.atpg_patterns.get() + m.bist_patterns.get();
            let faults = m.faultsim_detected.get() + m.transition_detected.get();
            format!(
                "{spinner} {phase}: {} patterns, {} faults detected, {} podem calls",
                patterns,
                faults,
                m.podem_calls.get()
            )
        }
        None => format!("{spinner} {phase}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_trace::{TraceConfig, TraceSession};

    #[test]
    fn render_reports_phase_and_counters() {
        let session = TraceSession::new(TraceConfig::phases_only());
        let trace = session.handle();
        let metrics = MetricsHandle::enabled();
        let _phase = trace.phase_span("atpg_random");
        metrics.get().unwrap().atpg_patterns.add(7);
        metrics.get().unwrap().podem_calls.add(3);
        let line = render(&trace, &metrics, '|');
        assert!(line.contains("atpg_random"), "line: {line}");
        assert!(line.contains("7 patterns"), "line: {line}");
        assert!(line.contains("3 podem calls"), "line: {line}");
    }

    #[test]
    fn disabled_trace_spawns_no_thread() {
        let p = ProgressLine::spawn_forced(TraceHandle::disabled(), MetricsHandle::disabled());
        assert!(p.thread.is_none());
        p.finish();
    }

    #[test]
    fn spawned_reporter_stops_cleanly() {
        let session = TraceSession::new(TraceConfig::phases_only());
        let p = ProgressLine::spawn_forced(session.handle(), MetricsHandle::enabled());
        assert!(p.thread.is_some());
        std::thread::sleep(Duration::from_millis(30));
        p.finish();
    }
}
