//! The compact JSONL event journal (schema `aidft-trace-v1`).
//!
//! One JSON object per line. The first line is a header:
//!
//! ```json
//! {"schema":"aidft-trace-v1","spans":N,"events":M,"dropped":D}
//! ```
//!
//! followed by one line per completed span (paired from the ring
//! buffers, start order), instant, and counter sample:
//!
//! ```json
//! {"ev":"span","name":"podem","tid":0,"t0":1200,"t1":5400,"depth":2,"arg":17}
//! {"ev":"instant","name":"topoff_done","tid":0,"t":6000,"arg":3}
//! {"ev":"counter","name":"faults_left","tid":1,"t":6100,"value":12}
//! ```
//!
//! Times are integer nanoseconds on the session timeline. The schema is
//! stable: fields are only ever added, never renamed or reordered. The
//! journal is *sortable*: sorting span lines by `(tid, t0, depth)`
//! reproduces a valid forest per thread, which [`validate_journal`]
//! checks.

use crate::{EventKind, TraceDump};

pub(crate) fn to_jsonl(dump: &TraceDump) -> String {
    let spans = dump.spans().unwrap_or_default();
    let mut out = String::new();
    let instants = dump
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant | EventKind::Counter))
        .count();
    out.push_str(&format!(
        "{{\"schema\":\"aidft-trace-v1\",\"spans\":{},\"events\":{},\"dropped\":{}}}\n",
        spans.len(),
        spans.len() * 2 + instants,
        dump.dropped
    ));
    for s in &spans {
        out.push_str(&format!(
            "{{\"ev\":\"span\",\"name\":\"{}\",\"tid\":{},\"t0\":{},\"t1\":{},\
             \"depth\":{},\"arg\":{}}}\n",
            s.name, s.tid, s.start_ns, s.end_ns, s.depth, s.arg
        ));
    }
    for e in &dump.events {
        match e.kind {
            EventKind::Instant => out.push_str(&format!(
                "{{\"ev\":\"instant\",\"name\":\"{}\",\"tid\":{},\"t\":{},\"arg\":{}}}\n",
                e.name, e.tid, e.ts_ns, e.arg
            )),
            EventKind::Counter => out.push_str(&format!(
                "{{\"ev\":\"counter\",\"name\":\"{}\",\"tid\":{},\"t\":{},\"value\":{}}}\n",
                e.name, e.tid, e.ts_ns, e.arg
            )),
            _ => {}
        }
    }
    out
}

/// A journal failed [`validate_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// 1-based line number the problem was detected on (0 = whole file).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JournalError {}

/// Pulls an integer field (`"key":123`) out of a JSON line. The journal
/// writer emits no nested objects, so a flat scan is exact.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Checks that a JSONL journal is well-formed and that its span lines,
/// sorted by `(tid, t0, depth)`, form a valid forest on every thread:
/// spans at one depth never overlap, and each span lies inside its
/// innermost enclosing (shallower) span.
///
/// Returns `(span_count, thread_count)` on success.
pub fn validate_journal(text: &str) -> Result<(usize, usize), JournalError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| JournalError {
        line: 0,
        message: "empty journal".into(),
    })?;
    if field_str(header, "schema") != Some("aidft-trace-v1") {
        return Err(JournalError {
            line: 1,
            message: "missing or unknown schema header".into(),
        });
    }
    let declared = field_u64(header, "spans").ok_or_else(|| JournalError {
        line: 1,
        message: "header missing span count".into(),
    })?;

    // (tid, t0, t1, depth, source line)
    let mut spans: Vec<(u64, u64, u64, u64, usize)> = Vec::new();
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let ev = field_str(line, "ev").ok_or_else(|| JournalError {
            line: lineno,
            message: "missing \"ev\" field".into(),
        })?;
        match ev {
            "span" => {
                let get = |key: &str| {
                    field_u64(line, key).ok_or_else(|| JournalError {
                        line: lineno,
                        message: format!("span missing \"{key}\""),
                    })
                };
                let (tid, t0, t1, depth) = (get("tid")?, get("t0")?, get("t1")?, get("depth")?);
                if field_str(line, "name").is_none() {
                    return Err(JournalError {
                        line: lineno,
                        message: "span missing \"name\"".into(),
                    });
                }
                if t1 < t0 {
                    return Err(JournalError {
                        line: lineno,
                        message: format!("span ends before it starts ({t1} < {t0})"),
                    });
                }
                spans.push((tid, t0, t1, depth, lineno));
            }
            "instant" | "counter" => {
                if field_u64(line, "t").is_none() || field_str(line, "name").is_none() {
                    return Err(JournalError {
                        line: lineno,
                        message: format!("{ev} missing \"t\" or \"name\""),
                    });
                }
            }
            other => {
                return Err(JournalError {
                    line: lineno,
                    message: format!("unknown event kind \"{other}\""),
                })
            }
        }
    }
    if spans.len() as u64 != declared {
        return Err(JournalError {
            line: 1,
            message: format!(
                "header declares {declared} spans, journal has {}",
                spans.len()
            ),
        });
    }

    // Sorting by (tid, t0, depth) must reproduce a valid forest.
    spans.sort_unstable_by_key(|&(tid, t0, _, depth, _)| (tid, t0, depth));
    let mut threads = 0usize;
    let mut cur_tid = None;
    // Stack of (t1, depth) for currently-enclosing spans.
    let mut stack: Vec<(u64, u64)> = Vec::new();
    for &(tid, t0, t1, depth, lineno) in &spans {
        if cur_tid != Some(tid) {
            cur_tid = Some(tid);
            threads += 1;
            stack.clear();
        }
        while let Some(&(end, d)) = stack.last() {
            if end <= t0 || d >= depth {
                stack.pop();
            } else {
                break;
            }
        }
        if depth as usize != stack.len() {
            return Err(JournalError {
                line: lineno,
                message: format!("span at depth {depth} has {} enclosing spans", stack.len()),
            });
        }
        if let Some(&(end, _)) = stack.last() {
            if t1 > end {
                return Err(JournalError {
                    line: lineno,
                    message: format!("span [{t0},{t1}] escapes its parent (ends {end})"),
                });
            }
        }
        stack.push((t1, depth));
    }
    Ok((spans.len(), threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, TraceConfig, TraceSession};

    #[test]
    fn journal_round_trips_through_validator() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        {
            let _a = span!(t, "flow");
            {
                let _b = span!(t, "atpg", 9);
                let _c = span!(t, "podem", 17);
            }
            t.instant("done", 1);
            t.counter("left", 2);
        }
        let jsonl = session.snapshot().to_jsonl();
        let (spans, threads) = validate_journal(&jsonl).unwrap();
        assert_eq!(spans, 3);
        assert_eq!(threads, 1);
        assert!(jsonl.lines().next().unwrap().contains("aidft-trace-v1"));
        assert!(jsonl.contains("\"ev\":\"instant\""));
        assert!(jsonl.contains("\"ev\":\"counter\""));
    }

    #[test]
    fn validator_rejects_malformed_journals() {
        assert!(validate_journal("").is_err());
        assert!(validate_journal("{\"schema\":\"other\"}\n").is_err());
        let bad_count = "{\"schema\":\"aidft-trace-v1\",\"spans\":2,\"events\":0,\"dropped\":0}\n\
             {\"ev\":\"span\",\"name\":\"a\",\"tid\":0,\"t0\":0,\"t1\":5,\"depth\":0,\"arg\":0}\n";
        assert!(validate_journal(bad_count).is_err());
        let escapes_parent =
            "{\"schema\":\"aidft-trace-v1\",\"spans\":2,\"events\":4,\"dropped\":0}\n\
             {\"ev\":\"span\",\"name\":\"a\",\"tid\":0,\"t0\":0,\"t1\":5,\"depth\":0,\"arg\":0}\n\
             {\"ev\":\"span\",\"name\":\"b\",\"tid\":0,\"t0\":3,\"t1\":9,\"depth\":1,\"arg\":0}\n";
        assert!(validate_journal(escapes_parent).is_err());
        let ok = "{\"schema\":\"aidft-trace-v1\",\"spans\":2,\"events\":4,\"dropped\":0}\n\
             {\"ev\":\"span\",\"name\":\"a\",\"tid\":0,\"t0\":0,\"t1\":9,\"depth\":0,\"arg\":0}\n\
             {\"ev\":\"span\",\"name\":\"b\",\"tid\":0,\"t0\":3,\"t1\":7,\"depth\":1,\"arg\":0}\n";
        assert_eq!(validate_journal(ok).unwrap(), (2, 1));
    }
}
