//! Chrome/Perfetto `trace_event` JSON export.
//!
//! The output is the JSON-object form (`{"traceEvents": [...]}`) of the
//! Trace Event Format, loadable directly in `ui.perfetto.dev` or
//! `chrome://tracing`:
//!
//! * paired Begin/End events are emitted as complete (`"ph":"X"`) slices
//!   with microsecond `ts`/`dur` (3 decimal places preserve the
//!   nanosecond resolution of the ring timestamps),
//! * [`EventKind::Instant`] becomes a thread-scoped instant (`"ph":"i"`),
//! * [`EventKind::Counter`] becomes a counter sample (`"ph":"C"`),
//! * one process metadata record names the process `aidft`.
//!
//! Span args travel in `"args":{"arg":N}`; the logical worker id is the
//! `tid`.

use crate::{EventKind, SpanNode, TraceDump};

/// Formats nanoseconds as microseconds with nanosecond precision
/// (`1234` ns -> `1.234`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_span(node: &SpanNode, out: &mut Vec<String>) {
    let mut ev = format!(
        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"aidft\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
        node.name,
        node.tid,
        us(node.start_ns),
        us(node.end_ns.saturating_sub(node.start_ns)),
    );
    if node.arg != 0 {
        ev.push_str(&format!(",\"args\":{{\"arg\":{}}}", node.arg));
    }
    ev.push('}');
    out.push(ev);
    for c in &node.children {
        push_span(c, out);
    }
}

/// Serializes a dump as Perfetto-loadable `trace_event` JSON.
///
/// Unpaired Begin/End events (possible after ring overflow) degrade
/// gracefully: pairing is per-thread and best-effort, so intact threads
/// still render.
pub(crate) fn to_perfetto_json(dump: &TraceDump) -> String {
    let mut out: Vec<String> = Vec::with_capacity(dump.events.len() / 2 + 2);
    out.push(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"aidft\"}}"
            .to_string(),
    );
    match dump.build_forest() {
        Ok(forest) => {
            for root in &forest {
                push_span(root, &mut out);
            }
        }
        Err(_) => {
            // Overflowed or still-open session: fall back to raw
            // Begin/End ("B"/"E") events, which viewers pair leniently.
            for e in &dump.events {
                let ph = match e.kind {
                    EventKind::Begin => "B",
                    EventKind::End => "E",
                    _ => continue,
                };
                out.push(format!(
                    "{{\"ph\":\"{}\",\"name\":\"{}\",\"cat\":\"aidft\",\"pid\":1,\
                     \"tid\":{},\"ts\":{}}}",
                    ph,
                    e.name,
                    e.tid,
                    us(e.ts_ns)
                ));
            }
        }
    }
    for e in &dump.events {
        match e.kind {
            EventKind::Instant => out.push(format!(
                "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"aidft\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
                e.name,
                e.tid,
                us(e.ts_ns),
                e.arg
            )),
            EventKind::Counter => out.push(format!(
                "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                e.name,
                e.tid,
                us(e.ts_ns),
                e.arg
            )),
            _ => {}
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
        out.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use crate::{span, TraceConfig, TraceSession};

    #[test]
    fn perfetto_json_has_complete_events_and_metadata() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        {
            let _a = span!(t, "flow");
            let _b = span!(t, "atpg", 42);
            t.instant("topoff_done", 3);
            t.counter("faults_left", 17);
        }
        let json = session.snapshot().to_perfetto_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"flow\""));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"atpg\""));
        assert!(json.contains("\"args\":{\"arg\":42}"));
        assert!(json.contains("\"ph\":\"i\",\"name\":\"topoff_done\""));
        assert!(json.contains("\"ph\":\"C\",\"name\":\"faults_left\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn open_session_falls_back_to_begin_end_events() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        let _open = span!(t, "still_running");
        let json = session.snapshot().to_perfetto_json();
        assert!(json.contains("\"ph\":\"B\",\"name\":\"still_running\""));
    }
}
