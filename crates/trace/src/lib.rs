//! `dft-trace`: hierarchical span tracing for the DFT pipeline.
//!
//! Where `dft-metrics` answers *how much* work a run did (counters,
//! histograms), this crate answers *where the wall-clock went*: every
//! phase, worker batch, and (sampled) per-fault search records a span
//! into a per-thread ring buffer, and a finished session exports
//!
//! * Chrome/Perfetto `trace_event` JSON — load it in `ui.perfetto.dev`
//!   ([`TraceDump::to_perfetto_json`]), and
//! * a compact JSONL event journal with a stable schema for tooling
//!   ([`TraceDump::to_jsonl`], schema in `EXPERIMENTS.md`).
//!
//! The design rules mirror `dft-metrics`:
//!
//! 1. **Zero cost when disabled.** Instrumented code holds a
//!    [`TraceHandle`]; the disabled handle is `None` and every record
//!    site is a single untaken branch — no timestamp is read, no buffer
//!    is touched.
//! 2. **Lock-free hot path.** Each recording thread owns a
//!    [`single-writer ring buffer`](#ring-buffers): writes are plain
//!    relaxed atomic stores into pre-allocated slots, no locks, no
//!    allocation. The only locks are at worker registration (once per
//!    thread per session) and at export (after the workers joined).
//! 3. **Bounded volume.** Per-fault spans are sampled
//!    ([`TraceConfig::fault_span_every`]); rings overwrite their oldest
//!    events on overflow and count the loss ([`TraceDump::dropped`])
//!    instead of growing without bound.
//!
//! # Ring buffers
//!
//! A [`WorkerBuffer`] is written by exactly one thread (enforced by the
//! thread-local registration in [`TraceHandle::recorder`]) and read only
//! after that thread's work is joined, so relaxed atomics are sufficient
//! and every write is wait-free. Timestamps are monotonic nanoseconds
//! since the owning [`TraceSession`] started, so spans from different
//! workers land on one common timeline.
//!
//! # Example
//!
//! ```
//! use dft_trace::{span, TraceConfig, TraceSession};
//!
//! let session = TraceSession::new(TraceConfig::default());
//! let trace = session.handle();
//! {
//!     let _flow = span!(trace, "flow");
//!     let _atpg = span!(trace, "podem", 17); // arg = fault index
//! }
//! let dump = session.snapshot();
//! assert_eq!(dump.events.len(), 4); // two begins + two ends
//! assert!(dump.to_perfetto_json().contains("\"podem\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

mod journal;
mod perfetto;

pub use journal::{validate_journal, JournalError};

/// Tuning knobs for a [`TraceSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record one per-fault search span (PODEM / D-algorithm /
    /// per-pattern deductive) for every `n`-th fault targeted; `0`
    /// disables per-fault spans entirely. Batch and phase spans are
    /// never sampled. The default (16) bounds span volume to a few
    /// hundred per run while keeping the tail visible.
    pub fault_span_every: u64,
    /// Record per-chunk worker batch spans in the parallel
    /// fault-simulation paths (PPSFP, transition). Default `true`.
    pub batch_spans: bool,
    /// Ring capacity in events per worker buffer (rounded up to a power
    /// of two). On overflow the oldest events are overwritten and
    /// counted in [`TraceDump::dropped`].
    pub buffer_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            fault_span_every: 16,
            batch_spans: true,
            buffer_capacity: 1 << 13,
        }
    }
}

impl TraceConfig {
    /// A minimal config recording only phase/session spans: no per-fault
    /// spans, no worker batch spans, small rings. Used by the flow when
    /// tracing was not requested but phase timings (and the live
    /// progress phase) still need a span clock.
    pub fn phases_only() -> TraceConfig {
        TraceConfig {
            fault_span_every: 0,
            batch_spans: false,
            buffer_capacity: 1 << 9,
        }
    }
}

/// What one ring-buffer slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`arg` = user payload).
    Begin,
    /// The most recent unmatched [`EventKind::Begin`] of the same buffer
    /// closed.
    End,
    /// A point event.
    Instant,
    /// A sampled counter value (`arg` = value).
    Counter,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
            EventKind::Counter => 3,
        }
    }

    fn from_code(c: u64) -> EventKind {
        match c {
            0 => EventKind::Begin,
            1 => EventKind::End,
            2 => EventKind::Instant,
            _ => EventKind::Counter,
        }
    }
}

/// A single-writer, lock-free event ring. Written only by its owning
/// thread (plain relaxed stores into pre-allocated slots), read by the
/// session after the owner's work is joined.
#[derive(Debug)]
pub struct WorkerBuffer {
    /// Session-local logical thread id (0 = first registrant, usually
    /// the main thread).
    tid: u32,
    /// Session start, copied so the hot path never dereferences the
    /// session to take a timestamp.
    start: Instant,
    /// Total events ever written (monotonic; slot = `head % capacity`).
    head: AtomicU64,
    /// Slot storage, `3` words per event: timestamp, packed
    /// kind/name-id, arg.
    slots: Box<[AtomicU64]>,
    /// Capacity in events (power of two).
    capacity: u64,
    /// Per-buffer name table: id = index. Only the owner writes (on
    /// first use of a name), only the exporter reads after join; the
    /// lock is never contended.
    names: Mutex<Vec<&'static str>>,
}

impl WorkerBuffer {
    fn new(tid: u32, start: Instant, capacity: usize) -> WorkerBuffer {
        let capacity = capacity.next_power_of_two().max(8) as u64;
        let slots = (0..capacity * 3).map(|_| AtomicU64::new(0)).collect();
        WorkerBuffer {
            tid,
            start,
            head: AtomicU64::new(0),
            slots,
            capacity,
            names: Mutex::new(Vec::new()),
        }
    }

    /// Interns `name` in this buffer's table (owner thread only; linear
    /// scan is fine — a buffer sees a handful of distinct names).
    fn name_id(&self, name: &'static str) -> u64 {
        let mut names = self.names.lock().unwrap();
        if let Some(i) = names
            .iter()
            .position(|&n| std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name)
        {
            return i as u64;
        }
        names.push(name);
        (names.len() - 1) as u64
    }

    /// Records one event (owner thread only).
    fn push(&self, kind: EventKind, name_id: u64, arg: u64) {
        let ts = self.start.elapsed().as_nanos() as u64;
        let h = self.head.load(Ordering::Relaxed);
        let base = ((h % self.capacity) * 3) as usize;
        self.slots[base].store(ts, Ordering::Relaxed);
        self.slots[base + 1].store(kind.code() << 32 | name_id, Ordering::Relaxed);
        self.slots[base + 2].store(arg, Ordering::Relaxed);
        self.head.store(h + 1, Ordering::Relaxed);
    }

    /// Drains the surviving events in write order, plus the number of
    /// overwritten (lost) events.
    fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let names = self.names.lock().unwrap();
        let head = self.head.load(Ordering::Relaxed);
        let lost = head.saturating_sub(self.capacity);
        let mut out = Vec::with_capacity((head - lost) as usize);
        for i in lost..head {
            let base = ((i % self.capacity) * 3) as usize;
            let packed = self.slots[base + 1].load(Ordering::Relaxed);
            out.push(TraceEvent {
                ts_ns: self.slots[base].load(Ordering::Relaxed),
                tid: self.tid,
                kind: EventKind::from_code(packed >> 32),
                name: names
                    .get((packed & 0xFFFF_FFFF) as usize)
                    .copied()
                    .unwrap_or("?"),
                arg: self.slots[base + 2].load(Ordering::Relaxed),
            });
        }
        (out, lost)
    }
}

/// The shared state behind one tracing session.
#[derive(Debug)]
struct TraceInner {
    /// Unique session id (thread-local recorder cache key).
    id: u64,
    start: Instant,
    cfg: TraceConfig,
    buffers: Mutex<Vec<Arc<WorkerBuffer>>>,
    /// Name of the innermost open *phase* span, for live progress.
    phase: Mutex<Option<&'static str>>,
}

static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread recorder cache: `(session id, buffer)`. Capped small;
    /// a thread rarely serves more than a couple of live sessions.
    static RECORDERS: RefCell<Vec<(u64, Arc<WorkerBuffer>)>> = const { RefCell::new(Vec::new()) };
}

/// Owns a tracing session: hand out [`TraceHandle`]s with
/// [`TraceSession::handle`], run the instrumented work, then export with
/// [`TraceSession::snapshot`].
#[derive(Debug)]
pub struct TraceSession {
    inner: Arc<TraceInner>,
}

impl TraceSession {
    /// Starts a session; its clock (timestamp zero) is *now*.
    pub fn new(cfg: TraceConfig) -> TraceSession {
        TraceSession {
            inner: Arc::new(TraceInner {
                id: SESSION_IDS.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                cfg,
                buffers: Mutex::new(Vec::new()),
                phase: Mutex::new(None),
            }),
        }
    }

    /// A cheap, cloneable recording handle for this session.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle(Some(self.inner.clone()))
    }

    /// Collects every buffer's events onto the common timeline. Safe to
    /// call while the owning threads are still alive, but intended for
    /// after the instrumented work joined (events written concurrently
    /// with the snapshot may be missed).
    pub fn snapshot(&self) -> TraceDump {
        let buffers = self.inner.buffers.lock().unwrap();
        let mut events = Vec::new();
        let mut dropped = 0;
        for b in buffers.iter() {
            let (ev, lost) = b.drain();
            events.extend(ev);
            dropped += lost;
        }
        // Stable sort onto the session timeline; per-buffer write order
        // is preserved for equal timestamps, so per-thread Begin/End
        // pairing survives the merge.
        events.sort_by_key(|e| (e.ts_ns, e.tid));
        TraceDump { events, dropped }
    }
}

/// A cheap, cloneable reference to a [`TraceSession`] — or the disabled
/// no-op. Instrumented structs store one; every record site is one
/// branch when disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<TraceInner>>);

impl TraceHandle {
    /// The disabled handle: all instrumentation compiles to one branch.
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// `true` when recording.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// `true` when the `i`-th fault of a run should get a per-fault span
    /// (sampling knob [`TraceConfig::fault_span_every`]; always `false`
    /// when disabled).
    #[inline]
    pub fn fault_sampled(&self, i: u64) -> bool {
        match &self.0 {
            None => false,
            Some(inner) => {
                let n = inner.cfg.fault_span_every;
                n > 0 && i.is_multiple_of(n)
            }
        }
    }

    /// `true` when worker batch spans should be recorded.
    #[inline]
    pub fn batch_spans(&self) -> bool {
        self.0.as_ref().map(|i| i.cfg.batch_spans).unwrap_or(false)
    }

    /// This thread's ring buffer for the session (registering it on
    /// first use). `None` when disabled.
    fn recorder(&self) -> Option<Arc<WorkerBuffer>> {
        let inner = self.0.as_ref()?;
        RECORDERS.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == inner.id) {
                return Some(buf.clone());
            }
            let mut buffers = inner.buffers.lock().unwrap();
            let buf = Arc::new(WorkerBuffer::new(
                buffers.len() as u32,
                inner.start,
                inner.cfg.buffer_capacity,
            ));
            buffers.push(buf.clone());
            drop(buffers);
            if cache.len() >= 8 {
                cache.remove(0);
            }
            cache.push((inner.id, buf.clone()));
            Some(buf)
        })
    }

    /// Opens a span; it closes when the returned guard drops. Nothing is
    /// recorded (and no clock is read) when disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_arg(name, 0)
    }

    /// Opens a span carrying a `u64` payload (fault index, worker index,
    /// care bits, ...).
    #[inline]
    pub fn span_arg(&self, name: &'static str, arg: u64) -> Span {
        Span(self.recorder().map(|buf| {
            let id = buf.name_id(name);
            buf.push(EventKind::Begin, id, arg);
            (buf, id)
        }))
    }

    /// Opens a span that *also* reports its duration when finished —
    /// the clock runs even when tracing is disabled, so phase timings
    /// are available on every run. Use [`TimedSpan::finish`].
    pub fn timed_span(&self, name: &'static str) -> TimedSpan {
        TimedSpan {
            started: Instant::now(),
            rec: self.recorder().map(|buf| {
                let id = buf.name_id(name);
                buf.push(EventKind::Begin, id, 0);
                (buf, id)
            }),
        }
    }

    /// A [`TraceHandle::timed_span`] that additionally publishes `name`
    /// as the session's current phase (for the live progress line).
    pub fn phase_span(&self, name: &'static str) -> TimedSpan {
        if let Some(inner) = &self.0 {
            *inner.phase.lock().unwrap() = Some(name);
        }
        self.timed_span(name)
    }

    /// The innermost phase currently open (label of the most recent
    /// [`TraceHandle::phase_span`]); `None` when disabled or before the
    /// first phase.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.0.as_ref().and_then(|i| *i.phase.lock().unwrap())
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&self, name: &'static str, arg: u64) {
        if let Some(buf) = self.recorder() {
            let id = buf.name_id(name);
            buf.push(EventKind::Instant, id, arg);
        }
    }

    /// Records a counter sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: u64) {
        if let Some(buf) = self.recorder() {
            let id = buf.name_id(name);
            buf.push(EventKind::Counter, id, value);
        }
    }
}

/// RAII guard from [`TraceHandle::span`]: records the matching
/// [`EventKind::End`] on drop. Never reads a clock when disabled.
#[derive(Debug)]
#[must_use = "a span closes when this guard drops"]
pub struct Span(Option<(Arc<WorkerBuffer>, u64)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((buf, id)) = self.0.take() {
            buf.push(EventKind::End, id, 0);
        }
    }
}

/// RAII guard from [`TraceHandle::timed_span`]: records the matching end
/// event (when enabled) and reports the elapsed wall-clock.
#[derive(Debug)]
#[must_use = "a span closes when this guard drops"]
pub struct TimedSpan {
    started: Instant,
    rec: Option<(Arc<WorkerBuffer>, u64)>,
}

impl TimedSpan {
    /// Closes the span and returns its duration (measured even when
    /// tracing is disabled).
    pub fn finish(mut self) -> Duration {
        if let Some((buf, id)) = self.rec.take() {
            buf.push(EventKind::End, id, 0);
        }
        self.started.elapsed()
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        if let Some((buf, id)) = self.rec.take() {
            buf.push(EventKind::End, id, 0);
        }
    }
}

/// Opens a span on a [`TraceHandle`]: `span!(trace, "name")` or
/// `span!(trace, "name", arg)`. Bind the result (`let _g = span!(...)`)
/// so it stays open for the scope.
#[macro_export]
macro_rules! span {
    ($handle:expr, $name:literal) => {
        $handle.span($name)
    };
    ($handle:expr, $name:literal, $arg:expr) => {
        $handle.span_arg($name, $arg as u64)
    };
}

/// One drained ring-buffer slot on the session timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the session started.
    pub ts_ns: u64,
    /// Logical thread id (session-local).
    pub tid: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Interned span/event name.
    pub name: &'static str,
    /// User payload (`0` when unused).
    pub arg: u64,
}

/// A completed span reconstructed from a Begin/End pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// Logical thread id.
    pub tid: u32,
    /// Start, nanoseconds on the session timeline.
    pub start_ns: u64,
    /// End, nanoseconds on the session timeline.
    pub end_ns: u64,
    /// User payload from the Begin event.
    pub arg: u64,
    /// Nesting depth on its thread (0 = top level).
    pub depth: u32,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

/// All events of one [`TraceSession::snapshot`], merged and sorted onto
/// the session timeline.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Events sorted by `(ts_ns, tid)`, per-thread write order preserved.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrites across all buffers.
    pub dropped: u64,
}

/// A Begin event with no matching End (or vice versa) was found while
/// pairing a thread's events into spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestError {
    /// Thread the mismatch occurred on.
    pub tid: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid {}: {}", self.tid, self.message)
    }
}

impl std::error::Error for ForestError {}

impl TraceDump {
    /// The `arg` payloads of every [`EventKind::Instant`] named `name`,
    /// in timeline order. The lookup half of a span→event bridge: a
    /// subsystem marks point events (`quarantine`, `retest`, ...) on
    /// the trace timeline, and an observer joins them back out by name
    /// without walking the span forest.
    pub fn instants_named(&self, name: &str) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == name)
            .map(|e| e.arg)
            .collect()
    }

    /// Pairs each thread's Begin/End events into a forest of
    /// [`SpanNode`]s (top-level spans of every thread, in start order).
    /// Errors on an unmatched Begin or End — which can only happen after
    /// ring overflow ([`TraceDump::dropped`] `> 0`) or a snapshot taken
    /// while spans were still open.
    pub fn build_forest(&self) -> Result<Vec<SpanNode>, ForestError> {
        let mut roots: Vec<SpanNode> = Vec::new();
        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            // Stack of open spans; children accumulate per level.
            let mut stack: Vec<SpanNode> = Vec::new();
            let mut done: Vec<SpanNode> = Vec::new();
            for e in self.events.iter().filter(|e| e.tid == tid) {
                match e.kind {
                    EventKind::Begin => stack.push(SpanNode {
                        name: e.name,
                        tid,
                        start_ns: e.ts_ns,
                        end_ns: e.ts_ns,
                        arg: e.arg,
                        depth: stack.len() as u32,
                        children: Vec::new(),
                    }),
                    EventKind::End => {
                        let mut node = stack.pop().ok_or_else(|| ForestError {
                            tid,
                            message: format!("unmatched end of `{}`", e.name),
                        })?;
                        if node.name != e.name {
                            return Err(ForestError {
                                tid,
                                message: format!("end of `{}` closes span `{}`", e.name, node.name),
                            });
                        }
                        node.end_ns = e.ts_ns;
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(node),
                            None => done.push(node),
                        }
                    }
                    EventKind::Instant | EventKind::Counter => {}
                }
            }
            if let Some(open) = stack.last() {
                return Err(ForestError {
                    tid,
                    message: format!("span `{}` never closed", open.name),
                });
            }
            roots.extend(done);
        }
        roots.sort_by_key(|n| (n.start_ns, n.tid));
        Ok(roots)
    }

    /// Flattens [`TraceDump::build_forest`] into all spans (any depth),
    /// in start order.
    pub fn spans(&self) -> Result<Vec<SpanNode>, ForestError> {
        fn walk(node: &SpanNode, out: &mut Vec<SpanNode>) {
            let mut flat = node.clone();
            flat.children = Vec::new();
            out.push(flat);
            for c in &node.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        for root in self.build_forest()? {
            walk(&root, &mut out);
        }
        out.sort_by_key(|n| (n.start_ns, n.tid, n.depth));
        Ok(out)
    }

    /// Serializes as Chrome/Perfetto `trace_event` JSON (see
    /// [`perfetto`](TraceDump::to_perfetto_json) module docs).
    pub fn to_perfetto_json(&self) -> String {
        perfetto::to_perfetto_json(self)
    }

    /// Serializes as the JSONL event journal (one object per line;
    /// schema `aidft-trace-v1`, documented in `EXPERIMENTS.md`).
    pub fn to_jsonl(&self) -> String {
        journal::to_jsonl(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_costs_no_clock() {
        let t = TraceHandle::disabled();
        assert!(!t.is_enabled());
        assert!(!t.fault_sampled(0));
        assert!(!t.batch_spans());
        assert!(t.current_phase().is_none());
        let _g = t.span("x");
        t.instant("i", 1);
        t.counter("c", 2);
        // TimedSpan still measures.
        let g = t.timed_span("phase");
        std::thread::sleep(Duration::from_millis(1));
        assert!(g.finish() >= Duration::from_millis(1));
    }

    #[test]
    fn instants_filter_by_name_in_timeline_order() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        t.instant("quarantine", 3);
        t.instant("retest", 9);
        t.instant("quarantine", 7);
        t.counter("quarantine", 99); // a counter, not an instant
        let dump = session.snapshot();
        assert_eq!(dump.instants_named("quarantine"), vec![3, 7]);
        assert_eq!(dump.instants_named("retest"), vec![9]);
        assert!(dump.instants_named("absent").is_empty());
    }

    #[test]
    fn spans_nest_and_never_overlap_on_one_thread() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        {
            let _a = span!(t, "a");
            {
                let _b = span!(t, "b", 7);
                let _c = span!(t, "c");
            }
            let _d = span!(t, "d");
        }
        let dump = session.snapshot();
        assert_eq!(dump.dropped, 0);
        let forest = dump.build_forest().unwrap();
        assert_eq!(forest.len(), 1);
        let a = &forest[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.depth, 0);
        assert_eq!(
            a.children.iter().map(|c| c.name).collect::<Vec<_>>(),
            ["b", "d"]
        );
        assert_eq!(a.children[0].arg, 7);
        assert_eq!(a.children[0].children[0].name, "c");
        assert_eq!(a.children[0].children[0].depth, 2);
        // Nesting: children lie within parents; siblings never overlap.
        for spans in dump.spans().unwrap().windows(2) {
            let (x, y) = (&spans[0], &spans[1]);
            assert!(x.start_ns <= x.end_ns);
            if x.tid == y.tid && y.depth <= x.depth {
                assert!(y.start_ns >= x.end_ns, "sibling overlap: {x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn concurrent_workers_merge_onto_one_timeline() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        let _root = span!(t, "root");
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..10u64 {
                        let _g = t.span_arg("batch", w * 100 + i);
                    }
                });
            }
        });
        drop(_root);
        let dump = session.snapshot();
        let spans = dump.spans().unwrap();
        assert_eq!(spans.iter().filter(|s| s.name == "batch").count(), 40);
        // 4 workers + the main thread.
        let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 5);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let session = TraceSession::new(TraceConfig {
            buffer_capacity: 16,
            ..TraceConfig::default()
        });
        let t = session.handle();
        for i in 0..100 {
            t.instant("tick", i);
        }
        let dump = session.snapshot();
        assert_eq!(dump.events.len(), 16);
        assert_eq!(dump.dropped, 84);
        // Survivors are the newest.
        assert_eq!(dump.events.last().unwrap().arg, 99);
    }

    #[test]
    fn unbalanced_events_are_a_forest_error() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        let g = t.span("open");
        let dump = session.snapshot();
        assert!(dump.build_forest().is_err());
        drop(g);
        assert!(session.snapshot().build_forest().is_ok());
    }

    #[test]
    fn phase_span_publishes_current_phase() {
        let session = TraceSession::new(TraceConfig::phases_only());
        let t = session.handle();
        assert_eq!(t.current_phase(), None);
        let p = t.phase_span("atpg");
        assert_eq!(t.current_phase(), Some("atpg"));
        let d = p.finish();
        assert!(d <= Instant::now().elapsed() + d); // smoke: finite
        let _p2 = t.phase_span("compress");
        assert_eq!(t.current_phase(), Some("compress"));
    }

    #[test]
    fn fault_sampling_respects_every_n() {
        let session = TraceSession::new(TraceConfig {
            fault_span_every: 4,
            ..TraceConfig::default()
        });
        let t = session.handle();
        let sampled: Vec<bool> = (0..8).map(|i| t.fault_sampled(i)).collect();
        assert_eq!(
            sampled,
            [true, false, false, false, true, false, false, false]
        );
        let off = TraceSession::new(TraceConfig {
            fault_span_every: 0,
            ..TraceConfig::default()
        });
        assert!((0..8).all(|i| !off.handle().fault_sampled(i)));
    }

    #[test]
    fn timed_span_duration_matches_recorded_span() {
        let session = TraceSession::new(TraceConfig::default());
        let t = session.handle();
        let g = t.timed_span("work");
        std::thread::sleep(Duration::from_millis(2));
        let d = g.finish();
        let spans = session.snapshot().spans().unwrap();
        let s = spans.iter().find(|s| s.name == "work").unwrap();
        let recorded = Duration::from_nanos(s.end_ns - s.start_ns);
        assert!(recorded >= Duration::from_millis(2));
        assert!(d >= recorded);
    }
}
