//! Property tests: concurrent workers always produce a journal that
//! sorts into a valid forest, and the in-memory forest agrees with the
//! journal validator.

use dft_trace::{validate_journal, TraceConfig, TraceSession};
use proptest::prelude::*;

/// Expands a seed into per-worker span programs (a bool per step: open a
/// nested span, or close the innermost). SplitMix64 keeps the expansion
/// deterministic for the sampled inputs.
fn programs(seed: u64, workers: usize, max_steps: usize) -> Vec<Vec<bool>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..workers)
        .map(|_| {
            let steps = 1 + (next() as usize) % max_steps;
            (0..steps).map(|_| next() & 1 == 1).collect()
        })
        .collect()
}

/// A tiny span program one worker executes.
fn run_program(t: &dft_trace::TraceHandle, steps: &[bool]) {
    let mut open = Vec::new();
    for (i, &push) in steps.iter().enumerate() {
        if push {
            open.push(t.span_arg("work", i as u64));
        } else {
            open.pop();
        }
        // A little leaf work between stack ops.
        let _leaf = t.span_arg("leaf", i as u64);
    }
    // Guards drop here, closing any still-open spans innermost-first.
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of worker span programs drains to a journal the
    /// validator accepts, with one thread lane per worker and span
    /// counts matching the work submitted.
    #[test]
    fn concurrent_workers_journal_sorts_into_valid_forest(
        seed in 0u64..1 << 48,
        workers in 1usize..6,
    ) {
        let progs = programs(seed, workers, 24);
        let session = TraceSession::new(TraceConfig::default());
        let handle = session.handle();
        std::thread::scope(|s| {
            for prog in &progs {
                let t = handle.clone();
                s.spawn(move || run_program(&t, prog));
            }
        });
        let dump = session.snapshot();
        prop_assert_eq!(dump.dropped, 0);

        // The ring contents pair into a clean forest...
        let spans = dump.spans().expect("rings pair into a valid forest");
        let leaves = spans.iter().filter(|s| s.name == "leaf").count();
        let expected_leaves: usize = progs.iter().map(|p| p.len()).sum();
        prop_assert_eq!(leaves, expected_leaves);

        // ...and the exported journal independently re-validates.
        let jsonl = dump.to_jsonl();
        let (span_count, threads) =
            validate_journal(&jsonl).expect("journal sorts into a valid forest");
        prop_assert_eq!(span_count, spans.len());
        prop_assert_eq!(threads, progs.len());

        // Per-thread, spans at equal depth never overlap.
        for a in &spans {
            for b in &spans {
                if a.tid == b.tid && a.depth == b.depth && a.start_ns < b.start_ns {
                    prop_assert!(
                        a.end_ns <= b.start_ns,
                        "overlap on tid {}: [{},{}] vs [{},{}]",
                        a.tid, a.start_ns, a.end_ns, b.start_ns, b.end_ns
                    );
                }
            }
        }
    }

    /// The Perfetto export is structurally sound JSON for any workload:
    /// balanced braces/brackets throughout.
    #[test]
    fn perfetto_export_is_balanced_json(
        seed in 0u64..1 << 48,
        workers in 1usize..4,
    ) {
        let progs = programs(seed, workers, 12);
        let session = TraceSession::new(TraceConfig::default());
        let handle = session.handle();
        std::thread::scope(|s| {
            for prog in &progs {
                let t = handle.clone();
                s.spawn(move || run_program(&t, prog));
            }
        });
        let json = session.snapshot().to_perfetto_json();
        let mut depth = 0i64;
        let mut square = 0i64;
        for c in json.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                '[' => square += 1,
                ']' => square -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0 && square >= 0);
        }
        prop_assert_eq!(depth, 0);
        prop_assert_eq!(square, 0);
        prop_assert!(json.contains("\"traceEvents\""));
    }
}
