//! Criterion: PPSFP fault-simulation throughput (fault-pattern pairs/s).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::fault::{universe_stuck_at, FaultList};
use dft_core::logicsim::{FaultSim, PatternSet};
use dft_core::netlist::generators::{mac_pe, random_logic};

fn bench_ppsfp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppsfp");
    group.sample_size(10);
    for gates in [500usize, 2000] {
        let nl = random_logic(32, gates, 0xFA);
        let sim = FaultSim::new(&nl);
        let faults = universe_stuck_at(&nl);
        let ps = PatternSet::random(&nl, 64, 3);
        group.throughput(Throughput::Elements((faults.len() * 64) as u64));
        group.bench_with_input(BenchmarkId::new("random_logic", gates), &gates, |b, _| {
            b.iter(|| {
                let mut list = FaultList::new(faults.clone());
                sim.run(&ps, &mut list);
                list.num_detected()
            });
        });
    }
    let nl = mac_pe(8);
    let sim = FaultSim::new(&nl);
    let faults = universe_stuck_at(&nl);
    let ps = PatternSet::random(&nl, 64, 5);
    group.throughput(Throughput::Elements((faults.len() * 64) as u64));
    group.bench_function("mac8", |b| {
        b.iter(|| {
            let mut list = FaultList::new(faults.clone());
            sim.run(&ps, &mut list);
            list.num_detected()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ppsfp);
criterion_main!(benches);
