//! Criterion: PPSFP fault-simulation throughput (fault-pattern pairs/s),
//! legacy graph-walk vs compiled gate tape on every circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::fault::{universe_stuck_at, FaultList};
use dft_core::logicsim::{Executor, LegacyKernel, PatternSet, SimKernel, TapeKernel};
use dft_core::netlist::generators::{mac_pe, random_logic};
use dft_core::netlist::Netlist;

/// Benches one circuit under both kernels (serial executor).
fn bench_both(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    nl: &Netlist,
    patterns: usize,
    seed: u64,
) {
    let faults = universe_stuck_at(nl);
    let ps = PatternSet::random(nl, patterns, seed);
    let exec = Executor::serial();
    group.throughput(Throughput::Elements((faults.len() * patterns) as u64));
    let legacy = LegacyKernel::compile(nl);
    group.bench_with_input(BenchmarkId::new(name, "legacy"), &name, |b, _| {
        b.iter(|| {
            let mut list = FaultList::new(faults.clone());
            legacy.fault_batch(&ps, &mut list, &exec);
            list.num_detected()
        });
    });
    let tape = TapeKernel::compile(nl);
    group.bench_with_input(BenchmarkId::new(name, "tape"), &name, |b, _| {
        b.iter(|| {
            let mut list = FaultList::new(faults.clone());
            tape.fault_batch(&ps, &mut list, &exec);
            list.num_detected()
        });
    });
}

fn bench_ppsfp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppsfp");
    group.sample_size(10);
    for gates in [500usize, 2000] {
        let nl = random_logic(32, gates, 0xFA);
        bench_both(&mut group, &format!("random_logic_{gates}"), &nl, 64, 3);
    }
    let nl = mac_pe(8);
    bench_both(&mut group, "mac8", &nl, 64, 5);
    group.finish();
}

/// Serial vs parallel PPSFP on one large circuit: same work, same
/// results, worker count as the only variable. Speedup tracks the
/// machine's core count (a 1-core host shows parity minus spawn cost).
fn bench_ppsfp_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppsfp_threads");
    group.sample_size(10);
    let nl = random_logic(32, 2000, 0xFA);
    let sim = TapeKernel::compile(&nl);
    let faults = universe_stuck_at(&nl);
    let ps = PatternSet::random(&nl, 64, 3);
    group.throughput(Throughput::Elements((faults.len() * 64) as u64));
    let serial_detected = {
        let mut list = FaultList::new(faults.clone());
        sim.fault_batch(&ps, &mut list, &Executor::serial());
        list.num_detected()
    };
    for threads in [1usize, 2, 4, 8] {
        let exec = Executor::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                let mut list = FaultList::new(faults.clone());
                sim.fault_batch(&ps, &mut list, &exec);
                assert_eq!(list.num_detected(), serial_detected);
                list.num_detected()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ppsfp, bench_ppsfp_threads);
criterion_main!(benches);
