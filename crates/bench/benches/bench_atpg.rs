//! Criterion: PODEM test-generation rate (faults targeted/second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::atpg::Podem;
use dft_core::fault::universe_stuck_at;
use dft_core::netlist::generators::{alu, decoder, mac_pe};

fn bench_podem(c: &mut Criterion) {
    let mut group = c.benchmark_group("podem");
    group.sample_size(10);
    let circuits = [("alu8", alu(8)), ("dec5", decoder(5)), ("mac4", mac_pe(4))];
    for (name, nl) in &circuits {
        let podem = Podem::new(nl);
        let faults = universe_stuck_at(nl);
        let sample: Vec<_> = faults.iter().step_by(7).copied().collect();
        group.throughput(Throughput::Elements(sample.len() as u64));
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut found = 0usize;
                for &f in &sample {
                    if podem.generate(f, 128).0.is_test() {
                        found += 1;
                    }
                }
                found
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_podem);
criterion_main!(benches);
