//! Criterion: checkpoint overhead. The acceptance bar for durable
//! flows is <= 2% wall-clock over a plain run, so this group times the
//! same ATPG run three ways: plain, durable with no journal (cancel
//! polling only), and durable with a journal at the default cadence.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::atpg::{Atpg, AtpgConfig, Durability};
use dft_core::checkpoint::{CancelToken, Journal};
use dft_core::netlist::generators::mac_pe;

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_overhead");
    group.sample_size(10);
    let nl = mac_pe(4);
    let atpg = Atpg::new(&nl);
    let cfg = AtpgConfig::default();
    let faults = atpg.run(&cfg).fault_list.len() as u64;
    group.throughput(Throughput::Elements(faults));

    group.bench_function("plain", |b| {
        b.iter(|| atpg.run(&cfg));
    });

    group.bench_function("durable_no_journal", |b| {
        b.iter(|| {
            let mut dur = Durability::new(CancelToken::new());
            atpg.run_durable(&cfg, &mut dur).expect("uninterrupted")
        });
    });

    let path = std::env::temp_dir().join(format!("aidft-bench-ckpt-{}.ckpt", std::process::id()));
    group.bench_function("durable_journal_every64", |b| {
        b.iter(|| {
            std::fs::remove_file(&path).ok();
            let mut dur = Durability::new(CancelToken::new()).with_journal(Journal::new(&path));
            atpg.run_durable(&cfg, &mut dur).expect("uninterrupted")
        });
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

criterion_group!(benches, bench_checkpoint_overhead);
criterion_main!(benches);
