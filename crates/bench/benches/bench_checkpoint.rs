//! Criterion: checkpoint overhead. The acceptance bar for durable
//! flows is <= 2% wall-clock over a plain run, so this group times the
//! same ATPG run three ways: plain, durable with no journal (cancel
//! polling only), and durable with a journal at the default cadence.
//! A second group times the storage-resilience layer itself:
//! replicated appends and `fsck` scans over a populated journal.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::atpg::{Atpg, AtpgConfig, Durability};
use dft_core::checkpoint::{fsck, replica_path, scrub, CancelToken, FramedJournal, Journal};
use dft_core::netlist::generators::mac_pe;

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_overhead");
    group.sample_size(10);
    let nl = mac_pe(4);
    let atpg = Atpg::new(&nl);
    let cfg = AtpgConfig::default();
    let faults = atpg.run(&cfg).fault_list.len() as u64;
    group.throughput(Throughput::Elements(faults));

    group.bench_function("plain", |b| {
        b.iter(|| atpg.run(&cfg));
    });

    group.bench_function("durable_no_journal", |b| {
        b.iter(|| {
            let mut dur = Durability::new(CancelToken::new());
            atpg.run_durable(&cfg, &mut dur).expect("uninterrupted")
        });
    });

    let path = std::env::temp_dir().join(format!("aidft-bench-ckpt-{}.ckpt", std::process::id()));
    group.bench_function("durable_journal_every64", |b| {
        b.iter(|| {
            std::fs::remove_file(&path).ok();
            let mut dur = Durability::new(CancelToken::new()).with_journal(Journal::new(&path));
            atpg.run_durable(&cfg, &mut dur).expect("uninterrupted")
        });
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

fn bench_storage_resilience(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_resilience");
    group.sample_size(20);
    let dir = std::env::temp_dir().join(format!("aidft-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let body = "die 7 pass 1 sig deadbeefdeadbeef\n".repeat(16);
    let cleanup = |path: &std::path::Path| {
        for r in 0..3 {
            let p = replica_path(path, r);
            std::fs::remove_file(scrub::scrub_path(&p)).ok();
            std::fs::remove_file(&p).ok();
        }
    };

    // The cost of mirroring one append across N replicas (plus the
    // scrub-sidecar note): the per-checkpoint price of surviving a
    // rotted copy.
    for replicas in [1u32, 2, 3] {
        let path = dir.join(format!("append-r{replicas}.ckpt"));
        let journal = FramedJournal::new(&path, "bench-v1").with_replicas(replicas);
        let mut seq = 0u64;
        group.bench_function(format!("append_{replicas}_replicas"), |b| {
            b.iter(|| {
                journal.append(seq, &body).unwrap();
                seq += 1;
            });
        });
        cleanup(&path);
    }

    // A full fsck scan of a 256-record journal: the recovery-time cost
    // of classifying every region against its checksum.
    let path = dir.join("fsck-scan.ckpt");
    let journal = FramedJournal::new(&path, "bench-v1");
    for seq in 0..256u64 {
        journal.append(seq, &body).unwrap();
    }
    group.throughput(Throughput::Elements(256));
    group.bench_function("fsck_scan_256_records", |b| {
        b.iter(|| fsck::scan(&path).unwrap());
    });
    cleanup(&path);
    group.finish();
}

criterion_group!(benches, bench_checkpoint_overhead, bench_storage_resilience);
criterion_main!(benches);
