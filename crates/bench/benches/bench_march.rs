//! Criterion: March-test engine throughput (memory operations/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::bist::{march_c_minus, march_ss, run_march, SramModel};

fn bench_march(c: &mut Criterion) {
    let mut group = c.benchmark_group("march");
    for size in [1024usize, 16 * 1024] {
        for algo in [march_c_minus(), march_ss()] {
            group.throughput(Throughput::Elements((algo.ops_per_bit() * size) as u64));
            group.bench_with_input(BenchmarkId::new(algo.name, size), &size, |b, &size| {
                b.iter(|| {
                    let mut mem = SramModel::new(size);
                    run_march(&algo, &mut mem).operations
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_march);
criterion_main!(benches);
