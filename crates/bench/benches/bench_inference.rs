//! Criterion: quantized inference throughput (MACs/second) on the
//! behavioural systolic model, clean vs fault-injected.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dft_core::aichip::{Dataset, PeFault, SystolicModel};

fn bench_inference(c: &mut Criterion) {
    let data = Dataset::synthetic(10, 64, 64, 0x1F);
    let model = data.prototype_classifier(1);
    let macs = (data.samples.len() * data.classes * data.dim) as u64;

    let clean = SystolicModel::new(8, 8);
    let mut group = c.benchmark_group("inference");
    group.throughput(Throughput::Elements(macs));
    group.bench_function("clean_8x8", |b| {
        b.iter(|| model.accuracy(&clean, &data));
    });
    let faulty = clean.clone().with_fault(PeFault {
        row: 3,
        col: 3,
        bit: 12,
        stuck: true,
    });
    group.bench_function("faulty_8x8", |b| {
        b.iter(|| model.accuracy(&faulty, &data));
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
