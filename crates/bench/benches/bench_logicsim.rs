//! Criterion: good-machine simulation throughput (patterns/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::logicsim::{GoodSim, PatternSet};
use dft_core::netlist::generators::{random_logic, systolic_array, SystolicConfig};

fn bench_goodsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("goodsim");
    for gates in [1000usize, 5000, 20000] {
        let nl = random_logic(64, gates, 0xB1);
        let sim = GoodSim::new(&nl);
        let ps = PatternSet::random(&nl, 256, 1);
        group.throughput(Throughput::Elements(256));
        group.bench_with_input(BenchmarkId::new("random_logic", gates), &gates, |b, _| {
            b.iter(|| sim.simulate_all(&ps));
        });
    }
    let nl = systolic_array(SystolicConfig {
        rows: 4,
        cols: 4,
        width: 4,
    });
    let sim = GoodSim::new(&nl);
    let ps = PatternSet::random(&nl, 256, 2);
    group.throughput(Throughput::Elements(256));
    group.bench_function("systolic4x4", |b| b.iter(|| sim.simulate_all(&ps)));
    group.finish();
}

criterion_group!(benches, bench_goodsim);
criterion_main!(benches);
