//! Criterion: good-machine simulation throughput (patterns/second),
//! legacy 64-wide blocks vs the 256-wide gate tape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::logicsim::{LegacyKernel, PatternSet, SimKernel, TapeKernel};
use dft_core::netlist::generators::{random_logic, systolic_array, SystolicConfig};
use dft_core::netlist::Netlist;

fn bench_both(group: &mut criterion::BenchmarkGroup<'_>, name: &str, nl: &Netlist) {
    let ps = PatternSet::random(nl, 256, 1);
    group.throughput(Throughput::Elements(256));
    let legacy = LegacyKernel::compile(nl);
    group.bench_with_input(BenchmarkId::new(name, "legacy"), &name, |b, _| {
        b.iter(|| legacy.eval_batch(&ps).len());
    });
    let tape = TapeKernel::compile(nl);
    group.bench_with_input(BenchmarkId::new(name, "tape"), &name, |b, _| {
        b.iter(|| tape.eval_batch(&ps).len());
    });
}

fn bench_goodsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("goodsim");
    for gates in [1000usize, 5000, 20000] {
        let nl = random_logic(64, gates, 0xB1);
        bench_both(&mut group, &format!("random_logic_{gates}"), &nl);
    }
    let nl = systolic_array(SystolicConfig {
        rows: 4,
        cols: 4,
        width: 4,
    });
    bench_both(&mut group, "systolic4x4", &nl);
    group.finish();
}

criterion_group!(benches, bench_goodsim);
criterion_main!(benches);
