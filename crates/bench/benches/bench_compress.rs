//! Criterion: EDT encode (GF(2) solve) throughput (cubes/second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dft_core::compress::EdtCodec;
use dft_core::logicsim::TestCube;

fn make_cubes(codec: &EdtCodec, n: usize, care: usize, seed: u64) -> Vec<TestCube> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let mut cube = TestCube::all_x(codec.flat_bits());
            for _ in 0..care {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (s >> 17) as usize % codec.flat_bits();
                cube.set(idx, s & 1 == 1);
            }
            cube
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("edt_encode");
    for (chains, chain_len) in [(16usize, 32usize), (64, 64)] {
        let codec = EdtCodec::new(chains, chain_len, 2, 32, 0xBE);
        let cubes = make_cubes(&codec, 32, codec.capacity_hint() / 2, 7);
        group.throughput(Throughput::Elements(32));
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{chains}x{chain_len}")),
            &chains,
            |b, _| {
                b.iter(|| {
                    cubes
                        .iter()
                        .filter(|cube| codec.encode(cube).is_some())
                        .count()
                });
            },
        );
    }
    group.finish();
}

fn bench_expand(c: &mut Criterion) {
    let codec = EdtCodec::new(64, 64, 2, 32, 0xBE);
    let cube = make_cubes(&codec, 1, 20, 3).pop().unwrap();
    let compressed = codec.encode(&cube).expect("encodes");
    c.bench_function("edt_expand_64x64", |b| b.iter(|| codec.expand(&compressed)));
}

criterion_group!(benches, bench_encode, bench_expand);
criterion_main!(benches);
