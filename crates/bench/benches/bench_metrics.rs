//! Criterion: metrics-layer overhead. Every hot loop flushes counters at
//! coarse boundaries (per block / per PODEM call / per encode), so the
//! enabled and disabled variants must stay within noise of each other —
//! this bench is the regression guard for that contract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dft_core::atpg::{Atpg, AtpgConfig};
use dft_core::fault::{universe_stuck_at, FaultList};
use dft_core::logicsim::{FaultSim, GoodSim, PatternSet};
use dft_core::metrics::MetricsHandle;
use dft_core::netlist::generators::random_logic;

fn handles() -> [(&'static str, MetricsHandle); 2] {
    [
        ("disabled", MetricsHandle::disabled()),
        ("enabled", MetricsHandle::enabled()),
    ]
}

/// Good-machine simulation: the tightest loop in the repo. The only
/// instrument is one flush per 64-pattern block.
fn bench_goodsim_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_goodsim");
    group.sample_size(20);
    let nl = random_logic(32, 2000, 0xFA);
    let ps = PatternSet::random(&nl, 256, 7);
    for (label, handle) in handles() {
        let mut sim = GoodSim::new(&nl);
        sim.set_metrics(handle.clone());
        group.bench_with_input(BenchmarkId::new("sim", label), &label, |b, _| {
            b.iter(|| sim.simulate_all(&ps).len());
        });
    }
    group.finish();
}

/// PPSFP fault simulation: flushes once per run.
fn bench_ppsfp_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_ppsfp");
    group.sample_size(10);
    let nl = random_logic(32, 1000, 0xFA);
    let faults = universe_stuck_at(&nl);
    let ps = PatternSet::random(&nl, 64, 3);
    for (label, handle) in handles() {
        let sim = FaultSim::new(&nl).with_metrics(handle.clone());
        group.bench_with_input(BenchmarkId::new("sim", label), &label, |b, _| {
            b.iter(|| {
                let mut list = FaultList::new(faults.clone());
                sim.run(&ps, &mut list);
                list.num_detected()
            });
        });
    }
    group.finish();
}

/// Full ATPG: PODEM counter flushes once per targeted fault.
fn bench_atpg_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_atpg");
    group.sample_size(10);
    let nl = random_logic(16, 300, 0xA7);
    let cfg = AtpgConfig::new();
    for (label, handle) in handles() {
        group.bench_with_input(BenchmarkId::new("run", label), &label, |b, _| {
            b.iter(|| {
                let run = Atpg::new(&nl).with_metrics(handle.clone()).run(&cfg);
                run.patterns.len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_goodsim_overhead,
    bench_ppsfp_overhead,
    bench_atpg_overhead
);
criterion_main!(benches);
