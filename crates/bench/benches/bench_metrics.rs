//! Criterion: metrics- and trace-layer overhead. Every hot loop flushes
//! counters at coarse boundaries (per block / per PODEM call / per
//! encode) and records spans at batch granularity, so the enabled and
//! disabled variants must stay within noise of each other — this bench
//! is the regression guard for that contract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dft_core::atpg::{Atpg, AtpgConfig};
use dft_core::fault::{universe_stuck_at, FaultList};
use dft_core::logicsim::{AnyKernel, Executor, PatternSet, SimKernel};
use dft_core::metrics::MetricsHandle;
use dft_core::netlist::generators::{random_logic, systolic_array, SystolicConfig};
use dft_core::trace::{TraceConfig, TraceHandle, TraceSession};

fn handles() -> [(&'static str, MetricsHandle); 2] {
    [
        ("disabled", MetricsHandle::disabled()),
        ("enabled", MetricsHandle::enabled()),
    ]
}

/// Good-machine simulation: the tightest loop in the repo. The only
/// instrument is one flush per 64-pattern block.
fn bench_goodsim_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_goodsim");
    group.sample_size(20);
    let nl = random_logic(32, 2000, 0xFA);
    let ps = PatternSet::random(&nl, 256, 7);
    for (label, handle) in handles() {
        let sim = AnyKernel::compile(&nl).with_metrics(handle.clone());
        group.bench_with_input(BenchmarkId::new("sim", label), &label, |b, _| {
            b.iter(|| sim.eval_batch(&ps).len());
        });
    }
    group.finish();
}

/// PPSFP fault simulation: flushes once per run.
fn bench_ppsfp_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_ppsfp");
    group.sample_size(10);
    let nl = random_logic(32, 1000, 0xFA);
    let faults = universe_stuck_at(&nl);
    let ps = PatternSet::random(&nl, 64, 3);
    for (label, handle) in handles() {
        let sim = AnyKernel::compile(&nl).with_metrics(handle.clone());
        group.bench_with_input(BenchmarkId::new("sim", label), &label, |b, _| {
            b.iter(|| {
                let mut list = FaultList::new(faults.clone());
                sim.fault_batch(&ps, &mut list, &Executor::serial());
                list.num_detected()
            });
        });
    }
    group.finish();
}

/// Full ATPG: PODEM counter flushes once per targeted fault.
fn bench_atpg_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_atpg");
    group.sample_size(10);
    let nl = random_logic(16, 300, 0xA7);
    let cfg = AtpgConfig::new();
    for (label, handle) in handles() {
        group.bench_with_input(BenchmarkId::new("run", label), &label, |b, _| {
            b.iter(|| {
                let run = Atpg::new(&nl).with_metrics(handle.clone()).run(&cfg);
                run.patterns.len()
            });
        });
    }
    group.finish();
}

/// PPSFP on the sys2x2 array, untraced vs traced at default sampling.
/// Spans are recorded once per run / per worker batch, so the traced
/// variant must stay within a few percent of the untraced one (README
/// states the measured number; target < 5%).
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_ppsfp");
    group.sample_size(10);
    let nl = systolic_array(SystolicConfig {
        rows: 2,
        cols: 2,
        width: 4,
    });
    let faults = universe_stuck_at(&nl);
    let ps = PatternSet::random(&nl, 64, 3);
    // The session outlives the loop; its ring buffers wrap in place, so
    // a long bench run measures steady-state recording, not allocation.
    let session = TraceSession::new(TraceConfig::default());
    let variants = [
        ("untraced", TraceHandle::disabled()),
        ("traced", session.handle()),
    ];
    for (label, trace) in variants {
        let sim = AnyKernel::compile(&nl).with_trace(trace);
        group.bench_with_input(BenchmarkId::new("sys2x2", label), &label, |b, _| {
            b.iter(|| {
                let mut list = FaultList::new(faults.clone());
                sim.fault_batch(&ps, &mut list, &Executor::serial());
                list.num_detected()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_goodsim_overhead,
    bench_ppsfp_overhead,
    bench_atpg_overhead,
    bench_trace_overhead
);
criterion_main!(benches);
