//! Bench-side tooling that is useful as a library: the dependency-free
//! JSON reader and the bench-trajectory (trend) tracker consumed by the
//! `bench` binary and by CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod trend;
