//! `experiments` — regenerates every table/figure of the reproduction
//! (E1-E12, see DESIGN.md). Run a single experiment by id or `all`:
//!
//! ```sh
//! cargo run --release -p dft-bench --bin experiments -- e1
//! cargo run --release -p dft-bench --bin experiments -- all --threads 8
//! ```
//!
//! `--threads N` parallelizes the simulation-heavy experiments (E1, E5);
//! `0` = one worker per hardware thread. All numbers are bit-identical
//! for any thread count.

use std::env;

mod experiments;

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let mut threads = 1usize;
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        match args.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(n) => threads = n,
            None => {
                eprintln!("--threads requires a number");
                std::process::exit(2);
            }
        }
        args.drain(pos..pos + 2);
    }
    experiments::set_threads(threads);
    let which = args.first().map(String::as_str).unwrap_or("all");
    let all = [
        ("e1", experiments::e1_random_coverage as fn()),
        ("e2", experiments::e2_collapse_table),
        ("e3", experiments::e3_atpg_signoff),
        ("e4", experiments::e4_compression),
        ("e5", experiments::e5_lbist),
        ("e6", experiments::e6_march_matrix),
        ("e7", experiments::e7_core_reuse),
        ("e8", experiments::e8_diagnosis),
        ("e9", experiments::e9_criticality),
        ("e10", experiments::e10_scan_tradeoff),
        ("e11", experiments::e11_transition),
        ("e12", experiments::e12_ssn),
        ("metrics", experiments::metrics_report),
        ("repair", experiments::repair_report),
        ("ppsfp", experiments::ppsfp_report),
        ("serve", experiments::serve_report),
    ];
    match which {
        "all" => {
            for (name, f) in all {
                println!(
                    "\n================ {} ================",
                    name.to_uppercase()
                );
                f();
            }
        }
        id => match all.iter().find(|(n, _)| *n == id) {
            Some((_, f)) => f(),
            None => {
                eprintln!(
                    "unknown experiment `{id}`; use e1..e12, metrics, repair, ppsfp, serve, or all"
                );
                std::process::exit(2);
            }
        },
    }
}
