//! A minimal recursive-descent JSON reader for the bench tooling.
//!
//! The toolkit is dependency-free, so the `bench trend` and
//! `validate-trace` commands parse their inputs (`BENCH_*.json`, Perfetto
//! trace files) with this small reader instead of a vendored serde. It
//! accepts standard JSON; numbers are held as `f64`, which is exact for
//! every integer the bench files contain (< 2^53).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer count.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied();
                    self.i += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.i))?;
                            self.i += 4;
                            // Surrogate pairs are not used by any bench
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                }
                Some(_) => {
                    let start = self.i;
                    while self
                        .b
                        .get(self.i)
                        .is_some_and(|c| *c != b'"' && *c != b'\\')
                    {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "invalid utf-8 in string".to_owned())?,
                    );
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1; // {
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("expected `:` at offset {}", self.i));
            }
            self.i += 1;
            self.ws();
            let v = self.value()?;
            members.push((key, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1; // [
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(
            r#"{"trend":{"experiment":"metrics","wall_clock_ns":12345,"coverage":0.9876},
               "rows":[1,2.5,-3e2,true,null,"a\"b\n"]}"#,
        )
        .unwrap();
        let t = v.get("trend").unwrap();
        assert_eq!(t.get("experiment").unwrap().as_str(), Some("metrics"));
        assert_eq!(t.get("wall_clock_ns").unwrap().as_u64(), Some(12345));
        assert_eq!(t.get("coverage").unwrap().as_f64(), Some(0.9876));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[5].as_str(), Some("a\"b\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "1 2", "\"open", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
