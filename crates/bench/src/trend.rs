//! Bench-trajectory tracking: compare the `trend` blocks of the current
//! `BENCH_*.json` files against the previous run and flag regressions.
//!
//! Every experiment that writes a `BENCH_<name>.json` embeds a stable
//! top-level block:
//!
//! ```json
//! "trend": {"experiment": "metrics", "wall_clock_ns": 123456, "coverage": 0.987}
//! ```
//!
//! `bench trend` collects those blocks, diffs them against the entries
//! recorded in `BENCH_trend.json` by the previous invocation, rewrites
//! `BENCH_trend.json`, prints a markdown delta table, and reports
//! whether any experiment regressed: wall-clock grew by more than
//! `max_regress` (relative), or coverage fell by more than `max_regress`
//! (relative). The CLI exits non-zero in that case so CI can gate on it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::json::Json;

/// One experiment's trend sample.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendEntry {
    /// Experiment id (`metrics`, `repair`, ...).
    pub experiment: String,
    /// Wall-clock of the experiment's measured section.
    pub wall_clock_ns: u64,
    /// Headline quality figure (test coverage, yield), when the
    /// experiment has one.
    pub coverage: Option<f64>,
    /// Peak rolling fleet throughput from the telemetry sampler
    /// (`serve` only; higher is better).
    pub peak_dies_per_sec: Option<f64>,
    /// p99 window round-trip latency from the telemetry sampler,
    /// microseconds (`serve` only; lower is better).
    pub p99_window_latency_us: Option<f64>,
}

/// A current sample joined with its predecessor.
#[derive(Debug, Clone)]
pub struct TrendDelta {
    /// The current sample.
    pub current: TrendEntry,
    /// The matching entry of the previous run, if any.
    pub previous: Option<TrendEntry>,
    /// Relative wall-clock change (`+0.25` = 25% slower).
    pub wall_delta: Option<f64>,
    /// Relative coverage change (`-0.25` = 25% less coverage).
    pub coverage_delta: Option<f64>,
    /// Relative peak-throughput change (`-0.25` = 25% less peak;
    /// higher is better).
    pub peak_delta: Option<f64>,
    /// Relative p99 window-latency change (`+0.25` = 25% slower tail;
    /// lower is better).
    pub p99_delta: Option<f64>,
    /// True when this experiment breaches the regression threshold.
    pub regressed: bool,
}

/// Outcome of one `bench trend` evaluation.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Per-experiment deltas, sorted by experiment id.
    pub deltas: Vec<TrendDelta>,
    /// True when any experiment regressed.
    pub regressed: bool,
}

impl TrendReport {
    /// The markdown delta table.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| experiment | wall-clock | Δ wall | coverage | Δ coverage | peak d/s | \
             p99 win µs | status |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|---:|---:|---|\n");
        for d in &self.deltas {
            let wall_ms = d.current.wall_clock_ns as f64 / 1e6;
            let wall_delta = match d.wall_delta {
                Some(x) => format!("{:+.1}%", x * 100.0),
                None => "new".to_owned(),
            };
            let cov = match d.current.coverage {
                Some(c) => format!("{:.4}", c),
                None => "-".to_owned(),
            };
            let cov_delta = match d.coverage_delta {
                Some(x) => format!("{:+.2}%", x * 100.0),
                None => "-".to_owned(),
            };
            let figure = |v: Option<f64>, delta: Option<f64>| match v {
                Some(v) => match delta {
                    Some(x) => format!("{v:.0} ({:+.1}%)", x * 100.0),
                    None => format!("{v:.0}"),
                },
                None => "-".to_owned(),
            };
            let peak = figure(d.current.peak_dies_per_sec, d.peak_delta);
            let p99 = figure(d.current.p99_window_latency_us, d.p99_delta);
            let status = if d.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "| {} | {:.3} ms | {} | {} | {} | {} | {} | {} |",
                d.current.experiment, wall_ms, wall_delta, cov, cov_delta, peak, p99, status
            );
        }
        out
    }

    /// The `BENCH_trend.json` payload: the current entries (consumed as
    /// "previous" by the next invocation) plus the computed deltas.
    pub fn to_json(&self) -> String {
        let mut entries = String::new();
        let mut deltas = String::new();
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.6}"),
            None => "null".to_owned(),
        };
        for (i, d) in self.deltas.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                entries,
                "{sep}\n    {{\"experiment\":\"{}\",\"wall_clock_ns\":{},\"coverage\":{},\
                 \"peak_dies_per_sec\":{},\"p99_window_latency_us\":{}}}",
                d.current.experiment,
                d.current.wall_clock_ns,
                opt(d.current.coverage),
                opt(d.current.peak_dies_per_sec),
                opt(d.current.p99_window_latency_us)
            );
            let _ = write!(
                deltas,
                "{sep}\n    {{\"experiment\":\"{}\",\"wall_delta\":{},\"coverage_delta\":{},\
                 \"peak_delta\":{},\"p99_delta\":{},\"regressed\":{}}}",
                d.current.experiment,
                opt(d.wall_delta),
                opt(d.coverage_delta),
                opt(d.peak_delta),
                opt(d.p99_delta),
                d.regressed
            );
        }
        format!(
            "{{\n  \"schema\": \"aidft-trend-v1\",\n  \"regressed\": {},\n  \"entries\": [{}\n  ],\
             \n  \"deltas\": [{}\n  ]\n}}\n",
            self.regressed, entries, deltas
        )
    }
}

/// Extracts the `trend` block of one `BENCH_*.json` document, if present.
pub fn extract_trend(text: &str) -> Option<TrendEntry> {
    let doc = Json::parse(text).ok()?;
    let t = doc.get("trend")?;
    Some(TrendEntry {
        experiment: t.get("experiment")?.as_str()?.to_owned(),
        wall_clock_ns: t.get("wall_clock_ns")?.as_u64()?,
        coverage: t.get("coverage").and_then(Json::as_f64),
        peak_dies_per_sec: t.get("peak_dies_per_sec").and_then(Json::as_f64),
        p99_window_latency_us: t.get("p99_window_latency_us").and_then(Json::as_f64),
    })
}

/// Reads the `entries` of a previous `BENCH_trend.json`.
pub fn parse_previous(text: &str) -> Vec<TrendEntry> {
    let Ok(doc) = Json::parse(text) else {
        return Vec::new();
    };
    let Some(items) = doc.get("entries").and_then(Json::as_arr) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|t| {
            Some(TrendEntry {
                experiment: t.get("experiment")?.as_str()?.to_owned(),
                wall_clock_ns: t.get("wall_clock_ns")?.as_u64()?,
                coverage: t.get("coverage").and_then(Json::as_f64),
                peak_dies_per_sec: t.get("peak_dies_per_sec").and_then(Json::as_f64),
                p99_window_latency_us: t.get("p99_window_latency_us").and_then(Json::as_f64),
            })
        })
        .collect()
}

/// Joins current samples with the previous run and applies the
/// regression threshold (`max_regress` is relative, e.g. `0.20`).
pub fn compare(
    mut current: Vec<TrendEntry>,
    previous: &[TrendEntry],
    max_regress: f64,
) -> TrendReport {
    current.sort_by(|a, b| a.experiment.cmp(&b.experiment));
    let deltas: Vec<TrendDelta> = current
        .into_iter()
        .map(|cur| {
            let prev = previous.iter().find(|p| p.experiment == cur.experiment);
            let wall_delta = prev.filter(|p| p.wall_clock_ns > 0).map(|p| {
                (cur.wall_clock_ns as f64 - p.wall_clock_ns as f64) / p.wall_clock_ns as f64
            });
            let rel = |p: Option<f64>, c: Option<f64>| match (p, c) {
                (Some(p), Some(c)) if p > 0.0 => Some((c - p) / p),
                _ => None,
            };
            let coverage_delta = rel(prev.and_then(|p| p.coverage), cur.coverage);
            let peak_delta = rel(
                prev.and_then(|p| p.peak_dies_per_sec),
                cur.peak_dies_per_sec,
            );
            let p99_delta = rel(
                prev.and_then(|p| p.p99_window_latency_us),
                cur.p99_window_latency_us,
            );
            // Direction per figure: wall-clock and p99 latency regress
            // upward, coverage and peak throughput regress downward.
            let regressed = wall_delta.is_some_and(|x| x > max_regress)
                || coverage_delta.is_some_and(|x| -x > max_regress)
                || peak_delta.is_some_and(|x| -x > max_regress)
                || p99_delta.is_some_and(|x| x > max_regress);
            TrendDelta {
                current: cur,
                previous: prev.cloned(),
                wall_delta,
                coverage_delta,
                peak_delta,
                p99_delta,
                regressed,
            }
        })
        .collect();
    let regressed = deltas.iter().any(|d| d.regressed);
    TrendReport { deltas, regressed }
}

/// Collects the trend blocks of every `BENCH_*.json` under `dir`
/// (excluding `BENCH_trend.json` itself). Files without a trend block
/// are skipped and reported back by name.
pub fn collect(dir: &Path) -> std::io::Result<(Vec<TrendEntry>, Vec<PathBuf>)> {
    let mut entries = Vec::new();
    let mut skipped = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                && p.file_name().and_then(|n| n.to_str()) != Some("BENCH_trend.json")
        })
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        match extract_trend(&text) {
            Some(e) => entries.push(e),
            None => skipped.push(path),
        }
    }
    Ok((entries, skipped))
}

/// Applies the `--ratchet` rule to a computed report: the targeted
/// experiment must be present, must have a previous baseline, and must
/// be strictly *faster* than it (wall-clock delta < 0). Returns the
/// wall-clock delta on success and the reason the ratchet failed
/// otherwise. Used by CI to force a PR that claims a speedup to prove
/// it against the baseline recorded in `BENCH_trend.json`.
pub fn check_ratchet(report: &TrendReport, experiment: &str) -> Result<f64, String> {
    let Some(delta) = report
        .deltas
        .iter()
        .find(|d| d.current.experiment == experiment)
    else {
        return Err(format!(
            "ratchet target `{experiment}` has no current BENCH_*.json sample"
        ));
    };
    let Some(wall_delta) = delta.wall_delta else {
        return Err(format!(
            "ratchet target `{experiment}` has no previous baseline to improve on"
        ));
    };
    if wall_delta < 0.0 {
        Ok(wall_delta)
    } else {
        Err(format!(
            "ratchet target `{experiment}` did not improve: wall-clock {:+.1}% vs baseline",
            wall_delta * 100.0
        ))
    }
}

/// The full `bench trend` operation: collect, diff against
/// `<dir>/BENCH_trend.json`, rewrite it, and return the report plus the
/// files that carried no trend block.
pub fn run(dir: &Path, max_regress: f64) -> std::io::Result<(TrendReport, Vec<PathBuf>)> {
    let (entries, skipped) = collect(dir)?;
    let trend_path = dir.join("BENCH_trend.json");
    let previous = match std::fs::read_to_string(&trend_path) {
        Ok(text) => parse_previous(&text),
        Err(_) => Vec::new(),
    };
    let report = compare(entries, &previous, max_regress);
    std::fs::write(&trend_path, report.to_json())?;
    Ok((report, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, wall: u64, cov: Option<f64>) -> TrendEntry {
        TrendEntry {
            experiment: name.to_owned(),
            wall_clock_ns: wall,
            coverage: cov,
            peak_dies_per_sec: None,
            p99_window_latency_us: None,
        }
    }

    fn serve_entry(wall: u64, peak: f64, p99: f64) -> TrendEntry {
        TrendEntry {
            peak_dies_per_sec: Some(peak),
            p99_window_latency_us: Some(p99),
            ..entry("serve", wall, Some(0.8))
        }
    }

    #[test]
    fn synthetic_25_percent_slowdown_regresses() {
        let prev = [entry("metrics", 1_000_000, Some(0.99))];
        let cur = vec![entry("metrics", 1_250_000, Some(0.99))];
        let report = compare(cur, &prev, 0.20);
        assert!(report.regressed);
        assert_eq!(report.deltas[0].wall_delta, Some(0.25));
        assert!(report.markdown().contains("REGRESSED"));
    }

    #[test]
    fn stable_run_passes() {
        let prev = [
            entry("metrics", 1_000_000, Some(0.99)),
            entry("repair", 2_000_000, Some(0.95)),
        ];
        let cur = vec![
            entry("metrics", 1_100_000, Some(0.99)), // +10%: under threshold
            entry("repair", 1_900_000, Some(0.96)),
        ];
        let report = compare(cur, &prev, 0.20);
        assert!(!report.regressed);
        assert!(report.markdown().contains("| ok |") || report.markdown().contains(" ok "));
    }

    #[test]
    fn coverage_drop_regresses_even_when_faster() {
        let prev = [entry("metrics", 1_000_000, Some(0.90))];
        let cur = vec![entry("metrics", 500_000, Some(0.60))]; // -33% coverage
        let report = compare(cur, &prev, 0.20);
        assert!(report.regressed);
    }

    #[test]
    fn first_run_has_no_previous_and_passes() {
        let report = compare(vec![entry("metrics", 42, Some(1.0))], &[], 0.20);
        assert!(!report.regressed);
        assert!(report.deltas[0].previous.is_none());
        assert!(report.markdown().contains("new"));
    }

    #[test]
    fn trend_json_roundtrips_as_next_previous() {
        let report = compare(
            vec![entry("metrics", 123, Some(0.5)), entry("repair", 456, None)],
            &[],
            0.20,
        );
        let text = report.to_json();
        let back = parse_previous(&text);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], entry("metrics", 123, Some(0.5)));
        assert_eq!(back[1], entry("repair", 456, None));
    }

    #[test]
    fn ratchet_requires_strict_improvement() {
        let prev = [entry("ppsfp", 1_000_000, Some(0.99))];
        // Faster: ratchet passes and reports the (negative) delta.
        let faster = compare(vec![entry("ppsfp", 400_000, Some(0.99))], &prev, 0.20);
        assert_eq!(check_ratchet(&faster, "ppsfp"), Ok(-0.6));
        // Identical wall-clock: not an improvement.
        let flat = compare(vec![entry("ppsfp", 1_000_000, Some(0.99))], &prev, 0.20);
        assert!(check_ratchet(&flat, "ppsfp").is_err());
        // Slower: definitely not.
        let slower = compare(vec![entry("ppsfp", 1_100_000, Some(0.99))], &prev, 0.20);
        assert!(check_ratchet(&slower, "ppsfp").is_err());
    }

    #[test]
    fn ratchet_rejects_missing_target_or_baseline() {
        // No current sample for the target at all.
        let report = compare(vec![entry("metrics", 42, None)], &[], 0.20);
        assert!(check_ratchet(&report, "ppsfp")
            .unwrap_err()
            .contains("no current"));
        // A current sample but no previous baseline.
        let report = compare(vec![entry("ppsfp", 42, None)], &[], 0.20);
        assert!(check_ratchet(&report, "ppsfp")
            .unwrap_err()
            .contains("no previous baseline"));
    }

    #[test]
    fn peak_throughput_drop_regresses_and_latency_growth_regresses() {
        let prev = [serve_entry(1_000_000, 4000.0, 800.0)];
        // Peak throughput fell 50%: regressed even with flat wall-clock.
        let report = compare(vec![serve_entry(1_000_000, 2000.0, 800.0)], &prev, 0.20);
        assert!(report.regressed);
        assert_eq!(report.deltas[0].peak_delta, Some(-0.5));
        // p99 tail doubled: regressed.
        let report = compare(vec![serve_entry(1_000_000, 4000.0, 1600.0)], &prev, 0.20);
        assert!(report.regressed);
        assert_eq!(report.deltas[0].p99_delta, Some(1.0));
        // Both figures improving never regresses.
        let report = compare(vec![serve_entry(900_000, 5000.0, 600.0)], &prev, 0.20);
        assert!(!report.regressed);
    }

    #[test]
    fn telemetry_figures_roundtrip_through_trend_json() {
        let report = compare(vec![serve_entry(123, 4096.0, 750.5)], &[], 0.20);
        let text = report.to_json();
        assert!(text.contains("\"peak_dies_per_sec\":4096.000000"));
        assert!(text.contains("\"p99_window_latency_us\":750.500000"));
        let back = parse_previous(&text);
        assert_eq!(back, vec![serve_entry(123, 4096.0, 750.5)]);
        // Entries without the figures stay null and parse back as None.
        let report = compare(vec![entry("metrics", 1, Some(0.9))], &[], 0.20);
        assert!(report.to_json().contains("\"peak_dies_per_sec\":null"));
        assert_eq!(
            parse_previous(&report.to_json()),
            vec![entry("metrics", 1, Some(0.9))]
        );
    }

    #[test]
    fn extract_trend_reads_bench_file() {
        let text = r#"{"trend":{"experiment":"repair","wall_clock_ns":777,"coverage":0.84},
                       "payload":{"rows":[1,2,3]}}"#;
        assert_eq!(extract_trend(text), Some(entry("repair", 777, Some(0.84))));
        assert_eq!(extract_trend(r#"{"no_trend":1}"#), None);
    }

    #[test]
    fn end_to_end_over_directory() {
        let dir = std::env::temp_dir().join(format!("aidft_trend_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let write = |wall: u64| {
            std::fs::write(
                dir.join("BENCH_metrics.json"),
                format!(
                    "{{\"trend\":{{\"experiment\":\"metrics\",\"wall_clock_ns\":{wall},\
                     \"coverage\":0.99}}}}"
                ),
            )
            .unwrap();
        };
        write(1_000_000);
        let (first, skipped) = run(&dir, 0.20).unwrap();
        assert!(!first.regressed, "first run has no baseline");
        assert!(skipped.is_empty());
        write(1_250_000); // 25% slower than the recorded baseline
        let (second, _) = run(&dir, 0.20).unwrap();
        assert!(second.regressed);
        write(1_250_000); // identical to new baseline
        let (third, _) = run(&dir, 0.20).unwrap();
        assert!(!third.regressed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
