//! `bench` — bench-trajectory and trace-validation tooling.
//!
//! ```text
//! bench trend [--dir D] [--max-regress F] [--ratchet EXP]
//! bench validate-trace <trace.json> [--jsonl <journal.jsonl>]
//! ```
//!
//! `trend` reads the `trend` block of every `BENCH_*.json` under `--dir`
//! (default `.`), compares wall-clock and coverage against the entries
//! stored in `BENCH_trend.json` by the previous invocation, rewrites
//! that file, and prints a markdown delta table. It exits non-zero when
//! any experiment got more than `--max-regress` (default `0.20`, i.e.
//! 20%) slower or lost more than that fraction of coverage — CI gates
//! on the exit status.
//!
//! `--ratchet EXP` additionally *requires* experiment `EXP` to be
//! strictly faster than the baseline recorded by the previous `trend`
//! invocation: a PR claiming a speedup runs the old code, `bench trend`
//! (recording the baseline), the new code, then
//! `bench trend --ratchet EXP` — which fails unless wall-clock improved.
//!
//! `validate-trace` checks a Perfetto `trace_event` export structurally
//! (JSON parses, `traceEvents` is a non-empty array, complete events
//! carry name/ts/dur) and, with `--jsonl`, validates an
//! `aidft-trace-v1` journal with the library validator.

use std::path::PathBuf;
use std::process::ExitCode;

use dft_bench::json::Json;
use dft_bench::trend;
use dft_core::trace::validate_journal;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trend") => run_trend(&args[1..]),
        Some("validate-trace") => run_validate(&args[1..]),
        _ => {
            eprintln!(
                "usage: bench <trend [--dir D] [--max-regress F] | \
                 validate-trace <trace.json> [--jsonl <journal.jsonl>]>"
            );
            ExitCode::from(2)
        }
    }
}

fn run_trend(args: &[String]) -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut max_regress = 0.20f64;
    let mut ratchet: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => return usage("--dir requires a path"),
            },
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => max_regress = f,
                None => return usage("--max-regress requires a fraction, e.g. 0.20"),
            },
            "--ratchet" => match it.next() {
                Some(e) => ratchet = Some(e.clone()),
                None => return usage("--ratchet requires an experiment id"),
            },
            other => return usage(&format!("unknown trend argument `{other}`")),
        }
    }
    let (report, skipped) = match trend::run(&dir, max_regress) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench trend: {e}");
            return ExitCode::from(2);
        }
    };
    for path in &skipped {
        eprintln!("bench trend: note: {} has no trend block", path.display());
    }
    print!("{}", report.markdown());
    if report.deltas.is_empty() {
        eprintln!(
            "bench trend: no BENCH_*.json with trend blocks under {}",
            dir.display()
        );
        return ExitCode::from(2);
    }
    println!(
        "\nwrote {} ({} experiments, threshold {:.0}%)",
        dir.join("BENCH_trend.json").display(),
        report.deltas.len(),
        max_regress * 100.0
    );
    if report.regressed {
        eprintln!(
            "bench trend: REGRESSION over {:.0}% threshold",
            max_regress * 100.0
        );
        return ExitCode::FAILURE;
    }
    if let Some(exp) = ratchet {
        match trend::check_ratchet(&report, &exp) {
            Ok(delta) => println!(
                "ratchet `{exp}`: improved, wall-clock {:+.1}% vs baseline",
                delta * 100.0
            ),
            Err(reason) => {
                eprintln!("bench trend: RATCHET failed: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_validate(args: &[String]) -> ExitCode {
    let mut trace_path: Option<&str> = None;
    let mut jsonl_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jsonl" => match it.next() {
                Some(p) => jsonl_path = Some(p),
                None => return usage("--jsonl requires a path"),
            },
            p if trace_path.is_none() => trace_path = Some(p),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(trace_path) = trace_path else {
        return usage("validate-trace requires a <trace.json> path");
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench validate-trace: read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate_perfetto(&text) {
        Ok((spans, instants)) => {
            println!("{trace_path}: ok ({spans} spans, {instants} other events)");
        }
        Err(e) => {
            eprintln!("bench validate-trace: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(jsonl_path) = jsonl_path {
        let text = match std::fs::read_to_string(jsonl_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench validate-trace: read {jsonl_path}: {e}");
                return ExitCode::from(2);
            }
        };
        match validate_journal(&text) {
            Ok((spans, events)) => {
                println!("{jsonl_path}: ok ({spans} spans, {events} events)");
            }
            Err(e) => {
                eprintln!("bench validate-trace: {jsonl_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Structural check of a Chrome `trace_event` JSON document. Returns
/// (complete spans, other events).
fn validate_perfetto(text: &str) -> Result<(usize, usize), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("empty `traceEvents`".to_owned());
    }
    let mut spans = 0usize;
    let mut others = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing `ph`"))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        match ph {
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    if ev.get(key).and_then(Json::as_f64).is_none() {
                        return Err(format!("event {i}: complete event missing `{key}`"));
                    }
                }
                spans += 1;
            }
            "B" | "E" | "i" | "C" | "M" => others += 1,
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    if spans == 0 {
        return Err("no complete (`X`) span events".to_owned());
    }
    Ok((spans, others))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench: {msg}");
    ExitCode::from(2)
}
