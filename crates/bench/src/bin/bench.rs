//! `bench` — bench-trajectory and trace-validation tooling.
//!
//! ```text
//! bench trend [--dir D] [--max-regress F] [--ratchet EXP]
//! bench validate-trace <trace.json> [--jsonl <journal.jsonl>]
//! bench validate-telemetry <scrape1.json> [scrape2.json] [--events <path>]
//! ```
//!
//! `trend` reads the `trend` block of every `BENCH_*.json` under `--dir`
//! (default `.`), compares wall-clock and coverage against the entries
//! stored in `BENCH_trend.json` by the previous invocation, rewrites
//! that file, and prints a markdown delta table. It exits non-zero when
//! any experiment got more than `--max-regress` (default `0.20`, i.e.
//! 20%) slower or lost more than that fraction of coverage — CI gates
//! on the exit status.
//!
//! `--ratchet EXP` additionally *requires* experiment `EXP` to be
//! strictly faster than the baseline recorded by the previous `trend`
//! invocation: a PR claiming a speedup runs the old code, `bench trend`
//! (recording the baseline), the new code, then
//! `bench trend --ratchet EXP` — which fails unless wall-clock improved.
//!
//! `validate-trace` checks a Perfetto `trace_event` export structurally
//! (JSON parses, `traceEvents` is a non-empty array, complete events
//! carry name/ts/dur) and, with `--jsonl`, validates an
//! `aidft-trace-v1` journal with the library validator.
//!
//! `validate-telemetry` checks one or two `aidft fleet-stats` JSON
//! scrapes structurally (schema tag, fleet/breaker/rates/latency
//! sections, bucket widths) and — when two are given — that the pair is
//! consistent with a single live run: sample seq, uptime, dies-done,
//! scrape count, and every shared counter must be monotone from the
//! first to the second. With `--events` it also validates an
//! `aidft-telemetry-v1` event journal (v1 envelope, known kinds,
//! strictly increasing seq). CI scrapes a serving fleet twice and gates
//! on the exit status.

use std::path::PathBuf;
use std::process::ExitCode;

use dft_bench::json::Json;
use dft_bench::trend;
use dft_core::telemetry::{validate_events, STATS_SCHEMA};
use dft_core::trace::validate_journal;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trend") => run_trend(&args[1..]),
        Some("validate-trace") => run_validate(&args[1..]),
        Some("validate-telemetry") => run_validate_telemetry(&args[1..]),
        _ => {
            eprintln!(
                "usage: bench <trend [--dir D] [--max-regress F] | \
                 validate-trace <trace.json> [--jsonl <journal.jsonl>] | \
                 validate-telemetry <scrape1.json> [scrape2.json] [--events <path>]>"
            );
            ExitCode::from(2)
        }
    }
}

fn run_trend(args: &[String]) -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut max_regress = 0.20f64;
    let mut ratchet: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => return usage("--dir requires a path"),
            },
            "--max-regress" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => max_regress = f,
                None => return usage("--max-regress requires a fraction, e.g. 0.20"),
            },
            "--ratchet" => match it.next() {
                Some(e) => ratchet = Some(e.clone()),
                None => return usage("--ratchet requires an experiment id"),
            },
            other => return usage(&format!("unknown trend argument `{other}`")),
        }
    }
    let (report, skipped) = match trend::run(&dir, max_regress) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench trend: {e}");
            return ExitCode::from(2);
        }
    };
    for path in &skipped {
        eprintln!("bench trend: note: {} has no trend block", path.display());
    }
    print!("{}", report.markdown());
    if report.deltas.is_empty() {
        eprintln!(
            "bench trend: no BENCH_*.json with trend blocks under {}",
            dir.display()
        );
        return ExitCode::from(2);
    }
    println!(
        "\nwrote {} ({} experiments, threshold {:.0}%)",
        dir.join("BENCH_trend.json").display(),
        report.deltas.len(),
        max_regress * 100.0
    );
    if report.regressed {
        eprintln!(
            "bench trend: REGRESSION over {:.0}% threshold",
            max_regress * 100.0
        );
        return ExitCode::FAILURE;
    }
    if let Some(exp) = ratchet {
        match trend::check_ratchet(&report, &exp) {
            Ok(delta) => println!(
                "ratchet `{exp}`: improved, wall-clock {:+.1}% vs baseline",
                delta * 100.0
            ),
            Err(reason) => {
                eprintln!("bench trend: RATCHET failed: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_validate(args: &[String]) -> ExitCode {
    let mut trace_path: Option<&str> = None;
    let mut jsonl_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jsonl" => match it.next() {
                Some(p) => jsonl_path = Some(p),
                None => return usage("--jsonl requires a path"),
            },
            p if trace_path.is_none() => trace_path = Some(p),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(trace_path) = trace_path else {
        return usage("validate-trace requires a <trace.json> path");
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench validate-trace: read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate_perfetto(&text) {
        Ok((spans, instants)) => {
            println!("{trace_path}: ok ({spans} spans, {instants} other events)");
        }
        Err(e) => {
            eprintln!("bench validate-trace: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(jsonl_path) = jsonl_path {
        let text = match std::fs::read_to_string(jsonl_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench validate-trace: read {jsonl_path}: {e}");
                return ExitCode::from(2);
            }
        };
        match validate_journal(&text) {
            Ok((spans, events)) => {
                println!("{jsonl_path}: ok ({spans} spans, {events} events)");
            }
            Err(e) => {
                eprintln!("bench validate-trace: {jsonl_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_validate_telemetry(args: &[String]) -> ExitCode {
    let mut scrapes: Vec<&str> = Vec::new();
    let mut events_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--events" => match it.next() {
                Some(p) => events_path = Some(p),
                None => return usage("--events requires a path"),
            },
            p if scrapes.len() < 2 => scrapes.push(p),
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    if scrapes.is_empty() {
        return usage("validate-telemetry requires at least one scrape JSON path");
    }
    let mut parsed: Vec<Json> = Vec::new();
    for path in &scrapes {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench validate-telemetry: read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match validate_scrape(&text) {
            Ok(doc) => {
                println!(
                    "{path}: ok (seq {}, {}/{} dies done)",
                    doc.get("seq").and_then(Json::as_u64).unwrap_or(0),
                    scrape_u64(&doc, "fleet", "dies_done"),
                    scrape_u64(&doc, "fleet", "dies"),
                );
                parsed.push(doc);
            }
            Err(e) => {
                eprintln!("bench validate-telemetry: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let [first, second] = parsed.as_slice() {
        if let Err(e) = check_monotone(first, second) {
            eprintln!(
                "bench validate-telemetry: {} -> {}: {e}",
                scrapes[0], scrapes[1]
            );
            return ExitCode::FAILURE;
        }
        println!(
            "{} -> {}: monotone (seq {} -> {})",
            scrapes[0],
            scrapes[1],
            first.get("seq").and_then(Json::as_u64).unwrap_or(0),
            second.get("seq").and_then(Json::as_u64).unwrap_or(0)
        );
    }
    if let Some(path) = events_path {
        match validate_events(std::path::Path::new(path)) {
            Ok(stats) => println!(
                "{path}: ok ({} events, {} quarantines)",
                stats.events, stats.quarantines
            ),
            Err(e) => {
                eprintln!("bench validate-telemetry: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Structural check of one `aidft-stats-v1` JSON scrape. Returns the
/// parsed document for cross-scrape checks.
fn validate_scrape(text: &str) -> Result<Json, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == STATS_SCHEMA => {}
        Some(s) => return Err(format!("schema `{s}`, expected `{STATS_SCHEMA}`")),
        None => return Err("missing `schema` tag".to_owned()),
    }
    if doc.get("seq").and_then(Json::as_u64).is_none() {
        return Err("missing numeric `seq`".to_owned());
    }
    if doc.get("uptime_ms").and_then(Json::as_u64).is_none() {
        return Err("missing numeric `uptime_ms`".to_owned());
    }
    for (section, keys) in [
        ("fleet", &["dies", "dies_done", "windows_in_flight"][..]),
        ("breaker", &["closed", "backoff", "quarantined"][..]),
    ] {
        let obj = doc
            .get(section)
            .ok_or(format!("missing `{section}` section"))?;
        for key in keys {
            if obj.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("missing numeric `{section}.{key}`"));
            }
        }
    }
    for section in ["rates", "latency_us", "counters"] {
        if doc.get(section).is_none() {
            return Err(format!("missing `{section}` section"));
        }
    }
    let latency = doc.get("latency_us").expect("checked above");
    for buckets in ["window_buckets", "signature_buckets"] {
        let n = latency
            .get(buckets)
            .and_then(Json::as_arr)
            .ok_or(format!("missing `latency_us.{buckets}` array"))?
            .len();
        if n != 17 {
            return Err(format!(
                "`latency_us.{buckets}` has {n} buckets, expected 17"
            ));
        }
    }
    Ok(doc)
}

/// Reads `doc.<section>.<key>` as an integer (0 when absent; the
/// structural check has already run).
fn scrape_u64(doc: &Json, section: &str, key: &str) -> u64 {
    doc.get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Two scrapes of the same live run must move forward, never back:
/// sample seq, uptime, dies-done, served scrapes, and every counter
/// present in both.
fn check_monotone(first: &Json, second: &Json) -> Result<(), String> {
    let top = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    for key in ["seq", "uptime_ms", "scrapes"] {
        if top(second, key) < top(first, key) {
            return Err(format!(
                "`{key}` went backwards: {} -> {}",
                top(first, key),
                top(second, key)
            ));
        }
    }
    if scrape_u64(second, "fleet", "dies_done") < scrape_u64(first, "fleet", "dies_done") {
        return Err("`fleet.dies_done` went backwards".to_owned());
    }
    let (Some(Json::Obj(before)), Some(after)) = (first.get("counters"), second.get("counters"))
    else {
        return Err("missing `counters` object".to_owned());
    };
    for (name, value) in before {
        let Some(was) = value.as_u64() else { continue };
        let now = after.get(name).and_then(Json::as_u64).unwrap_or(0);
        if now < was {
            return Err(format!("counter `{name}` went backwards: {was} -> {now}"));
        }
    }
    Ok(())
}

/// Structural check of a Chrome `trace_event` JSON document. Returns
/// (complete spans, other events).
fn validate_perfetto(text: &str) -> Result<(usize, usize), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("empty `traceEvents`".to_owned());
    }
    let mut spans = 0usize;
    let mut others = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing `ph`"))?;
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing `name`"));
        }
        match ph {
            "X" => {
                for key in ["ts", "dur", "pid", "tid"] {
                    if ev.get(key).and_then(Json::as_f64).is_none() {
                        return Err(format!("event {i}: complete event missing `{key}`"));
                    }
                }
                spans += 1;
            }
            "B" | "E" | "i" | "C" | "M" => others += 1,
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    if spans == 0 {
        return Err("no complete (`X`) span events".to_owned());
    }
    Ok((spans, others))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench: {msg}");
    ExitCode::from(2)
}
