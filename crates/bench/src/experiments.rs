//! Implementations of experiments E1-E12 (one function per table/figure).

use std::sync::OnceLock;
use std::time::Instant;

use dft_core::aichip::{
    criticality_sweep, hierarchical_plan, ssn_plan, Dataset, DeliveryStyle, FaultSiteClass,
    SocConfig,
};
use dft_core::atpg::{Atpg, AtpgConfig, CompactionMode, TransitionAtpg};
use dft_core::bist::{
    insert_test_points, march_c_minus, march_ss, march_x, mats_plus, run_march, LogicBist,
    MemFault, MemFaultKind, SramModel,
};
use dft_core::compress::ScanEdt;
use dft_core::diagnosis::{build_failure_log, diagnose};
use dft_core::fault::{
    collapse_dominance, collapse_equivalent, universe_stuck_at, universe_transition, FaultList,
};
use dft_core::logicsim::{
    AnyKernel, Executor, KernelKind, LegacyKernel, PatternSet, SimKernel, TapeKernel,
};
use dft_core::metrics::MetricsHandle;
use dft_core::netlist::generators::{
    benchmark_suite, decoder, mac_pe, systolic_array, SystolicConfig,
};
use dft_core::netlist::Netlist;
use dft_core::scan::{insert_scan, ScanConfig, TestTimeModel};
use dft_core::DftFlow;

static THREADS: OnceLock<usize> = OnceLock::new();

/// Sets the worker-thread count for the simulation-heavy experiments
/// (`0` = one per hardware thread). Numbers are bit-identical for any
/// value; only wall-clock changes.
pub fn set_threads(n: usize) {
    let _ = THREADS.set(n);
}

fn threads() -> usize {
    *THREADS.get().unwrap_or(&1)
}

fn exec() -> Executor {
    Executor::with_threads(threads())
}

/// E1: fault coverage vs random-pattern count (the saturation curve).
pub fn e1_random_coverage() {
    println!("E1: stuck-at coverage vs random pattern count");
    let checkpoints = [1usize, 4, 16, 64, 256, 1024, 2048];
    print!("{:<10}", "circuit");
    for c in checkpoints {
        print!("{c:>8}");
    }
    println!();
    for c in selected_circuits(&["c17", "add32", "mult8", "parity16", "dec5", "mac8"]) {
        let sim = AnyKernel::compile(&c.netlist);
        let ps = PatternSet::random(&c.netlist, *checkpoints.last().unwrap(), 0xE1);
        let mut list = FaultList::new(universe_stuck_at(&c.netlist));
        sim.fault_batch(&ps, &mut list, &exec());
        print!("{:<10}", c.name);
        for &n in &checkpoints {
            let det = (0..list.len())
                .filter(|&i| match list.status(i) {
                    dft_core::fault::FaultStatus::Detected(p) => (p as usize) < n,
                    _ => false,
                })
                .count();
            print!("{:>7.1}%", 100.0 * det as f64 / list.len() as f64);
        }
        println!();
    }
    println!(
        "shape: fast rise then saturation; decoder (dec5) saturates lowest (random-resistant)."
    );
}

/// E2: fault-collapsing table.
pub fn e2_collapse_table() {
    println!("E2: fault collapsing (equivalence, then dominance)");
    println!(
        "{:<10} {:>9} {:>11} {:>7} {:>11} {:>7}",
        "circuit", "universe", "equiv", "ratio", "dominance", "ratio"
    );
    for c in benchmark_suite() {
        let faults = universe_stuck_at(&c.netlist);
        let col = collapse_equivalent(&c.netlist, &faults);
        let dom = collapse_dominance(&c.netlist, &col);
        println!(
            "{:<10} {:>9} {:>11} {:>6.1}% {:>11} {:>6.1}%",
            c.name,
            faults.len(),
            col.representatives().len(),
            100.0 * col.ratio(faults.len()),
            dom.len(),
            100.0 * dom.len() as f64 / faults.len() as f64
        );
    }
    println!("shape: equivalence keeps ~50-70%, dominance trims further.");
}

/// E3: ATPG sign-off table with ablations.
pub fn e3_atpg_signoff() {
    println!("E3: ATPG sign-off (random 128 + PODEM top-off)");
    println!(
        "{:<10} {:>6} {:>8} {:>8} {:>7} {:>7} {:>9} {:>9}",
        "circuit", "gates", "patterns", "TC", "untest", "abort", "backtracks", "time"
    );
    for c in selected_circuits(&[
        "c17", "s27", "add32", "mult8", "alu8", "dec5", "mac8", "sys4x4",
    ]) {
        let run = Atpg::new(&c.netlist).run(&AtpgConfig::default());
        println!(
            "{:<10} {:>6} {:>8} {:>7.2}% {:>7} {:>7} {:>9} {:>8.0}ms",
            c.name,
            c.netlist.num_gates(),
            run.patterns.len(),
            run.test_coverage() * 100.0,
            run.untestable,
            run.aborted,
            run.podem.backtracks,
            run.elapsed.as_secs_f64() * 1e3,
        );
    }
    // Ablations on one representative circuit.
    let nl = dft_core::netlist::generators::alu(8);
    println!("\nablation on alu8 (no random phase):");
    for (label, cfg) in [
        (
            "no compaction     ",
            AtpgConfig {
                random_patterns: 0,
                compaction: CompactionMode::None,
                ..AtpgConfig::default()
            },
        ),
        (
            "static compaction ",
            AtpgConfig {
                random_patterns: 0,
                compaction: CompactionMode::Static,
                ..AtpgConfig::default()
            },
        ),
        (
            "dynamic compaction",
            AtpgConfig {
                random_patterns: 0,
                compaction: CompactionMode::Dynamic,
                ..AtpgConfig::default()
            },
        ),
        (
            "naive backtrace   ",
            AtpgConfig {
                random_patterns: 0,
                guided_backtrace: false,
                ..AtpgConfig::default()
            },
        ),
    ] {
        let run = Atpg::new(&nl).run(&cfg);
        println!(
            "  {label} {:>5} patterns  TC {:>6.2}%  {:>7} backtracks",
            run.patterns.len(),
            run.test_coverage() * 100.0,
            run.podem.backtracks
        );
    }
}

/// E4: EDT compression ratio vs chain count, the Illinois-scan baseline,
/// and the X-masking ablation.
pub fn e4_compression() {
    println!("E4: scan compression on sys4x4 (1000+ flops, deterministic cubes)");
    let nl = systolic_array(SystolicConfig {
        rows: 4,
        cols: 4,
        width: 4,
    });
    let run = Atpg::new(&nl).run(&AtpgConfig {
        random_patterns: 32, // small random phase -> plenty of cubes
        compaction: CompactionMode::None,
        ..AtpgConfig::default()
    });
    println!("({} deterministic cubes)", run.cubes.len());
    println!(
        "{:>7} {:>9} {:>11} {:>11} {:>7} {:>8} {:>14}",
        "chains", "channels", "flat bits", "edt bits", "ratio", "encoded", "illinois bcast"
    );
    for &chains in &[8usize, 16, 32, 64] {
        let scan = insert_scan(&nl, &ScanConfig { num_chains: chains });
        let chain_len = scan.shift_cycles();
        for &channels in &[1usize, 2] {
            let edt = ScanEdt::new(&nl, &scan, channels, 32, 0xE4);
            let stats = edt.compress_all(&run.cubes);
            // Illinois baseline at the same geometry.
            let il = dft_core::compress::IllinoisScan::new(chains, chain_len);
            let cell_cubes: Vec<_> = run.cubes.iter().map(|c| edt.to_cell_cube(c)).collect();
            let (_, bcast_rate) = il.total_cycles(&cell_cubes);
            println!(
                "{chains:>7} {channels:>9} {:>11} {:>11} {:>6.1}x {:>7.0}% {:>13.0}%",
                stats.flat_bits,
                stats.compressed_bits,
                stats.ratio(),
                stats.encode_rate() * 100.0,
                bcast_rate * 100.0
            );
        }
    }
    println!("shape: EDT ratio grows with chains at fixed channels; Illinois broadcast rate collapses as chains share conflicting care bits.");

    // X-masking ablation.
    use dft_core::compress::{signature_with_mask, XMask};
    let responses: Vec<Vec<Option<bool>>> = (0..16)
        .map(|cyc| {
            (0..8)
                .map(|ch| {
                    if cyc == 5 && ch == 3 {
                        None // one unknown bit
                    } else {
                        Some((cyc * 3 + ch) % 2 == 0)
                    }
                })
                .collect()
        })
        .collect();
    let (_, corrupted) = signature_with_mask(8, &responses, None);
    let mut mask = XMask::new(16);
    mask.mask(5, 3);
    let (_, masked_ok) = signature_with_mask(8, &responses, Some(&mask));
    println!(
        "x-masking ablation: unmasked X corrupts signature: {corrupted}; with mask: corrupted={masked_ok}"
    );
}

/// E5: LBIST coverage vs pattern count, with and without test points.
pub fn e5_lbist() {
    println!("E5: logic BIST coverage (PRPG patterns), test-point ablation");
    let nl = decoder(6);
    let (tp_nl, report) = insert_test_points(&nl, 12);
    let checkpoints = [64usize, 256, 1024, 4096];
    let base = LogicBist::new(&nl, 32)
        .threads(threads())
        .coverage_curve(&checkpoints, 0xE5);
    let boosted = LogicBist::new(&tp_nl, 32)
        .threads(threads())
        .coverage_curve(&checkpoints, 0xE5);
    println!(
        "{:>9} {:>14} {:>20}",
        "patterns", "dec6 base", "dec6 + testpoints"
    );
    for (b, t) in base.iter().zip(&boosted) {
        println!("{:>9} {:>13.2}% {:>19.2}%", b.0, b.1 * 100.0, t.1 * 100.0);
    }
    println!(
        "({} test points inserted, +{} gates)",
        report.points.len(),
        report.added_gates
    );
    println!("shape: test points lift the random-resistant curve at every pattern count.");
}

/// Generator for a memory-fault class: `(aggressor, index) -> fault`.
type FaultClassGen = Box<dyn Fn(usize, usize) -> MemFaultKind>;

/// E6: March-algorithm x fault-class detection matrix.
pub fn e6_march_matrix() {
    println!("E6: March detection matrix (64-bit SRAM, 40 random faults/class)");
    let algorithms = [mats_plus(), march_x(), march_c_minus(), march_ss()];
    let classes: [(&str, FaultClassGen); 6] = [
        (
            "SAF",
            Box::new(|_, i| MemFaultKind::StuckAt { value: i % 2 == 0 }),
        ),
        (
            "TF",
            Box::new(|_, i| MemFaultKind::Transition { rising: i % 2 == 0 }),
        ),
        (
            "CFin",
            Box::new(|agg, i| MemFaultKind::CouplingInversion {
                aggressor: agg,
                rising: i % 2 == 0,
            }),
        ),
        (
            "CFid",
            Box::new(|agg, i| MemFaultKind::CouplingIdempotent {
                aggressor: agg,
                rising: i % 2 == 0,
                value: (i / 2) % 2 == 0,
            }),
        ),
        (
            "CFst",
            Box::new(|agg, i| MemFaultKind::CouplingState {
                aggressor: agg,
                agg_value: i % 2 == 0,
                value: (i / 2) % 2 == 0,
            }),
        ),
        (
            "AF",
            Box::new(|agg, _| MemFaultKind::AddressAlias { target: agg }),
        ),
    ];
    print!("{:<6}", "class");
    for a in &algorithms {
        print!("{:>10}", a.name);
    }
    println!();
    for (name, make) in &classes {
        print!("{name:<6}");
        for algo in &algorithms {
            let mut detected = 0;
            let trials = 40;
            for i in 0..trials {
                let cell = (i * 13 + 5) % 64;
                let agg = (cell + 17 + i) % 64;
                let agg = if agg == cell { (agg + 1) % 64 } else { agg };
                let mut mem = SramModel::with_fault(
                    64,
                    MemFault {
                        cell,
                        kind: make(agg, i),
                    },
                );
                if run_march(algo, &mut mem).detected {
                    detected += 1;
                }
            }
            print!("{:>9.0}%", 100.0 * detected as f64 / trials as f64);
        }
        println!();
    }
    println!("shape: MATS+ (5n) misses coupling classes; March C-/SS approach 100%.");
}

/// E7: identical-core pattern reuse.
pub fn e7_core_reuse() {
    println!("E7: replicated-core test time, flat vs broadcast (mac4 core)");
    let core = mac_pe(4);
    let atpg = AtpgConfig::default();
    println!(
        "{:>6} {:>9} {:>13} {:>16} {:>9}",
        "cores", "patterns", "flat cycles", "broadcast cyc", "speedup"
    );
    for cores in [4usize, 8, 16, 32, 64] {
        let plan = hierarchical_plan(
            &core,
            &SocConfig {
                num_cores: cores,
                ..SocConfig::default()
            },
            &atpg,
        );
        println!(
            "{cores:>6} {:>9} {:>13} {:>16} {:>8.1}x",
            plan.patterns_per_core,
            plan.flat_cycles,
            plan.broadcast_cycles,
            plan.speedup()
        );
    }
    println!("shape: broadcast speedup grows ~linearly with core count.");
}

/// E8: diagnosis resolution.
pub fn e8_diagnosis() {
    println!("E8: diagnosis resolution (mac4, 128 patterns, sampled defects)");
    let nl = mac_pe(4);
    let patterns = PatternSet::random(&nl, 128, 0xE8);
    let universe = universe_stuck_at(&nl);
    let mut trials = 0usize;
    let mut rank1_net = 0usize;
    let mut top5_net = 0usize;
    let mut cand_sizes = 0usize;
    let started = Instant::now();
    for (i, &defect) in universe.iter().enumerate() {
        if i % 23 != 0 {
            continue;
        }
        let log = build_failure_log(&nl, &patterns, defect);
        if log.is_clean() {
            continue;
        }
        let cands = diagnose(&nl, &patterns, &log, 5);
        trials += 1;
        cand_sizes += cands.len();
        let hit =
            |c: &dft_core::diagnosis::Candidate| c.fault.site.net(&nl) == defect.site.net(&nl);
        if cands.first().map(hit).unwrap_or(false) {
            rank1_net += 1;
        }
        if cands.iter().any(hit) {
            top5_net += 1;
        }
    }
    println!("defect trials:        {trials}");
    println!(
        "net ranked #1:        {:.1}%",
        100.0 * rank1_net as f64 / trials.max(1) as f64
    );
    println!(
        "net in top-5:         {:.1}%",
        100.0 * top5_net as f64 / trials.max(1) as f64
    );
    println!(
        "avg candidates:       {:.1}",
        cand_sizes as f64 / trials.max(1) as f64
    );
    println!("elapsed:              {:?}", started.elapsed());
    println!("shape: high top-5 localization; rank-1 limited by equivalent faults.");

    // Bridge-defect extension: inject shorts, diagnose with the bridge
    // engine.
    use dft_core::diagnosis::{build_bridge_failure_log, diagnose_bridges};
    use dft_core::fault::bridge_universe;
    let bridges = bridge_universe(&nl, 2);
    let mut btrials = 0usize;
    let mut bpair = 0usize;
    let mut bnet = 0usize;
    for (i, &defect) in bridges.iter().enumerate() {
        if i % 29 != 0 {
            continue;
        }
        let log = build_bridge_failure_log(&nl, &patterns, defect);
        if log.is_clean() {
            continue;
        }
        btrials += 1;
        let cands = diagnose_bridges(&nl, &patterns, &log, 16, 8);
        if cands
            .iter()
            .any(|c| c.bridge.a == defect.a && c.bridge.b == defect.b)
        {
            bpair += 1;
        }
        if cands.iter().any(|c| {
            [c.bridge.a, c.bridge.b].contains(&defect.a)
                || [c.bridge.a, c.bridge.b].contains(&defect.b)
        }) {
            bnet += 1;
        }
    }
    println!("\nbridge-defect extension ({btrials} injected shorts):");
    println!(
        "true pair in top-8:     {:.0}%",
        100.0 * bpair as f64 / btrials.max(1) as f64
    );
    println!(
        "either net in top-8:    {:.0}%",
        100.0 * bnet as f64 / btrials.max(1) as f64
    );
}

/// E9: fault criticality of int8 inference.
pub fn e9_criticality() {
    println!("E9: inference accuracy under PE product-bit faults (8x8 array)");
    let data = Dataset::synthetic(10, 16, 400, 0xE9);
    let model = data.prototype_classifier(3);
    let report = criticality_sweep(&model, 8, 8, &data, 32);
    println!("fault-free accuracy: {:.1}%", report.baseline * 100.0);
    println!(
        "{:<12} {:>10} {:>10} {:>8}",
        "site class", "mean acc", "worst acc", "faults"
    );
    for class in FaultSiteClass::ALL {
        if let Some((_, mean, worst, n)) = report.per_class.iter().find(|(c, ..)| *c == class) {
            println!(
                "{:<12} {:>9.1}% {:>9.1}% {:>8}",
                class.name(),
                mean * 100.0,
                worst * 100.0,
                n
            );
        }
    }
    println!("shape: MSB faults catastrophic, LSB faults benign -> criticality-aware DFT.");
}

/// E10: scan-architecture tradeoff.
pub fn e10_scan_tradeoff() {
    println!("E10: chains vs test time & pins (sys4x4, fixed 500 patterns)");
    let nl = systolic_array(SystolicConfig {
        rows: 4,
        cols: 4,
        width: 4,
    });
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>6}",
        "chains", "max length", "cycles", "time(ms)", "pins"
    );
    for &chains in &[1usize, 4, 16, 64, 256] {
        let scan = insert_scan(&nl, &ScanConfig { num_chains: chains });
        let m = TestTimeModel::for_architecture(&scan, 500, 100);
        println!(
            "{:>7} {:>12} {:>12} {:>12.3} {:>6}",
            m.chains,
            m.max_chain_len,
            m.total_cycles(),
            m.test_time_ms(),
            m.pin_count()
        );
    }
    println!(
        "shape: test time ~1/chains; pin count grows 2/chain — the classic tradeoff EDT breaks."
    );
}

/// E11: transition-fault ATPG vs stuck-at.
pub fn e11_transition() {
    println!("E11: broadside transition ATPG (vs stuck-at on the same designs)");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "circuit", "SA cov", "TF cov", "TF testcov", "pairs", "untest"
    );
    for c in selected_circuits(&["s27", "cnt8", "sr16", "mac4"]) {
        let sa = Atpg::new(&c.netlist).run(&AtpgConfig::default());
        let tf =
            TransitionAtpg::new(&c.netlist).run(universe_transition(&c.netlist), 128, 256, 0xE11);
        println!(
            "{:>8} {:>9.1}% {:>9.1}% {:>9.1}% {:>9} {:>9}",
            c.name,
            sa.fault_list.fault_coverage() * 100.0,
            tf.fault_list.fault_coverage() * 100.0,
            tf.fault_list.test_coverage() * 100.0,
            tf.pairs.len(),
            tf.untestable
        );
    }
    println!("shape: TF raw coverage below SA (launch constraint); test coverage recovers after excluding broadside-untestable faults.");
}

/// E12: streaming-scan-network scaling.
pub fn e12_ssn() {
    println!(
        "E12: scan delivery scaling, daisy chain vs streaming bus (2000 cells/core, 100 patterns)"
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>9}",
        "cores", "daisy", "ssn 32b", "ssn 128b", "32b gain"
    );
    for cores in [2usize, 4, 8, 16, 32, 64, 128] {
        let daisy = ssn_plan(DeliveryStyle::DaisyChain, cores, 2000, 4, 100).total_cycles;
        let ssn32 = ssn_plan(
            DeliveryStyle::StreamingBus { bus_bits: 32 },
            cores,
            2000,
            4,
            100,
        )
        .total_cycles;
        let ssn128 = ssn_plan(
            DeliveryStyle::StreamingBus { bus_bits: 128 },
            cores,
            2000,
            4,
            100,
        )
        .total_cycles;
        println!(
            "{cores:>6} {daisy:>14} {ssn32:>14} {ssn128:>14} {:>8.1}x",
            daisy as f64 / ssn32 as f64
        );
    }
    println!("shape: daisy grows linearly with cores; SSN flat until the bus saturates.");
}

/// METRICS: end-to-end flow observability. Runs the full DFT flow over a
/// representative circuit mix with every run aggregating into one shared
/// registry, prints the headline counters, and writes the merged snapshot
/// to `BENCH_metrics.json` (uploaded as a CI artifact).
pub fn metrics_report() {
    println!("METRICS: aggregated hot-path counters over the full-flow circuit mix");
    let handle = MetricsHandle::enabled();
    let mut circuits = selected_circuits(&["c17", "mult8", "mac4"]);
    circuits.push(dft_core::netlist::generators::NamedCircuit {
        name: "sys2x2",
        netlist: systolic_array(SystolicConfig {
            rows: 2,
            cols: 2,
            width: 4,
        }),
    });
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10}",
        "circuit", "patterns", "backtracks", "gate evals", "edt cubes"
    );
    let wall_start = Instant::now();
    let mut coverage_sum = 0.0f64;
    for c in &circuits {
        let before = handle.snapshot().unwrap();
        let report = DftFlow::new(&c.netlist)
            .metrics(handle.clone())
            .threads(threads())
            .run();
        let after = handle.snapshot().unwrap();
        let delta = |k: &str| after.counter(k) - before.counter(k);
        coverage_sum += report.test_coverage;
        println!(
            "{:<10} {:>9} {:>12} {:>12} {:>10}",
            c.name,
            report.patterns,
            delta("podem_backtracks"),
            delta("faultsim_gate_evals"),
            delta("edt_cubes_attempted"),
        );
    }
    let wall_ns = wall_start.elapsed().as_nanos();
    let coverage = coverage_sum / circuits.len() as f64;
    let snap = handle.snapshot().unwrap();
    // The trend block feeds `bench trend` (see trend.rs); the snapshot
    // keeps the metrics schema documented in EXPERIMENTS.md.
    let json = format!(
        "{{\n\"trend\": {{\"experiment\":\"metrics\",\"wall_clock_ns\":{wall_ns},\
         \"coverage\":{coverage:.6}}},\n\"snapshot\": {}}}\n",
        snap.to_json().trim_end()
    );
    std::fs::write("BENCH_metrics.json", json).expect("write BENCH_metrics.json");
    println!(
        "wrote BENCH_metrics.json ({} counters, {} timers)",
        snap.counters.len(),
        snap.timers.len()
    );
}

/// PPSFP: headline fault-simulation throughput — compiled gate-tape
/// kernel vs the legacy graph-walk engines on the two headline circuits
/// (mult8, sys2x2). Both kernels simulate the identical random pattern
/// set over the full stuck-at universe and must agree on every fault
/// status. Writes `BENCH_ppsfp_tape.json`: the `trend` block carries the
/// wall-clock of the kernel selected by `AIDFT_KERNEL`, so CI records a
/// legacy baseline first and then runs the tape kernel under
/// `bench trend --ratchet ppsfp`, which fails unless the tape beat it.
pub fn ppsfp_report() {
    let kind = KernelKind::from_env();
    println!(
        "PPSFP: fault-simulation throughput, legacy vs gate tape \
         (trend kernel: {})",
        kind.name()
    );
    let num_patterns = 1024usize;
    let reps = 3usize;
    let mut circuits = selected_circuits(&["mult8"]);
    circuits.push(dft_core::netlist::generators::NamedCircuit {
        name: "sys2x2",
        netlist: systolic_array(SystolicConfig {
            rows: 2,
            cols: 2,
            width: 4,
        }),
    });
    println!(
        "{:<8} {:>7} {:>9} {:>11} {:>11} {:>8} {:>12}",
        "circuit", "faults", "patterns", "legacy ms", "tape ms", "speedup", "tape Mf·p/s"
    );
    let mut rows = Vec::new();
    let mut wall_ns = 0u64;
    let mut coverage_sum = 0.0f64;
    for c in &circuits {
        let nl = &c.netlist;
        let ps = PatternSet::random(nl, num_patterns, 0xF5);
        let universe = universe_stuck_at(nl);
        // Best-of-`reps`, compile included (it amortizes to nothing but
        // charging it keeps the comparison honest).
        let bench = |tape: bool| -> (u64, FaultList) {
            let mut best = u64::MAX;
            let mut last = None;
            for _ in 0..reps {
                let mut list = FaultList::new(universe.clone());
                let t = Instant::now();
                if tape {
                    TapeKernel::compile(nl).fault_batch(&ps, &mut list, &exec());
                } else {
                    LegacyKernel::compile(nl).fault_batch(&ps, &mut list, &exec());
                }
                best = best.min(t.elapsed().as_nanos() as u64);
                last = Some(list);
            }
            (best, last.expect("reps >= 1"))
        };
        let (legacy_ns, legacy_list) = bench(false);
        let (tape_ns, tape_list) = bench(true);
        for i in 0..legacy_list.len() {
            assert_eq!(
                legacy_list.status(i),
                tape_list.status(i),
                "kernels disagree on {} ({})",
                legacy_list.faults()[i],
                c.name
            );
        }
        let speedup = legacy_ns as f64 / tape_ns.max(1) as f64;
        let fp_per_sec = (universe.len() * num_patterns) as f64 / (tape_ns as f64 / 1e9) / 1e6;
        println!(
            "{:<8} {:>7} {:>9} {:>11.3} {:>11.3} {:>7.1}x {:>12.1}",
            c.name,
            universe.len(),
            num_patterns,
            legacy_ns as f64 / 1e6,
            tape_ns as f64 / 1e6,
            speedup,
            fp_per_sec
        );
        wall_ns += match kind {
            KernelKind::Legacy => legacy_ns,
            KernelKind::Tape => tape_ns,
        };
        coverage_sum += tape_list.fault_coverage();
        rows.push(format!(
            "{{\"circuit\":\"{}\",\"faults\":{},\"patterns\":{},\"legacy_ns\":{},\
             \"tape_ns\":{},\"speedup\":{:.3}}}",
            c.name,
            universe.len(),
            num_patterns,
            legacy_ns,
            tape_ns,
            speedup
        ));
    }
    let coverage = coverage_sum / circuits.len() as f64;
    let json = format!(
        "{{\n\"trend\": {{\"experiment\":\"ppsfp\",\"wall_clock_ns\":{wall_ns},\
         \"coverage\":{coverage:.6}}},\n\"kernel\": \"{}\",\n\"circuits\": [{}]\n}}\n",
        kind.name(),
        rows.join(",")
    );
    std::fs::write("BENCH_ppsfp_tape.json", json).expect("write BENCH_ppsfp_tape.json");
    println!("wrote BENCH_ppsfp_tape.json (statuses bit-identical across kernels)");
    println!(
        "shape: 256 patterns/pass vs 64, compile-once tape, lane-0 early drop; \
         expect ~3.3x (mult8) / ~2.3x (sys2x2), see EXPERIMENTS.md."
    );
}

/// REPAIR: built-in self-repair and graceful degradation. Two tables:
/// repairable-vs-unrepairable SRAM yield across injected fault densities
/// (memory BISR with 2+2 spares on a 16x16 array), and the degraded-SoC
/// ship matrix (grade, recomputed broadcast test time, and harvested
/// inference accuracy versus bad-core count). Writes both to
/// `BENCH_repair.json` (uploaded as a CI artifact).
pub fn repair_report() {
    use dft_core::repair::{
        plan_degradation, run_inference_check, yield_sweep, BisrEngine, SpareConfig, SramGeometry,
    };

    let handle = MetricsHandle::enabled();
    let wall_start = Instant::now();

    // Table 1: SRAM repair yield vs injected fault density.
    let geom = SramGeometry { rows: 16, cols: 16 };
    let spares = SpareConfig {
        spare_rows: 2,
        spare_cols: 2,
    };
    let engine = BisrEngine::new().with_metrics(handle.clone());
    println!(
        "REPAIR: {}x{} SRAM + {}r/{}c spares, March C-, 25 dies per density",
        geom.rows, geom.cols, spares.spare_rows, spares.spare_cols
    );
    println!(
        "{:>7} {:>6} {:>9} {:>13} {:>7}",
        "faults", "clean", "repaired", "unrepairable", "yield"
    );
    let sweep = yield_sweep(
        &engine,
        geom,
        &spares,
        &[0, 1, 2, 3, 4, 5, 6, 8, 12],
        25,
        0xBE9C,
    );
    let mut yield_rows = Vec::new();
    for p in &sweep {
        println!(
            "{:>7} {:>6} {:>9} {:>13} {:>6.0}%",
            p.faults_injected,
            p.clean,
            p.repaired,
            p.unrepairable,
            p.yield_fraction() * 100.0
        );
        yield_rows.push(format!(
            "{{\"faults\":{},\"attempts\":{},\"clean\":{},\"repaired\":{},\
             \"unrepairable\":{},\"yield\":{:.4}}}",
            p.faults_injected,
            p.attempts,
            p.clean,
            p.repaired,
            p.unrepairable,
            p.yield_fraction()
        ));
    }
    println!("shape: full yield while faults fit the spare budget, then a sharp knee.");

    // Table 2: degraded-SoC ship matrix. One ATPG run on the core fixes
    // per_core_cycles; everything else is rescheduling + inference.
    let core = mac_pe(4);
    let cfg = SocConfig {
        threads: threads(),
        ..SocConfig::default()
    };
    let plan = hierarchical_plan(&core, &cfg, &AtpgConfig::new().threads(threads()));
    let max_bad_cores = 2usize;
    println!(
        "\ndegraded-SoC ship matrix: {} cores, floor N-{max_bad_cores}, \
         per-core {} cycles",
        cfg.num_cores, plan.per_core_cycles
    );
    println!(
        "{:>9} {:>6} {:>12} {:>13} {:>12} {:>10} {:>10}",
        "bad cores", "ships", "bcast cyc", "test ms", "harvest acc", "faulty acc", "thruput"
    );
    let mut ship_rows = Vec::new();
    for bad in 0..=4usize {
        let mut pass_map = vec![true; cfg.num_cores];
        for core_idx in 0..bad {
            // Spread the bad cores across the die deterministically.
            pass_map[(core_idx * 5 + 3) % cfg.num_cores] = false;
        }
        let hplan = plan_degradation(
            &pass_map,
            plan.per_core_cycles,
            &cfg,
            max_bad_cores,
            &handle,
        );
        let check = run_inference_check(cfg.num_cores, &hplan.disabled, 0xC0DE);
        println!(
            "{:>9} {:>6} {:>12} {:>13.3} {:>11.1}% {:>9.1}% {:>9.0}%",
            bad,
            if hplan.ships { "yes" } else { "no" },
            hplan.broadcast_cycles,
            hplan.test_time_ms,
            check.harvested_accuracy * 100.0,
            check.faulty_accuracy * 100.0,
            check.throughput_fraction * 100.0
        );
        ship_rows.push(format!(
            "{{\"bad_cores\":{},\"good_cores\":{},\"ships\":{},\"broadcast_cycles\":{},\
             \"flat_cycles\":{},\"test_time_ms\":{:.6},\"harvested_accuracy\":{:.4},\
             \"faulty_accuracy\":{:.4},\"throughput_fraction\":{:.4}}}",
            bad,
            hplan.good_cores,
            hplan.ships,
            hplan.broadcast_cycles,
            hplan.flat_cycles,
            hplan.test_time_ms,
            check.harvested_accuracy,
            check.faulty_accuracy,
            check.throughput_fraction
        ));
    }
    println!(
        "shape: accuracy holds while throughput degrades linearly; past the floor the die scraps."
    );

    let wall_ns = wall_start.elapsed().as_nanos();
    let mean_yield =
        sweep.iter().map(|p| p.yield_fraction()).sum::<f64>() / sweep.len().max(1) as f64;
    let json = format!(
        "{{\n  \"trend\": {{\"experiment\":\"repair\",\"wall_clock_ns\":{wall_ns},\
         \"coverage\":{mean_yield:.6}}},\n  \
         \"sram\": {{\"rows\":{},\"cols\":{},\"spare_rows\":{},\"spare_cols\":{}}},\n  \
         \"yield_sweep\": [{}],\n  \"soc\": {{\"cores\":{},\"max_bad_cores\":{},\
         \"per_core_cycles\":{}}},\n  \"degradation\": [{}]\n}}\n",
        geom.rows,
        geom.cols,
        spares.spare_rows,
        spares.spare_cols,
        yield_rows.join(","),
        cfg.num_cores,
        max_bad_cores,
        plan.per_core_cycles,
        ship_rows.join(",")
    );
    std::fs::write("BENCH_repair.json", json).expect("write BENCH_repair.json");
    println!(
        "wrote BENCH_repair.json ({} yield points, {} ship rows)",
        sweep.len(),
        5
    );
}

/// `serve` — test-floor fleet-service throughput. Streams the whole
/// mac4 broadcast to a 32-die simulated fleet over loopback TCP,
/// verifies every uploaded MISR signature, and reports dies/sec,
/// signatures/sec, and the adaptive-retest rate. A telemetry session
/// rides along (sampler only — no scrape endpoint, no event stream) to
/// measure peak rolling throughput and the p99 window round-trip.
/// Writes `BENCH_serve.json`; the `trend` block carries total wall
/// clock, the fleet pass fraction as coverage, peak dies/sec (higher-
/// better), and p99 window latency (lower-better), all gated by
/// `bench trend`.
pub fn serve_report() {
    use dft_core::serve::{run_fleet, ServeConfig, ServeOpts};
    use dft_core::telemetry::{TelemetryConfig, TelemetrySession};

    let circuits = selected_circuits(&["mac4"]);
    let nl = &circuits[0].netlist;
    let handle = MetricsHandle::enabled();
    let wall_start = Instant::now();
    let cfg = ServeConfig {
        dies: 32,
        client_threads: match threads() {
            0 => 8,
            n => n,
        },
        ..ServeConfig::default()
    };
    let tele_cfg = TelemetryConfig {
        period: std::time::Duration::from_millis(25),
        ..TelemetryConfig::default()
    };
    let tele = TelemetrySession::start(tele_cfg, handle.clone()).expect("telemetry session");
    let opts = ServeOpts {
        metrics: handle.clone(),
        telemetry: tele.handle(),
        ..ServeOpts::default()
    };
    let report = run_fleet(nl, &cfg, &opts).expect("serve fleet");
    let wall_ns = wall_start.elapsed().as_nanos();
    let tele_final = tele.finish();

    let s = report.summary;
    let serve_secs = report.wall.as_secs_f64().max(1e-9);
    let dies_per_sec = s.tested as f64 / serve_secs;
    let sigs_per_sec = s.signatures as f64 / serve_secs;
    let retest_rate = s.retested as f64 / s.tested.max(1) as f64;
    let pass_fraction = s.passed as f64 / s.tested.max(1) as f64;
    let snap = handle.snapshot().expect("metrics enabled");
    // A short run can outpace the 25 ms sampler (peak gauge 0) or
    // settle every window between ticks (p99 NaN); fall back to the
    // whole-run figures so the trend block always has a number.
    let peak_dies_per_sec = if tele_final.peak_dies_per_sec > 0.0 {
        tele_final.peak_dies_per_sec
    } else {
        dies_per_sec
    };
    let p99_window_us = if tele_final.p99_window_latency_us.is_finite() {
        tele_final.p99_window_latency_us
    } else {
        0.0
    };
    let sig_p99_us = if tele_final.final_sample.signature_p99_us.is_finite() {
        tele_final.final_sample.signature_p99_us
    } else {
        0.0
    };
    let tele_samples = tele_final.samples;

    println!(
        "SERVE: mac4 fleet, {} dies x {} windows, {} client threads",
        s.dies, s.windows_per_die, cfg.client_threads
    );
    print!("{}", s.render(report.wall));
    println!(
        "broadcast: {} patterns ({} EDT-encoded, {} flat)",
        report.patterns, report.edt_encoded, report.edt_flat
    );
    println!(
        "throughput: {dies_per_sec:.0} dies/s, {sigs_per_sec:.0} signatures/s, \
         retest rate {:.1}%",
        retest_rate * 100.0
    );
    println!(
        "telemetry: {} samples, peak {peak_dies_per_sec:.0} dies/s, \
         p99 window {p99_window_us:.0} us",
        tele_final.samples
    );
    println!("shape: defective dies always mismatch, retest, and route to harvest/scrap.");

    let json = format!(
        "{{\n  \"trend\": {{\"experiment\":\"serve\",\"wall_clock_ns\":{wall_ns},\
         \"coverage\":{pass_fraction:.6},\
         \"peak_dies_per_sec\":{peak_dies_per_sec:.2},\
         \"p99_window_latency_us\":{p99_window_us:.2}}},\n  \
         \"fleet\": {{\"design\":\"mac4\",\"dies\":{},\"windows_per_die\":{},\
         \"window_patterns\":{},\"patterns\":{},\"edt_encoded\":{},\"edt_flat\":{},\
         \"client_threads\":{}}},\n  \
         \"summary\": {{\"tested\":{},\"passed\":{},\"failed\":{},\"defective\":{},\
         \"retested\":{},\"full\":{},\"harvested\":{},\"scrapped\":{},\
         \"quarantined\":{},\"untested\":{},\"dppm_risk\":{},\
         \"signatures\":{}}},\n  \
         \"throughput\": {{\"dies_per_sec\":{dies_per_sec:.2},\
         \"signatures_per_sec\":{sigs_per_sec:.2},\"retest_rate\":{retest_rate:.4}}},\n  \
         \"transport\": {{\"windows_sent\":{},\"conn_drops\":{},\"torn_frames\":{},\
         \"retries\":{},\"backoff_ns\":{},\"quarantined\":{},\"heartbeats\":{},\
         \"idle_reaps\":{},\"corrupt_frames\":{}}},\n  \
         \"telemetry\": {{\"samples\":{tele_samples},\
         \"peak_dies_per_sec\":{peak_dies_per_sec:.2},\
         \"p99_window_latency_us\":{p99_window_us:.2},\
         \"signature_p99_us\":{sig_p99_us:.2}}}\n}}\n",
        s.dies,
        s.windows_per_die,
        cfg.window_patterns,
        report.patterns,
        report.edt_encoded,
        report.edt_flat,
        cfg.client_threads,
        s.tested,
        s.passed,
        s.failed,
        s.defective,
        s.retested,
        s.full,
        s.harvested,
        s.scrapped,
        s.quarantined,
        s.untested,
        s.dppm_risk,
        s.signatures,
        snap.counter("serve_windows"),
        snap.counter("serve_conn_drops"),
        snap.counter("serve_torn_frames"),
        snap.counter("serve_retries"),
        snap.counter("serve_backoff_ns"),
        snap.counter("serve_quarantined"),
        snap.counter("serve_heartbeats"),
        snap.counter("serve_idle_reaps"),
        snap.counter("serve_corrupt_frames"),
    );
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!(
        "wrote BENCH_serve.json ({} dies, {} signatures)",
        s.tested, s.signatures
    );
}

/// Picks circuits by name from the standard suite.
fn selected_circuits(names: &[&str]) -> Vec<dft_core::netlist::generators::NamedCircuit> {
    benchmark_suite()
        .into_iter()
        .filter(|c| names.contains(&c.name))
        .collect()
}

// Silence the unused warning for Netlist (used in signatures above via
// generics resolution).
#[allow(unused)]
fn _t(_: &Netlist) {}
