//! Effect-cause candidate extraction and per-pattern match scoring.

use dft_fault::{universe_stuck_at, Fault};
use dft_logicsim::{FaultSim, PatternSet, SimWorkspace};
use dft_netlist::{output_cone_map, Netlist};

use crate::FailureLog;

/// A ranked diagnosis candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The candidate fault.
    pub fault: Fault,
    /// Failing observations the candidate predicts and the log confirms
    /// ("tester fail, simulation fail").
    pub tfsf: u32,
    /// Predicted failures the log does not show ("tester pass, simulation
    /// fail") — evidence against.
    pub tpsf: u32,
    /// Logged failures the candidate cannot explain ("tester fail,
    /// simulation pass") — strong evidence against.
    pub tfsp: u32,
}

impl Candidate {
    /// Composite ranking score: reward explained failures, punish
    /// mispredictions (the standard effect-cause weighting).
    pub fn score(&self) -> i64 {
        self.tfsf as i64 * 4 - self.tfsp as i64 * 2 - self.tpsf as i64
    }

    /// A perfect candidate predicts exactly the observed failures.
    pub fn is_exact(&self) -> bool {
        self.tpsf == 0 && self.tfsp == 0 && self.tfsf > 0
    }
}

/// Diagnoses a failure log against the full single stuck-at universe of
/// `nl`, returning up to `top_k` candidates, best first.
pub fn diagnose(
    nl: &Netlist,
    patterns: &PatternSet,
    log: &FailureLog,
    top_k: usize,
) -> Vec<Candidate> {
    diagnose_universe(nl, patterns, log, universe_stuck_at(nl), top_k)
}

/// [`diagnose`] with a caller-supplied candidate universe (e.g. collapsed
/// or cone-restricted).
pub fn diagnose_universe(
    nl: &Netlist,
    patterns: &PatternSet,
    log: &FailureLog,
    universe: Vec<Fault>,
    top_k: usize,
) -> Vec<Candidate> {
    if log.is_clean() {
        return Vec::new();
    }
    // 1. Structural screen: the candidate's net must reach every failing
    // sink.
    let cone_map = output_cone_map(nl);
    let failing_sinks = log.failing_sink_union();
    let structural: Vec<Fault> = universe
        .into_iter()
        .filter(|f| {
            let net = f.site.net(nl);
            failing_sinks.iter().all(|&s| {
                let w = (s / 64) as usize;
                let b = s % 64;
                (cone_map[net.index()][w] >> b) & 1 == 1
            })
        })
        .collect();

    // 2. Per-pattern simulation scoring.
    let sim = FaultSim::new(nl);
    let mut ws = SimWorkspace::new(nl.num_gates());
    let mut scored: Vec<Candidate> = structural
        .iter()
        .map(|&fault| {
            let mut c = Candidate {
                fault,
                tfsf: 0,
                tpsf: 0,
                tfsp: 0,
            };
            for (start, words, count) in patterns.blocks() {
                let good = sim.good_sim().eval_block(&words);
                let mask = if count >= 64 {
                    !0u64
                } else {
                    (1u64 << count) - 1
                };
                let (det, _) = sim.detect_word(&good, mask, fault, &mut ws);
                for k in 0..count {
                    let pattern = (start + k) as u32;
                    let predicted = (det >> k) & 1 == 1;
                    let observed = log.fails.iter().any(|f| f.pattern == pattern);
                    match (predicted, observed) {
                        (true, true) => c.tfsf += 1,
                        (true, false) => c.tpsf += 1,
                        (false, true) => c.tfsp += 1,
                        (false, false) => {}
                    }
                }
            }
            c
        })
        .collect();
    scored.sort_by_key(|c| std::cmp::Reverse(c.score()));
    scored.truncate(top_k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_failure_log;
    use dft_netlist::generators::{c17, ripple_adder};

    #[test]
    fn injected_stem_fault_ranks_first_or_equivalent() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 64, 5);
        for &defect in universe_stuck_at(&nl).iter() {
            let log = build_failure_log(&nl, &ps, defect);
            if log.is_clean() {
                continue;
            }
            let cands = diagnose(&nl, &ps, &log, 5);
            assert!(!cands.is_empty(), "{defect}: no candidates");
            let top = &cands[0];
            assert!(top.is_exact(), "{defect}: top candidate not exact");
            // The true defect must be among the exact top candidates
            // (equivalent faults are indistinguishable — accept any
            // candidate with the same score as containing set).
            let best = cands[0].score();
            assert!(
                cands
                    .iter()
                    .take_while(|c| c.score() == best)
                    .any(|c| c.fault == defect),
                "{defect} not among best candidates: {cands:?}"
            );
        }
    }

    #[test]
    fn clean_log_yields_no_candidates() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 8, 1);
        let log = FailureLog::default();
        assert!(diagnose(&nl, &ps, &log, 5).is_empty());
    }

    #[test]
    fn structural_screen_prunes_unrelated_logic() {
        // In an adder, a defect on the LSB full adder cannot be blamed on
        // nets that only reach higher-order sums... conversely a candidate
        // that reaches no failing sink must be pruned.
        let nl = ripple_adder(8);
        let ps = PatternSet::random(&nl, 64, 11);
        let s0 = nl.find("add_fa0_s").unwrap();
        let defect = Fault::stuck_at_output(s0, true);
        let log = build_failure_log(&nl, &ps, defect);
        let cands = diagnose(&nl, &ps, &log, 50);
        // Every candidate must reach the failing sinks: s0's cone is just
        // the s0 output, so candidates live in fa0's cone.
        for c in &cands {
            let name = &nl.gate(c.fault.site.gate).name;
            assert!(
                name.contains("fa0")
                    || name.starts_with('a')
                    || name.starts_with('b')
                    || name == "cin"
                    || name.contains("_po")
                    || name.starts_with('s'),
                "implausible candidate {name}"
            );
        }
        assert!(cands.iter().any(|c| c.fault == defect));
    }

    #[test]
    fn scoring_prefers_exact_over_partial() {
        let c_exact = Candidate {
            fault: Fault::stuck_at_output(dft_netlist::GateId(0), false),
            tfsf: 10,
            tpsf: 0,
            tfsp: 0,
        };
        let c_partial = Candidate {
            fault: Fault::stuck_at_output(dft_netlist::GateId(1), false),
            tfsf: 10,
            tpsf: 3,
            tfsp: 1,
        };
        assert!(c_exact.score() > c_partial.score());
        assert!(c_exact.is_exact());
        assert!(!c_partial.is_exact());
    }
}
