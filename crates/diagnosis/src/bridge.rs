//! Bridge-defect diagnosis.
//!
//! Single stuck-at candidates cannot explain a short between two nets —
//! the telltale is a log where no stuck-at candidate is exact. The
//! standard second pass pairs the nets of the best stuck-at candidates
//! and scores the four bridge models per pair.

use dft_fault::{BridgeFault, BridgeKind};
use dft_logicsim::{FaultSim, PatternSet, SimWorkspace};
use dft_netlist::{GateId, Netlist};

use crate::FailureLog;

/// A scored bridge candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeCandidate {
    /// The candidate short.
    pub bridge: BridgeFault,
    /// Predicted-and-observed failing patterns.
    pub tfsf: u32,
    /// Predicted-but-not-observed failures.
    pub tpsf: u32,
    /// Observed-but-not-predicted failures.
    pub tfsp: u32,
}

impl BridgeCandidate {
    /// Same composite weighting as stuck-at candidates.
    pub fn score(&self) -> i64 {
        self.tfsf as i64 * 4 - self.tfsp as i64 * 2 - self.tpsf as i64
    }

    /// `true` when the candidate explains the log perfectly.
    pub fn is_exact(&self) -> bool {
        self.tpsf == 0 && self.tfsp == 0 && self.tfsf > 0
    }
}

/// Builds a failure log for an injected bridge defect (the synthetic
/// tester datalog for bridge experiments).
pub fn build_bridge_failure_log(
    nl: &Netlist,
    patterns: &PatternSet,
    defect: BridgeFault,
) -> FailureLog {
    let sim = FaultSim::new(nl);
    let mut ws = SimWorkspace::new(nl.num_gates());
    let mut fails = Vec::new();
    for (start, words, count) in patterns.blocks() {
        let good = sim.good_sim().eval_block(&words);
        let mask = if count >= 64 {
            !0u64
        } else {
            (1u64 << count) - 1
        };
        let (det, _) = sim.detect_word_bridge(&good, mask, defect, &mut ws);
        let mut d = det;
        while d != 0 {
            let k = d.trailing_zeros();
            d &= d - 1;
            // Which sinks fail is pattern-specific; recompute per pattern
            // for the log (bridge responses need per-sink detail).
            let p = patterns.pattern(start + k as usize);
            let pw: Vec<u64> = p.iter().map(|&b| if b { !0 } else { 0 }).collect();
            let g1 = sim.good_sim().eval_block(&pw);
            let (_, _) = sim.detect_word_bridge(&g1, 1, defect, &mut ws);
            // The workspace now holds the faulty overlay for this pattern.
            let sinks = sim.good_sim().sinks();
            let sink_words = sim.good_sim().sink_words(&g1);
            let mut failing = Vec::new();
            for (si, &s) in sinks.iter().enumerate() {
                let gate = nl.gate(s);
                let faulty = if matches!(gate.kind, dft_netlist::GateKind::Dff) {
                    ws_value(&ws, gate.fanins[0], &g1)
                } else {
                    ws_value(&ws, s, &g1)
                };
                if (faulty ^ sink_words[si]) & 1 == 1 {
                    failing.push(si as u32);
                }
            }
            if !failing.is_empty() {
                fails.push(crate::PatternFail {
                    pattern: start as u32 + k,
                    failing_sinks: failing,
                });
            }
        }
    }
    FailureLog { fails }
}

fn ws_value(ws: &SimWorkspace, g: GateId, good: &[u64]) -> u64 {
    ws.value_or(g, good)
}

/// Diagnoses a log allowing bridge candidates: runs stuck-at diagnosis
/// first, then pairs the nets of the top `pair_pool` single-net
/// candidates and scores all four bridge models for each pair. Returns
/// bridge candidates sorted best-first.
pub fn diagnose_bridges(
    nl: &Netlist,
    patterns: &PatternSet,
    log: &FailureLog,
    pair_pool: usize,
    top_k: usize,
) -> Vec<BridgeCandidate> {
    if log.is_clean() {
        return Vec::new();
    }
    // Pool of suspect nets via SLAT (single-location-at-a-time): a
    // bridge's failures span two cones, so the all-patterns structural
    // screen used for stuck-at candidates rejects the true nets. Instead,
    // each failing pattern votes for the nets whose single stuck-at
    // reproduces *exactly* that pattern's failing-sink set; the two
    // bridged nets each explain the cycles on which they are the active
    // victim.
    let sim_pool = FaultSim::new(nl);
    let good_sim = sim_pool.good_sim();
    let sinks = good_sim.sinks();
    let mut ws_pool = SimWorkspace::new(nl.num_gates());
    let mut votes: Vec<(usize, GateId)> = Vec::new();
    let net_candidates: Vec<GateId> = nl
        .iter()
        .filter(|(_, g)| {
            g.kind.is_logic()
                || matches!(
                    g.kind,
                    dft_netlist::GateKind::Input | dft_netlist::GateKind::Dff
                )
        })
        .map(|(id, _)| id)
        .collect();
    let fail_sample: Vec<&crate::PatternFail> = log.fails.iter().take(32).collect();
    for &net in &net_candidates {
        let mut count = 0usize;
        for fail in &fail_sample {
            let p = patterns.pattern(fail.pattern as usize);
            let words: Vec<u64> = p.iter().map(|&b| if b { !0 } else { 0 }).collect();
            let good = good_sim.eval_block(&words);
            let mut matched = false;
            for value in [false, true] {
                let f = dft_fault::Fault::stuck_at_output(net, value);
                let (det, _) = sim_pool.detect_word(&good, 1, f, &mut ws_pool);
                if det & 1 == 0 {
                    continue;
                }
                // Exact per-sink comparison using the workspace overlay.
                let sink_words = good_sim.sink_words(&good);
                let exact = sinks.iter().enumerate().all(|(si, &s)| {
                    let gate = nl.gate(s);
                    let faulty = if matches!(gate.kind, dft_netlist::GateKind::Dff) {
                        ws_pool.value_or(gate.fanins[0], &good)
                    } else {
                        ws_pool.value_or(s, &good)
                    };
                    let fails_here = (faulty ^ sink_words[si]) & 1 == 1;
                    fails_here == fail.failing_sinks.contains(&(si as u32))
                });
                if exact {
                    matched = true;
                    break;
                }
            }
            if matched {
                count += 1;
            }
        }
        if count > 0 {
            votes.push((count, net));
        }
    }
    votes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut nets: Vec<GateId> = votes
        .into_iter()
        .take(pair_pool)
        .map(|(_, id)| id)
        .collect();
    nets.sort_unstable();
    nets.dedup();

    let sim = FaultSim::new(nl);
    let mut ws = SimWorkspace::new(nl.num_gates());
    let observed: Vec<u32> = log.fails.iter().map(|f| f.pattern).collect();
    let mut out = Vec::new();
    for (i, &a) in nets.iter().enumerate() {
        for &b in nets.iter().skip(i + 1) {
            if nl.gate(b).fanins.contains(&a) || nl.gate(a).fanins.contains(&b) {
                continue;
            }
            for kind in BridgeKind::ALL {
                let bridge = BridgeFault { a, b, kind };
                let mut cand = BridgeCandidate {
                    bridge,
                    tfsf: 0,
                    tpsf: 0,
                    tfsp: 0,
                };
                for (start, words, count) in patterns.blocks() {
                    let good = sim.good_sim().eval_block(&words);
                    let mask = if count >= 64 {
                        !0u64
                    } else {
                        (1u64 << count) - 1
                    };
                    let (det, _) = sim.detect_word_bridge(&good, mask, bridge, &mut ws);
                    for k in 0..count {
                        let pat = (start + k) as u32;
                        let predicted = (det >> k) & 1 == 1;
                        let obs = observed.contains(&pat);
                        match (predicted, obs) {
                            (true, true) => cand.tfsf += 1,
                            (true, false) => cand.tpsf += 1,
                            (false, true) => cand.tfsp += 1,
                            (false, false) => {}
                        }
                    }
                }
                out.push(cand);
            }
        }
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.score()));
    out.truncate(top_k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::ripple_adder;

    #[test]
    fn injected_bridge_is_top_candidate() {
        let nl = ripple_adder(6);
        let patterns = PatternSet::random(&nl, 128, 0xB12);
        // Pick two unrelated internal nets.
        let a = nl.find("add_fa1_axb").unwrap();
        let b = nl.find("add_fa4_t2").unwrap();
        let defect = BridgeFault {
            a,
            b,
            kind: BridgeKind::WiredOr,
        };
        let log = build_bridge_failure_log(&nl, &patterns, defect);
        assert!(!log.is_clean(), "bridge must fail some patterns");
        let cands = diagnose_bridges(&nl, &patterns, &log, 12, 8);
        assert!(!cands.is_empty());
        let best = cands[0].score();
        let found = cands
            .iter()
            .take_while(|c| c.score() == best)
            .any(|c| c.bridge.a == a && c.bridge.b == b);
        assert!(found, "injected bridge not among best: {cands:?}");
    }

    #[test]
    fn bridge_log_matches_detection() {
        let nl = ripple_adder(4);
        let patterns = PatternSet::random(&nl, 48, 0xB13);
        let a = nl.find("add_fa0_s").unwrap();
        let b = nl.find("add_fa2_t2").unwrap();
        let defect = BridgeFault {
            a,
            b,
            kind: BridgeKind::WiredAnd,
        };
        let log = build_bridge_failure_log(&nl, &patterns, defect);
        let sim = FaultSim::new(&nl);
        for (i, p) in patterns.iter().enumerate() {
            let in_log = log.fails.iter().any(|f| f.pattern == i as u32);
            assert_eq!(in_log, sim.detects_bridge(p, defect), "pattern {i}");
        }
    }
}
