//! Scan-chain diagnosis: locating a broken scan cell.
//!
//! With thousands of flops per chain in an AI chip, a single defective
//! scan cell blocks everything upstream of it — the tester sees a
//! characteristic "flush" failure rather than functional miscompares.
//! The standard first step of chain diagnosis: apply flush patterns
//! (shift-only, no capture) and deduce the defect position and polarity
//! from the corrupted unload image.

use dft_netlist::{GateKind, Levelization};
use dft_scan::ScanInsertion;

/// Behaviour of a defective scan cell during shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainDefect {
    /// The cell's scan path output is stuck at a value: every bit shifted
    /// through it reads that value downstream.
    StuckAt(bool),
    /// The cell inverts what it passes along.
    Inversion,
}

/// A located chain defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainDiagnosis {
    /// Chain index.
    pub chain: usize,
    /// Cell position from scan-in (0 = first cell after `si`).
    pub position: usize,
    /// Deduced defect behaviour.
    pub defect: ChainDefect,
}

/// Simulates a flush test on the scan-inserted netlist with a defective
/// cell injected, returning the unload image observed at `so{chain}`:
/// `image[k]` is the bit emerging at shift cycle `k` (for `2 * len`
/// cycles, the flush vector being `pattern`).
pub fn flush_unload(
    scan: &ScanInsertion,
    chain: usize,
    defect_pos: Option<(usize, ChainDefect)>,
    pattern: &[bool],
) -> Vec<bool> {
    let nl = &scan.netlist;
    let lv = Levelization::compute(nl).expect("acyclic");
    let len = scan.chains[chain].len();
    assert_eq!(
        pattern.len(),
        2 * len,
        "flush vector must cover 2*len cycles"
    );
    let mut state = vec![false; nl.num_gates()];
    state[scan.scan_enable.index()] = true;
    let mut out = Vec::with_capacity(2 * len);
    for &bit in pattern {
        state[scan.scan_in[chain].index()] = bit;
        let mut vals = state.clone();
        for &id in lv.order() {
            let g = nl.gate(id);
            if matches!(g.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let ins: Vec<bool> = g.fanins.iter().map(|&f| vals[f.index()]).collect();
            vals[id.index()] = g.kind.eval_bool(&ins);
        }
        out.push(vals[scan.scan_out[chain].index()]);
        for &ff in nl.dffs() {
            let d = nl.gate(ff).fanins[0];
            let mut v = vals[d.index()];
            // Inject the shift-path defect at the cell's capture.
            if let Some((pos, defect)) = defect_pos {
                if scan.chains[chain].get(pos) == Some(&ff) {
                    v = match defect {
                        ChainDefect::StuckAt(s) => s,
                        ChainDefect::Inversion => !v,
                    };
                }
            }
            state[ff.index()] = v;
        }
    }
    out
}

/// Diagnoses a chain from its flush unload image.
///
/// The flush vector convention: first `len` cycles shift in alternating
/// `0011...`-style bits (provided by the caller as `pattern`); a healthy
/// chain echoes `pattern` delayed by `len` cycles. A stuck cell at
/// position `p` (0 = nearest scan-in) forces every bit that passes
/// through it, so the unload is constant from the point the wavefront
/// reaches the scan-out; an inverting cell flips the whole delayed image.
/// Position is recovered from where the constant region begins.
pub fn diagnose_chain(
    scan: &ScanInsertion,
    chain: usize,
    observed: &[bool],
    pattern: &[bool],
) -> Option<ChainDiagnosis> {
    let len = scan.chains[chain].len();
    assert_eq!(observed.len(), 2 * len);
    let healthy: Vec<bool> = (0..2 * len)
        .map(|t| if t < len { false } else { pattern[t - len] })
        .collect();
    // Healthy chains initially hold 0s; compare the echo region.
    if observed[len..] == healthy[len..] {
        return None;
    }
    // Stuck cell: the echo region is constant. A cell at position p
    // passes its forced value through the remaining len-1-p cells, so
    // every observed bit after the initial flush is that constant.
    let echo = &observed[len..];
    if echo.iter().all(|&b| b == echo[0]) {
        let stuck = echo[0];
        // Refine position: bits shifted BEFORE the wavefront reaches the
        // defect are already forced; the defect also forces the initial
        // zeros, so the earliest observed cycles are `stuck` too. The
        // number of leading cycles equal to the healthy image (all-0
        // prefix) reveals the distance from the defect to the scan-out:
        // cells downstream of the defect still deliver their original 0s
        // for (len-1-p) cycles when stuck==1.
        let position = if stuck {
            // After t clocks the forced value occupies positions
            // `p..p+t-1`; it reaches the scan-out cell (position len-1)
            // after `len-p` clocks, so the unload shows exactly `len-p`
            // leading original zeros: p = len - leading_zeros.
            let leading_zeros = observed.iter().take_while(|&&b| !b).count();
            len.saturating_sub(leading_zeros)
        } else {
            // Stuck-0 against an all-0 initial image carries no position
            // information from the flush alone; report the scan-in side
            // (industry practice: bound = "at or before first failing
            // cell", refined later by capture-based patterns).
            0
        };
        return Some(ChainDiagnosis {
            chain,
            position,
            defect: ChainDefect::StuckAt(stuck),
        });
    }
    // Inversion: echo equals the complemented pattern.
    let inverted: Vec<bool> = pattern[..len].iter().map(|&b| !b).collect();
    if echo == &inverted[..] {
        return Some(ChainDiagnosis {
            chain,
            position: 0, // flush alone cannot localize an inversion
            defect: ChainDefect::Inversion,
        });
    }
    // Unrecognized image: report as stuck at the majority value.
    let ones = echo.iter().filter(|&&b| b).count();
    Some(ChainDiagnosis {
        chain,
        position: 0,
        defect: ChainDefect::StuckAt(ones * 2 > echo.len()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::shift_register;
    use dft_scan::{insert_scan, ScanConfig};

    fn setup() -> ScanInsertion {
        let nl = shift_register(12);
        insert_scan(&nl, &ScanConfig { num_chains: 1 })
    }

    fn flush_vec(len: usize) -> Vec<bool> {
        (0..2 * len).map(|t| (t / 2) % 2 == 1).collect()
    }

    #[test]
    fn healthy_chain_reports_none() {
        let scan = setup();
        let len = scan.chains[0].len();
        let pattern = flush_vec(len);
        let image = flush_unload(&scan, 0, None, &pattern);
        assert!(diagnose_chain(&scan, 0, &image, &pattern).is_none());
    }

    #[test]
    fn stuck_one_cell_is_localized() {
        let scan = setup();
        let len = scan.chains[0].len();
        let pattern = flush_vec(len);
        for pos in 0..len {
            let image = flush_unload(&scan, 0, Some((pos, ChainDefect::StuckAt(true))), &pattern);
            let d = diagnose_chain(&scan, 0, &image, &pattern)
                .unwrap_or_else(|| panic!("defect at {pos} not flagged"));
            assert_eq!(d.defect, ChainDefect::StuckAt(true));
            assert_eq!(d.position, pos, "stuck-1 localization at {pos}");
        }
    }

    #[test]
    fn stuck_zero_is_flagged_with_scanin_bound() {
        let scan = setup();
        let len = scan.chains[0].len();
        let pattern = flush_vec(len);
        let image = flush_unload(&scan, 0, Some((5, ChainDefect::StuckAt(false))), &pattern);
        let d = diagnose_chain(&scan, 0, &image, &pattern).expect("flagged");
        assert_eq!(d.defect, ChainDefect::StuckAt(false));
    }

    #[test]
    fn inversion_is_recognized() {
        let scan = setup();
        let len = scan.chains[0].len();
        let pattern = flush_vec(len);
        let image = flush_unload(&scan, 0, Some((3, ChainDefect::Inversion)), &pattern);
        let d = diagnose_chain(&scan, 0, &image, &pattern).expect("flagged");
        assert_eq!(d.defect, ChainDefect::Inversion);
    }
}
