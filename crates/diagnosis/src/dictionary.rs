//! Fault-dictionary (cause-effect) diagnosis.
//!
//! The historical alternative to effect-cause: pre-simulate every fault
//! against the production pattern set and store each fault's *signature*
//! (its set of failing patterns). Diagnosis is then a lookup. Dictionaries
//! give instant, high-quality matches but their size scales as
//! `faults x patterns` (the reason industry moved to effect-cause for
//! volume diagnosis) — both properties are measurable here.

use std::collections::HashMap;

use dft_fault::Fault;
use dft_logicsim::{FaultSim, PatternSet};
use dft_netlist::Netlist;

use crate::FailureLog;

/// A pass/fail fault dictionary.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    faults: Vec<Fault>,
    /// Failing-pattern list per fault (sorted).
    signatures: Vec<Vec<u32>>,
    /// Pattern count the dictionary was built for.
    patterns: usize,
    /// Exact-signature index.
    index: HashMap<Vec<u32>, Vec<usize>>,
}

impl FaultDictionary {
    /// Pre-simulates `universe` against `patterns` (no fault dropping)
    /// and builds the dictionary.
    pub fn build(nl: &Netlist, patterns: &PatternSet, universe: Vec<Fault>) -> FaultDictionary {
        let sim = FaultSim::new(nl);
        let signatures = sim.detection_matrix(patterns, &universe);
        let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for (i, sig) in signatures.iter().enumerate() {
            index.entry(sig.clone()).or_default().push(i);
        }
        FaultDictionary {
            faults: universe,
            signatures,
            patterns: patterns.len(),
            index,
        }
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Storage cost of the pass/fail dictionary in bits
    /// (`faults x patterns` — the classic blowup figure).
    pub fn size_bits(&self) -> u64 {
        self.faults.len() as u64 * self.patterns as u64
    }

    /// Looks up a failure log: returns the faults whose signature matches
    /// the observed failing-pattern set exactly, or — when no exact entry
    /// exists — the entries at minimum symmetric-difference distance.
    /// The second tuple element is that distance (0 = exact).
    pub fn lookup(&self, log: &FailureLog) -> (Vec<Fault>, usize) {
        let mut observed: Vec<u32> = log.fails.iter().map(|f| f.pattern).collect();
        observed.sort_unstable();
        observed.dedup();
        if let Some(hits) = self.index.get(&observed) {
            return (hits.iter().map(|&i| self.faults[i]).collect(), 0);
        }
        // Nearest-match fallback.
        let mut best_d = usize::MAX;
        let mut best: Vec<Fault> = Vec::new();
        for (i, sig) in self.signatures.iter().enumerate() {
            let d = symmetric_difference(sig, &observed);
            if d < best_d {
                best_d = d;
                best.clear();
                best.push(self.faults[i]);
            } else if d == best_d {
                best.push(self.faults[i]);
            }
        }
        (best, best_d)
    }
}

/// |a Δ b| for sorted slices.
fn symmetric_difference(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut d) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                d += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                d += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    d + (a.len() - i) + (b.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_failure_log;
    use dft_fault::universe_stuck_at;
    use dft_netlist::generators::{c17, mac_pe};

    #[test]
    fn exact_lookup_finds_injected_fault() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 48, 0xD1C);
        let universe = universe_stuck_at(&nl);
        let dict = FaultDictionary::build(&nl, &ps, universe.clone());
        for &defect in &universe {
            let log = build_failure_log(&nl, &ps, defect);
            if log.is_clean() {
                continue;
            }
            let (hits, dist) = dict.lookup(&log);
            assert_eq!(dist, 0, "{defect}: expected an exact entry");
            assert!(hits.contains(&defect), "{defect} missing from {hits:?}");
        }
    }

    #[test]
    fn equivalent_faults_share_entries() {
        // Faults in one equivalence class have identical signatures and
        // must land in the same dictionary bucket.
        use dft_fault::collapse_equivalent;
        let nl = c17();
        let ps = PatternSet::random(&nl, 48, 0xD1D);
        let universe = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &universe);
        let dict = FaultDictionary::build(&nl, &ps, universe.clone());
        for &f in universe.iter().take(20) {
            let rep = col.representative(f);
            if rep == f {
                continue;
            }
            let log = build_failure_log(&nl, &ps, f);
            if log.is_clean() {
                continue;
            }
            let (hits, _) = dict.lookup(&log);
            assert!(hits.contains(&rep), "class mates split: {f} vs {rep}");
        }
    }

    #[test]
    fn nearest_match_degrades_gracefully() {
        // A log corrupted by one extra failing pattern still resolves to
        // the right neighborhood.
        let nl = c17();
        let ps = PatternSet::random(&nl, 48, 0xD1E);
        let universe = universe_stuck_at(&nl);
        let dict = FaultDictionary::build(&nl, &ps, universe.clone());
        let defect = universe[7];
        let mut log = build_failure_log(&nl, &ps, defect);
        if log.is_clean() {
            return;
        }
        // Corrupt: add a phantom failing pattern index not already there.
        let phantom = (0..48u32)
            .find(|p| !log.fails.iter().any(|f| f.pattern == *p))
            .unwrap();
        log.fails.push(crate::PatternFail {
            pattern: phantom,
            failing_sinks: vec![0],
        });
        let (hits, dist) = dict.lookup(&log);
        assert!(dist >= 1);
        assert!(
            hits.contains(&defect) || dist <= 2,
            "corrupted log resolved too far: dist {dist}"
        );
    }

    #[test]
    fn dictionary_size_blowup_is_measurable() {
        let nl = mac_pe(4);
        let ps = PatternSet::random(&nl, 128, 1);
        let universe = universe_stuck_at(&nl);
        let n_faults = universe.len();
        let dict = FaultDictionary::build(&nl, &ps, universe);
        assert_eq!(dict.size_bits(), n_faults as u64 * 128);
        assert!(!dict.is_empty());
        assert_eq!(dict.len(), n_faults);
    }
}
