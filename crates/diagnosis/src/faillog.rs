//! Failure logs: the tester-side artifact consumed by diagnosis.

use serde::{Deserialize, Serialize};

use dft_fault::Fault;
use dft_logicsim::{FaultSim, PatternSet};
use dft_netlist::Netlist;

/// One failing pattern: which observation points (combinational sinks, in
/// [`Netlist::combinational_sinks`] order) miscompared.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternFail {
    /// Index of the failing pattern in the applied set.
    pub pattern: u32,
    /// Indices of the failing sinks, ascending.
    pub failing_sinks: Vec<u32>,
}

/// A tester failure log for one die.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailureLog {
    /// Failing patterns in application order. Patterns absent from the
    /// list passed.
    pub fails: Vec<PatternFail>,
}

impl FailureLog {
    /// `true` when the die passed every pattern.
    pub fn is_clean(&self) -> bool {
        self.fails.is_empty()
    }

    /// Total failing (pattern, sink) observations.
    pub fn num_observations(&self) -> usize {
        self.fails.iter().map(|f| f.failing_sinks.len()).sum()
    }

    /// The union of failing sink indices across all patterns.
    pub fn failing_sink_union(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .fails
            .iter()
            .flat_map(|f| f.failing_sinks.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Serializes to JSON (the interchange format).
    ///
    /// # Panics
    ///
    /// Never panics for this type (no non-string map keys or non-finite
    /// floats).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("failure log serializes")
    }

    /// Parses a JSON failure log.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> Result<FailureLog, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Simulates `defect` against `patterns` and records every miscompare —
/// the synthetic equivalent of a tester datalog (production logs are
/// proprietary; see DESIGN.md substitutions).
pub fn build_failure_log(nl: &Netlist, patterns: &PatternSet, defect: Fault) -> FailureLog {
    let sim = FaultSim::new(nl);
    let good_sim = sim.good_sim();
    let mut fails = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        let good = good_sim.simulate(p);
        let faulty = sim.faulty_response(p, defect);
        let failing: Vec<u32> = good
            .iter()
            .zip(&faulty)
            .enumerate()
            .filter(|(_, (g, f))| g != f)
            .map(|(s, _)| s as u32)
            .collect();
        if !failing.is_empty() {
            fails.push(PatternFail {
                pattern: i as u32,
                failing_sinks: failing,
            });
        }
    }
    FailureLog { fails }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::c17;

    #[test]
    fn log_round_trips_through_json() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 16, 3);
        let g10 = nl.find("G10").unwrap();
        let log = build_failure_log(&nl, &ps, Fault::stuck_at_output(g10, true));
        assert!(!log.is_clean());
        let json = log.to_json();
        let back = FailureLog::from_json(&json).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn undetectable_fault_gives_clean_log() {
        let nl = c17();
        let mut ps = PatternSet::new(5);
        ps.push(vec![true; 5]); // single pattern that misses most faults
        // Find a fault this pattern does not detect.
        let sim = FaultSim::new(&nl);
        let fault = dft_fault::universe_stuck_at(&nl)
            .into_iter()
            .find(|&f| !sim.detects(ps.pattern(0), f))
            .expect("some fault undetected by a single pattern");
        let log = build_failure_log(&nl, &ps, fault);
        assert!(log.is_clean());
    }

    #[test]
    fn observations_match_detection() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 32, 9);
        let sim = FaultSim::new(&nl);
        for &fault in dft_fault::universe_stuck_at(&nl).iter().take(10) {
            let log = build_failure_log(&nl, &ps, fault);
            let failing: Vec<u32> = log.fails.iter().map(|f| f.pattern).collect();
            for (i, p) in ps.iter().enumerate() {
                assert_eq!(
                    failing.contains(&(i as u32)),
                    sim.detects(p, fault),
                    "{fault} pattern {i}"
                );
            }
        }
    }

    #[test]
    fn sink_union_sorted_unique() {
        let log = FailureLog {
            fails: vec![
                PatternFail {
                    pattern: 0,
                    failing_sinks: vec![3, 1],
                },
                PatternFail {
                    pattern: 2,
                    failing_sinks: vec![1, 5],
                },
            ],
        };
        assert_eq!(log.failing_sink_union(), vec![1, 3, 5]);
        assert_eq!(log.num_observations(), 4);
    }
}
