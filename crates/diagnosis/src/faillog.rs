//! Failure logs: the tester-side artifact consumed by diagnosis.

use std::error::Error;
use std::fmt;

use dft_fault::Fault;
use dft_logicsim::{FaultSim, PatternSet};
use dft_netlist::Netlist;

/// One failing pattern: which observation points (combinational sinks, in
/// [`Netlist::combinational_sinks`] order) miscompared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternFail {
    /// Index of the failing pattern in the applied set.
    pub pattern: u32,
    /// Indices of the failing sinks, ascending.
    pub failing_sinks: Vec<u32>,
}

/// A tester failure log for one die.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureLog {
    /// Failing patterns in application order. Patterns absent from the
    /// list passed.
    pub fails: Vec<PatternFail>,
}

/// A malformed failure-log JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for JsonError {}

impl FailureLog {
    /// `true` when the die passed every pattern.
    pub fn is_clean(&self) -> bool {
        self.fails.is_empty()
    }

    /// Total failing (pattern, sink) observations.
    pub fn num_observations(&self) -> usize {
        self.fails.iter().map(|f| f.failing_sinks.len()).sum()
    }

    /// The union of failing sink indices across all patterns.
    pub fn failing_sink_union(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .fails
            .iter()
            .flat_map(|f| f.failing_sinks.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Serializes to JSON (the interchange format).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"fails\": [");
        for (i, fail) in self.fails.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"pattern\": ");
            out.push_str(&fail.pattern.to_string());
            out.push_str(",\n      \"failing_sinks\": [");
            for (j, s) in fail.failing_sinks.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&s.to_string());
            }
            out.push_str("]\n    }");
        }
        if !self.fails.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Parses a JSON failure log.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed token.
    pub fn from_json(s: &str) -> Result<FailureLog, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let log = p.parse_log()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(log)
    }
}

/// Minimal recursive-descent parser for the failure-log schema. The
/// interchange format is a fixed shape (`{"fails": [{"pattern": n,
/// "failing_sinks": [n, ...]}, ...]}`), so a schema-directed parser is
/// both smaller and stricter than a generic JSON reader.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_key(&mut self, key: &str) -> Result<(), JsonError> {
        self.skip_ws();
        let quoted = format!("\"{key}\"");
        if self.bytes[self.pos..].starts_with(quoted.as_bytes()) {
            self.pos += quoted.len();
            self.expect(b':')
        } else {
            Err(self.err(format!("expected key {quoted}")))
        }
    }

    fn parse_u32(&mut self) -> Result<u32, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a non-negative integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| self.err("integer out of range for u32"))
    }

    fn parse_u32_array(&mut self) -> Result<Vec<u32>, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_u32()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_fail(&mut self) -> Result<PatternFail, JsonError> {
        self.expect(b'{')?;
        self.expect_key("pattern")?;
        let pattern = self.parse_u32()?;
        self.expect(b',')?;
        self.expect_key("failing_sinks")?;
        let failing_sinks = self.parse_u32_array()?;
        self.expect(b'}')?;
        Ok(PatternFail {
            pattern,
            failing_sinks,
        })
    }

    fn parse_log(&mut self) -> Result<FailureLog, JsonError> {
        self.expect(b'{')?;
        self.expect_key("fails")?;
        self.expect(b'[')?;
        let mut fails = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
        } else {
            loop {
                fails.push(self.parse_fail()?);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected `,` or `]` in fails array")),
                }
            }
        }
        self.expect(b'}')?;
        Ok(FailureLog { fails })
    }
}

/// Simulates `defect` against `patterns` and records every miscompare —
/// the synthetic equivalent of a tester datalog (production logs are
/// proprietary; see DESIGN.md substitutions).
pub fn build_failure_log(nl: &Netlist, patterns: &PatternSet, defect: Fault) -> FailureLog {
    let sim = FaultSim::new(nl);
    let good_sim = sim.good_sim();
    let mut fails = Vec::new();
    for (i, p) in patterns.iter().enumerate() {
        let good = good_sim.simulate(p);
        let faulty = sim.faulty_response(p, defect);
        let failing: Vec<u32> = good
            .iter()
            .zip(&faulty)
            .enumerate()
            .filter(|(_, (g, f))| g != f)
            .map(|(s, _)| s as u32)
            .collect();
        if !failing.is_empty() {
            fails.push(PatternFail {
                pattern: i as u32,
                failing_sinks: failing,
            });
        }
    }
    FailureLog { fails }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::c17;

    #[test]
    fn log_round_trips_through_json() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 16, 3);
        let g10 = nl.find("G10").unwrap();
        let log = build_failure_log(&nl, &ps, Fault::stuck_at_output(g10, true));
        assert!(!log.is_clean());
        let json = log.to_json();
        let back = FailureLog::from_json(&json).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn empty_log_round_trips() {
        let log = FailureLog::default();
        assert_eq!(FailureLog::from_json(&log.to_json()).unwrap(), log);
    }

    #[test]
    fn malformed_json_reports_position() {
        let err = FailureLog::from_json("{\"fails\": [{\"pattern\": }]}").unwrap_err();
        assert!(err.to_string().contains("integer"), "{err}");
        assert!(FailureLog::from_json("").is_err());
        assert!(FailureLog::from_json("{\"fails\": []} extra").is_err());
    }

    #[test]
    fn undetectable_fault_gives_clean_log() {
        let nl = c17();
        let mut ps = PatternSet::new(5);
        ps.push(vec![true; 5]); // single pattern that misses most faults
                                // Find a fault this pattern does not detect.
        let sim = FaultSim::new(&nl);
        let fault = dft_fault::universe_stuck_at(&nl)
            .into_iter()
            .find(|&f| !sim.detects(ps.pattern(0), f))
            .expect("some fault undetected by a single pattern");
        let log = build_failure_log(&nl, &ps, fault);
        assert!(log.is_clean());
    }

    #[test]
    fn observations_match_detection() {
        let nl = c17();
        let ps = PatternSet::random(&nl, 32, 9);
        let sim = FaultSim::new(&nl);
        for &fault in dft_fault::universe_stuck_at(&nl).iter().take(10) {
            let log = build_failure_log(&nl, &ps, fault);
            let failing: Vec<u32> = log.fails.iter().map(|f| f.pattern).collect();
            for (i, p) in ps.iter().enumerate() {
                assert_eq!(
                    failing.contains(&(i as u32)),
                    sim.detects(p, fault),
                    "{fault} pattern {i}"
                );
            }
        }
    }

    #[test]
    fn sink_union_sorted_unique() {
        let log = FailureLog {
            fails: vec![
                PatternFail {
                    pattern: 0,
                    failing_sinks: vec![3, 1],
                },
                PatternFail {
                    pattern: 2,
                    failing_sinks: vec![1, 5],
                },
            ],
        };
        assert_eq!(log.failing_sink_union(), vec![1, 3, 5]);
        assert_eq!(log.num_observations(), 4);
    }
}
