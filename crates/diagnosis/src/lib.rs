//! Scan-based fault diagnosis (effect-cause with per-pattern matching).
//!
//! Volume diagnosis is how AI-chip vendors debug yield: the tester logs
//! which patterns failed at which scan cells, and diagnosis software maps
//! the log back to candidate defect locations. This crate implements the
//! standard flow:
//!
//! 1. [`FailureLog`] — the tester artifact (failing pattern, failing
//!    sinks), JSON-serializable for interchange.
//! 2. Structural candidate extraction — only nets whose fanout cone covers
//!    every failing observation point can explain a single defect.
//! 3. Per-pattern simulation scoring — each candidate stuck-at fault is
//!    simulated against every logged pattern; candidates are ranked by how
//!    exactly their predicted failures match the log (TFSF/TFSP/TPSF
//!    counts, in the literature's terminology).
//!
//! # Example
//!
//! ```
//! use dft_netlist::generators::c17;
//! use dft_fault::Fault;
//! use dft_logicsim::PatternSet;
//! use dft_diagnosis::{build_failure_log, diagnose};
//!
//! let nl = c17();
//! let patterns = PatternSet::random(&nl, 32, 7);
//! let defect = Fault::stuck_at_output(nl.find("G10").unwrap(), false);
//! let log = build_failure_log(&nl, &patterns, defect);
//! let candidates = diagnose(&nl, &patterns, &log, 5);
//! assert_eq!(candidates[0].fault.site.net(&nl), defect.site.net(&nl));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod chain;
mod dictionary;
mod faillog;
mod score;

pub use bridge::{build_bridge_failure_log, diagnose_bridges, BridgeCandidate};
pub use chain::{diagnose_chain, flush_unload, ChainDefect, ChainDiagnosis};
pub use dictionary::FaultDictionary;
pub use faillog::{build_failure_log, FailureLog, JsonError, PatternFail};
pub use score::{diagnose, diagnose_universe, Candidate};
