//! Generic framed, checksummed journal records.
//!
//! The `aidft-ckpt-v1` journal ([`crate::Journal`]) frames every record
//! as a `ckpt <format> <seq>` header, a line-oriented body, and an
//! `end <crc>` trailer whose FNV-1a checksum covers everything above it.
//! That framing is useful beyond ATPG state — the serve fleet journal
//! (`aidft-serve-v2`) needs exactly the same torn-tail-tolerant,
//! append-only durability — so the format-agnostic half lives here:
//! frame a body, validate a candidate record, and scan a journal file
//! newest-first for the latest record that checks out.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::journal::{fnv1a, CkptError};

/// Frames `body` (newline-terminated lines, no header/trailer) as one
/// journal record for `format`: `ckpt <format> <seq>` header, the body,
/// and the `end <crc>` trailer. The result is what
/// [`FramedJournal::append`] writes and [`parse_framed`] validates.
pub fn frame_record(format: &str, seq: u64, body: &str) -> String {
    let mut text = format!("ckpt {format} {seq}\n");
    text.push_str(body);
    if !body.is_empty() && !body.ends_with('\n') {
        text.push('\n');
    }
    let crc = fnv1a(text.as_bytes());
    text.push_str(&format!("end {crc:016x}\n"));
    text
}

/// Validates one framed record (header line through `end`) against
/// `format` and returns `(seq, body)` — the lines between header and
/// trailer. `None` on any framing, header, or checksum problem: a bad
/// record is treated as absent, never fatal.
pub fn parse_framed(text: &str, format: &str) -> Option<(u64, String)> {
    let end_pos = text.rfind("\nend ")?;
    let framed = &text[..end_pos + 1];
    let crc_line = text[end_pos + 1..].lines().next()?;
    let crc = u64::from_str_radix(crc_line.strip_prefix("end ")?.trim(), 16).ok()?;
    if fnv1a(framed.as_bytes()) != crc {
        return None;
    }
    let (header, body) = framed.split_once('\n')?;
    let mut h = header.split_whitespace();
    if h.next()? != "ckpt" || h.next()? != format {
        return None;
    }
    let seq: u64 = h.next()?.parse().ok()?;
    Some((seq, body.to_owned()))
}

/// `true` when the file at `path` ends mid-line (a torn tail from a
/// crash or injected write failure): the next record must be preceded
/// by a newline so its header starts at a line boundary and stays
/// visible to the newest-first scan.
pub(crate) fn needs_realignment(path: &Path) -> io::Result<bool> {
    let mut f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if f.metadata()?.len() == 0 {
        return Ok(false);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

/// Appends `record` (already framed) to the file at `path`, realigning
/// after a torn tail. When `torn` is set only the first half of the
/// record is written and a synthetic I/O error is returned — the chaos
/// hook that models a kill mid-write. Returns the bytes written.
pub(crate) fn append_record(path: &Path, record: &str, torn: bool) -> io::Result<u64> {
    let realign = needs_realignment(path)?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if realign {
        f.write_all(b"\n")?;
    }
    if torn {
        f.write_all(&record.as_bytes()[..record.len() / 2])?;
        f.flush()?;
        return Err(io::Error::other("chaos: injected checkpoint write failure"));
    }
    f.write_all(record.as_bytes())?;
    f.flush()?;
    Ok(record.len() as u64)
}

/// Scans `text` newest-first for records of `format` and returns the
/// first one `parse` accepts. Torn tails and corrupt records are
/// skipped, exactly like [`crate::Journal::load_last`].
pub(crate) fn scan_last<T>(
    text: &str,
    format: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Option<T> {
    let header = format!("ckpt {format} ");
    let mut starts: Vec<usize> = Vec::new();
    let mut at = 0usize;
    while let Some(pos) = text[at..].find(&header) {
        let abs = at + pos;
        if abs == 0 || text.as_bytes()[abs - 1] == b'\n' {
            starts.push(abs);
        }
        at = abs + header.len();
    }
    for (i, &start) in starts.iter().enumerate().rev() {
        let end = starts.get(i + 1).copied().unwrap_or(text.len());
        if let Some(value) = parse(&text[start..end]) {
            return Some(value);
        }
    }
    None
}

/// Scans `text` oldest-first and returns *every* record of `format`
/// that `parse` accepts, in file order. Torn tails and corrupt records
/// are skipped silently, like [`scan_last`] — a journal is allowed to
/// carry damage, never to propagate it.
pub(crate) fn scan_all<T>(text: &str, format: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let header = format!("ckpt {format} ");
    let mut starts: Vec<usize> = Vec::new();
    let mut at = 0usize;
    while let Some(pos) = text[at..].find(&header) {
        let abs = at + pos;
        if abs == 0 || text.as_bytes()[abs - 1] == b'\n' {
            starts.push(abs);
        }
        at = abs + header.len();
    }
    starts
        .iter()
        .enumerate()
        .filter_map(|(i, &start)| {
            let end = starts.get(i + 1).copied().unwrap_or(text.len());
            parse(&text[start..end])
        })
        .collect()
}

/// An append-only journal of [`frame_record`]-framed records for one
/// format id. The generic counterpart of [`crate::Journal`]: same
/// torn-tail realignment on append, same newest-first recovery on load,
/// but the body is opaque text owned by the caller.
#[derive(Debug, Clone)]
pub struct FramedJournal {
    path: PathBuf,
    format: &'static str,
}

impl FramedJournal {
    /// A journal at `path` holding `format` records (created on first
    /// append).
    pub fn new(path: impl Into<PathBuf>, format: &'static str) -> FramedJournal {
        FramedJournal {
            path: path.into(),
            format,
        }
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The format id this journal frames records with.
    pub fn format(&self) -> &'static str {
        self.format
    }

    /// Appends one framed record; returns the bytes written.
    pub fn append(&self, seq: u64, body: &str) -> io::Result<u64> {
        append_record(&self.path, &frame_record(self.format, seq, body), false)
    }

    /// Chaos hook: appends only a torn prefix of the record, then
    /// returns an error. The previous record stays recoverable.
    pub fn append_torn(&self, seq: u64, body: &str) -> io::Result<u64> {
        append_record(&self.path, &frame_record(self.format, seq, body), true)
    }

    /// Loads *every* complete, checksum-valid record as `(seq, body)`,
    /// oldest-first. Torn or corrupt records in the middle are skipped;
    /// an empty result is not an error (the caller decides whether a
    /// record-free journal is a problem). This is the replay primitive
    /// for append-only event streams (e.g. the `aidft-telemetry-v1`
    /// journal), where checkpoint recovery wants the newest record but
    /// an auditor wants the whole history.
    pub fn load_all(&self) -> Result<Vec<(u64, String)>, CkptError> {
        let text = std::fs::read_to_string(&self.path).map_err(|e| CkptError::Io {
            path: self.path.display().to_string(),
            source: e,
        })?;
        Ok(scan_all(&text, self.format, |t| {
            parse_framed(t, self.format)
        }))
    }

    /// Loads the newest complete, checksum-valid record as
    /// `(seq, body)`. Torn tails and corrupt records are skipped; only
    /// a journal with *no* valid record is an error.
    pub fn load_last(&self) -> Result<(u64, String), CkptError> {
        let text = std::fs::read_to_string(&self.path).map_err(|e| CkptError::Io {
            path: self.path.display().to_string(),
            source: e,
        })?;
        scan_last(&text, self.format, |t| parse_framed(t, self.format)).ok_or_else(|| {
            CkptError::NoValidRecord {
                path: self.path.display().to_string(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aidft-framed-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn frame_and_parse_roundtrip() {
        let body = "dies 4\ndone 2\n";
        let text = frame_record("test-v1", 7, body);
        let (seq, back) = parse_framed(&text, "test-v1").expect("parses");
        assert_eq!(seq, 7);
        assert_eq!(back, body);
        // Wrong format id is rejected, as is any tampering.
        assert!(parse_framed(&text, "other-v1").is_none());
        assert!(parse_framed(&text.replace("done 2", "done 3"), "test-v1").is_none());
        assert!(parse_framed(&text[..text.len() / 2], "test-v1").is_none());
    }

    #[test]
    fn journal_recovers_newest_after_torn_tail() {
        let j = FramedJournal::new(temp("framed.ckpt"), "test-v1");
        j.append(0, "state a\n").unwrap();
        assert!(j.append_torn(1, "state b\n").is_err());
        assert_eq!(j.load_last().unwrap(), (0, "state a\n".to_owned()));
        // Realignment keeps the next record loadable.
        j.append(2, "state c\n").unwrap();
        assert_eq!(j.load_last().unwrap(), (2, "state c\n".to_owned()));
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn load_all_replays_history_and_skips_damage() {
        let j = FramedJournal::new(temp("framed-all.ckpt"), "test-v1");
        j.append(0, "a\n").unwrap();
        j.append(1, "b\n").unwrap();
        assert!(j.append_torn(2, "torn\n").is_err());
        j.append(3, "c\n").unwrap();
        let all = j.load_all().unwrap();
        assert_eq!(
            all,
            vec![
                (0, "a\n".to_owned()),
                (1, "b\n".to_owned()),
                (3, "c\n".to_owned()),
            ]
        );
        // load_last still sees only the newest; load_all agrees on it.
        assert_eq!(j.load_last().unwrap(), all.last().unwrap().clone());
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn empty_body_and_missing_newline_are_framed() {
        let (seq, body) = parse_framed(&frame_record("t", 0, ""), "t").unwrap();
        assert_eq!((seq, body.as_str()), (0, ""));
        let (_, body) = parse_framed(&frame_record("t", 1, "no newline"), "t").unwrap();
        assert_eq!(body, "no newline\n");
    }
}
