//! Generic framed, checksummed journal records.
//!
//! The `aidft-ckpt-v1` journal ([`crate::Journal`]) frames every record
//! as a `ckpt <format> <seq>` header, a line-oriented body, and an
//! `end <crc>` trailer whose FNV-1a checksum covers everything above it.
//! That framing is useful beyond ATPG state — the serve fleet journal
//! (`aidft-serve-v2`) needs exactly the same torn-tail-tolerant,
//! append-only durability — so the format-agnostic half lives here:
//! frame a body, validate a candidate record, and scan a journal file
//! newest-first for the latest record that checks out.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::chaos::ChaosConfig;
use crate::io_chaos::{self, ChaosWriter, DiskFault};
use crate::journal::{fnv1a, CkptError};
use crate::scrub::{self, ScrubEntry};

/// Frames `body` (newline-terminated lines, no header/trailer) as one
/// journal record for `format`: `ckpt <format> <seq>` header, the body,
/// and the `end <crc>` trailer. The result is what
/// [`FramedJournal::append`] writes and [`parse_framed`] validates.
pub fn frame_record(format: &str, seq: u64, body: &str) -> String {
    let mut text = format!("ckpt {format} {seq}\n");
    text.push_str(body);
    if !body.is_empty() && !body.ends_with('\n') {
        text.push('\n');
    }
    let crc = fnv1a(text.as_bytes());
    text.push_str(&format!("end {crc:016x}\n"));
    text
}

/// Validates one framed record (header line through `end`) against
/// `format` and returns `(seq, body)` — the lines between header and
/// trailer. `None` on any framing, header, or checksum problem: a bad
/// record is treated as absent, never fatal.
pub fn parse_framed(text: &str, format: &str) -> Option<(u64, String)> {
    let end_pos = text.rfind("\nend ")?;
    let framed = &text[..end_pos + 1];
    let crc_line = text[end_pos + 1..].lines().next()?;
    let crc = u64::from_str_radix(crc_line.strip_prefix("end ")?.trim(), 16).ok()?;
    if fnv1a(framed.as_bytes()) != crc {
        return None;
    }
    let (header, body) = framed.split_once('\n')?;
    let mut h = header.split_whitespace();
    if h.next()? != "ckpt" || h.next()? != format {
        return None;
    }
    let seq: u64 = h.next()?.parse().ok()?;
    Some((seq, body.to_owned()))
}

/// Reads a journal file as text, replacing invalid UTF-8 (a bit-rotted
/// byte can leave any bit pattern on disk) with U+FFFD so damage stays
/// localized to the record it struck: intact regions still verify
/// their checksums, instead of one bad byte failing the whole read.
pub(crate) fn read_text_lossy(path: &Path) -> io::Result<String> {
    Ok(String::from_utf8_lossy(&std::fs::read(path)?).into_owned())
}

/// The on-disk path of replica `replica`: replica 0 is the journal
/// itself, replica `r > 0` is `<path>.r<r>`, so a journal opened with
/// `--checkpoint-replicas 1` and one opened with more agree on where
/// the primary lives.
pub fn replica_path(path: &Path, replica: u32) -> PathBuf {
    if replica == 0 {
        path.to_path_buf()
    } else {
        let mut os = path.as_os_str().to_owned();
        os.push(format!(".r{replica}"));
        PathBuf::from(os)
    }
}

/// How a journal load arrived at its answer: which replica served the
/// winning record and how much damage the scan stepped over. A
/// degraded report is the signal the self-healing path acts on (scrub
/// metric, telemetry `storage` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Replica files that existed and were scanned.
    pub replicas_scanned: u32,
    /// Damaged (torn or checksum-failing) record regions stepped over
    /// across all scanned replicas.
    pub damaged: u64,
    /// Replica index the winning record was read from (0 = primary).
    pub source_replica: u32,
    /// Seq of the recovered record.
    pub seq: u64,
}

impl RecoveryReport {
    /// `true` when the load had to heal: damage was skipped or the
    /// primary could not serve the newest record itself.
    pub fn degraded(&self) -> bool {
        self.damaged > 0 || self.source_replica != 0
    }
}

/// `true` when the file at `path` ends mid-line (a torn tail from a
/// crash or injected write failure): the next record must be preceded
/// by a newline so its header starts at a line boundary and stays
/// visible to the newest-first scan.
pub(crate) fn needs_realignment(path: &Path) -> io::Result<bool> {
    let mut f = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    if f.metadata()?.len() == 0 {
        return Ok(false);
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    Ok(last[0] != b'\n')
}

/// Appends `record` (already framed) to one replica file, realigning
/// after a torn tail, with `fault` injected through the
/// [`ChaosWriter`] layer. When `torn` is set only the first half of
/// the record is written and a synthetic I/O error is returned — the
/// legacy `CkptIo` chaos hook that models a kill mid-write.
fn append_one(
    path: &Path,
    record: &str,
    torn: bool,
    fault: DiskFault,
    key: u64,
) -> io::Result<u64> {
    let realign = needs_realignment(path)?;
    let f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut w = ChaosWriter::new(f, fault, key, record.len() as u64);
    if realign {
        w.write_all(b"\n")?;
    }
    if torn {
        w.write_all(&record.as_bytes()[..record.len() / 2])?;
        w.flush()?;
        return Err(io::Error::other("chaos: injected checkpoint write failure"));
    }
    w.write_all(record.as_bytes())?;
    w.flush()?;
    Ok(record.len() as u64)
}

/// Appends `record` to every replica of the journal at `path`,
/// drawing an independent disk-fault decision per replica (ordinal
/// mixes `seq` with the replica index). The append succeeds when at
/// least one replica took the full record — that is the durability
/// contract replica fallback recovery restores from — and a success
/// also notes the record in the scrub-index sidecar. Returns the
/// record length, or the last per-replica error when every replica
/// failed.
pub(crate) fn append_replicated(
    path: &Path,
    record: &str,
    torn: bool,
    replicas: u32,
    chaos: &ChaosConfig,
    seq: u64,
) -> io::Result<u64> {
    let n = replicas.max(1);
    let mut ok = false;
    let mut last_err: Option<io::Error> = None;
    for r in 0..n {
        let ordinal = io_chaos::disk_ordinal(seq, r);
        let fault = if chaos.has_disk_faults() {
            io_chaos::decide(chaos, ordinal)
        } else {
            DiskFault::None
        };
        let key = io_chaos::fault_key(chaos, ordinal);
        match append_one(&replica_path(path, r), record, torn, fault, key) {
            Ok(_) => ok = true,
            Err(e) => last_err = Some(e),
        }
    }
    if ok {
        if let Some(entry) = ScrubEntry::for_record(seq, record) {
            scrub::note_append(path, &entry);
        }
        Ok(record.len() as u64)
    } else {
        Err(last_err
            .unwrap_or_else(|| io::Error::other("checkpoint append failed on every replica")))
    }
}

/// Splits `text` into candidate record regions for `header` (e.g.
/// `"ckpt aidft-serve-v2 "`): each region runs from one line-aligned
/// header occurrence to the next. Damage never hides a later record —
/// a torn or rotted region simply fails its parse while the regions
/// around it stand alone.
pub(crate) fn record_regions(text: &str, header: &str) -> Vec<(usize, usize)> {
    let mut starts: Vec<usize> = Vec::new();
    let mut at = 0usize;
    while let Some(pos) = text[at..].find(header) {
        let abs = at + pos;
        if abs == 0 || text.as_bytes()[abs - 1] == b'\n' {
            starts.push(abs);
        }
        at = abs + header.len();
    }
    starts
        .iter()
        .enumerate()
        .map(|(i, &start)| (start, starts.get(i + 1).copied().unwrap_or(text.len())))
        .collect()
}

/// Scans `text` oldest-first and returns *every* record of `format`
/// that `parse` accepts, in file order. Torn tails and corrupt records
/// are skipped silently, like [`scan_last`] — a journal is allowed to
/// carry damage, never to propagate it.
pub(crate) fn scan_all<T>(text: &str, format: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let header = format!("ckpt {format} ");
    record_regions(text, &header)
        .iter()
        .filter_map(|&(start, end)| parse(&text[start..end]))
        .collect()
}

/// Loads the newest intact record across every replica of the journal
/// at `path`. Per replica the newest parse-clean record wins (file
/// order, matching [`scan_last`]); across replicas the highest seq
/// wins, ties to the lowest replica index — so a rotted primary falls
/// back to an intact sibling instead of refusing. `parse` must return
/// the record's `(seq, value)`.
///
/// Error shape matches the single-file loaders: [`CkptError::Io`]
/// only when *no* replica file could be read at all,
/// [`CkptError::NoValidRecord`] when files exist but hold no intact
/// record of this format.
pub(crate) fn load_last_replicated<T>(
    path: &Path,
    format: &str,
    replicas: u32,
    parse: impl Fn(&str) -> Option<(u64, T)>,
) -> Result<(T, RecoveryReport), CkptError> {
    let header = format!("ckpt {format} ");
    let mut best: Option<(u64, u32, T)> = None;
    let mut damaged = 0u64;
    let mut scanned = 0u32;
    let mut primary_err: Option<io::Error> = None;
    for r in 0..replicas.max(1) {
        let text = match read_text_lossy(&replica_path(path, r)) {
            Ok(t) => t,
            Err(e) => {
                if r == 0 {
                    primary_err = Some(e);
                }
                continue;
            }
        };
        scanned += 1;
        let mut newest: Option<(u64, T)> = None;
        for &(start, end) in &record_regions(&text, &header) {
            match parse(&text[start..end]) {
                Some(v) => newest = Some(v),
                None => damaged += 1,
            }
        }
        if let Some((seq, value)) = newest {
            if best.as_ref().is_none_or(|(s, _, _)| seq > *s) {
                best = Some((seq, r, value));
            }
        }
    }
    if scanned == 0 {
        return Err(CkptError::Io {
            path: path.display().to_string(),
            source: primary_err
                .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no replica readable")),
        });
    }
    match best {
        Some((seq, replica, value)) => Ok((
            value,
            RecoveryReport {
                replicas_scanned: scanned,
                damaged,
                source_replica: replica,
                seq,
            },
        )),
        None => Err(CkptError::NoValidRecord {
            path: path.display().to_string(),
        }),
    }
}

/// An append-only journal of [`frame_record`]-framed records for one
/// format id. The generic counterpart of [`crate::Journal`]: same
/// torn-tail realignment on append, same newest-first recovery on load,
/// but the body is opaque text owned by the caller. Optionally writes
/// N-way replicas ([`FramedJournal::with_replicas`]) and injects
/// seeded disk faults ([`FramedJournal::with_disk_chaos`]).
#[derive(Debug, Clone)]
pub struct FramedJournal {
    path: PathBuf,
    format: &'static str,
    replicas: u32,
    chaos: ChaosConfig,
}

impl FramedJournal {
    /// A journal at `path` holding `format` records (created on first
    /// append), unreplicated and chaos-free.
    pub fn new(path: impl Into<PathBuf>, format: &'static str) -> FramedJournal {
        FramedJournal {
            path: path.into(),
            format,
            replicas: 1,
            chaos: ChaosConfig::disabled(),
        }
    }

    /// Writes every record to `n` replica files (`n` is clamped to at
    /// least 1); loads fall back to the newest intact record across
    /// them. Replica 0 is the journal path itself, replica `r` is
    /// `<path>.r<r>`.
    pub fn with_replicas(mut self, n: u32) -> FramedJournal {
        self.replicas = n.max(1);
        self
    }

    /// Routes every append through the disk-fault chaos layer driven
    /// by `chaos` (the `eio=`/`shortwrite=`/`bitrot=`/`fsync_fail=`
    /// knobs). Decisions are keyed per `(seq, replica)` so replicas
    /// fail independently.
    pub fn with_disk_chaos(mut self, chaos: ChaosConfig) -> FramedJournal {
        self.chaos = chaos;
        self
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The format id this journal frames records with.
    pub fn format(&self) -> &'static str {
        self.format
    }

    /// The configured replica count.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Appends one framed record to every replica; returns the bytes
    /// written. Succeeds when at least one replica took the record.
    pub fn append(&self, seq: u64, body: &str) -> io::Result<u64> {
        append_replicated(
            &self.path,
            &frame_record(self.format, seq, body),
            false,
            self.replicas,
            &self.chaos,
            seq,
        )
    }

    /// Chaos hook: appends only a torn prefix of the record, then
    /// returns an error. The previous record stays recoverable.
    pub fn append_torn(&self, seq: u64, body: &str) -> io::Result<u64> {
        append_replicated(
            &self.path,
            &frame_record(self.format, seq, body),
            true,
            self.replicas,
            &self.chaos,
            seq,
        )
    }

    /// Loads *every* complete, checksum-valid record as `(seq, body)`,
    /// oldest-first. Torn or corrupt records in the middle are skipped;
    /// an empty result is not an error (the caller decides whether a
    /// record-free journal is a problem). This is the replay primitive
    /// for append-only event streams (e.g. the `aidft-telemetry-v1`
    /// journal), where checkpoint recovery wants the newest record but
    /// an auditor wants the whole history. Replays the first readable
    /// replica (primary preferred) so history keeps its file order.
    pub fn load_all(&self) -> Result<Vec<(u64, String)>, CkptError> {
        let mut primary_err: Option<io::Error> = None;
        for r in 0..self.replicas {
            match read_text_lossy(&replica_path(&self.path, r)) {
                Ok(text) => {
                    return Ok(scan_all(&text, self.format, |t| {
                        parse_framed(t, self.format)
                    }))
                }
                Err(e) if r == 0 => primary_err = Some(e),
                Err(_) => {}
            }
        }
        Err(CkptError::Io {
            path: self.path.display().to_string(),
            source: primary_err
                .unwrap_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no replica readable")),
        })
    }

    /// Loads the newest complete, checksum-valid record as
    /// `(seq, body)`. Torn tails and corrupt records are skipped, and
    /// with replicas configured the newest intact record *anywhere*
    /// wins; only a journal with *no* valid record on any replica is
    /// an error.
    pub fn load_last(&self) -> Result<(u64, String), CkptError> {
        self.load_last_report().map(|(rec, _)| rec)
    }

    /// [`FramedJournal::load_last`] plus the [`RecoveryReport`]
    /// describing how hard the load had to work — the hook the
    /// self-healing path uses to record scrub repairs.
    pub fn load_last_report(&self) -> Result<((u64, String), RecoveryReport), CkptError> {
        load_last_replicated(&self.path, self.format, self.replicas, |t| {
            parse_framed(t, self.format).map(|(seq, body)| (seq, (seq, body)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aidft-framed-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn frame_and_parse_roundtrip() {
        let body = "dies 4\ndone 2\n";
        let text = frame_record("test-v1", 7, body);
        let (seq, back) = parse_framed(&text, "test-v1").expect("parses");
        assert_eq!(seq, 7);
        assert_eq!(back, body);
        // Wrong format id is rejected, as is any tampering.
        assert!(parse_framed(&text, "other-v1").is_none());
        assert!(parse_framed(&text.replace("done 2", "done 3"), "test-v1").is_none());
        assert!(parse_framed(&text[..text.len() / 2], "test-v1").is_none());
    }

    #[test]
    fn journal_recovers_newest_after_torn_tail() {
        let j = FramedJournal::new(temp("framed.ckpt"), "test-v1");
        j.append(0, "state a\n").unwrap();
        assert!(j.append_torn(1, "state b\n").is_err());
        assert_eq!(j.load_last().unwrap(), (0, "state a\n".to_owned()));
        // Realignment keeps the next record loadable.
        j.append(2, "state c\n").unwrap();
        assert_eq!(j.load_last().unwrap(), (2, "state c\n".to_owned()));
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn load_all_replays_history_and_skips_damage() {
        let j = FramedJournal::new(temp("framed-all.ckpt"), "test-v1");
        j.append(0, "a\n").unwrap();
        j.append(1, "b\n").unwrap();
        assert!(j.append_torn(2, "torn\n").is_err());
        j.append(3, "c\n").unwrap();
        let all = j.load_all().unwrap();
        assert_eq!(
            all,
            vec![
                (0, "a\n".to_owned()),
                (1, "b\n".to_owned()),
                (3, "c\n".to_owned()),
            ]
        );
        // load_last still sees only the newest; load_all agrees on it.
        assert_eq!(j.load_last().unwrap(), all.last().unwrap().clone());
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn replica_fallback_recovers_newest_intact() {
        let j = FramedJournal::new(temp("replicated.ckpt"), "test-v1").with_replicas(2);
        j.append(0, "state a\n").unwrap();
        j.append(1, "state b\n").unwrap();
        let r1 = replica_path(j.path(), 1);
        assert!(r1.exists(), "replica file written alongside primary");

        // Rot the whole primary: the load falls back to replica 1 and
        // reports the recovery as degraded.
        std::fs::write(j.path(), "garbage where a journal used to be\n").unwrap();
        let ((seq, body), report) = j.load_last_report().unwrap();
        assert_eq!((seq, body.as_str()), (1, "state b\n"));
        assert_eq!(report.source_replica, 1);
        assert!(report.degraded());

        // Even a *deleted* primary is survivable.
        std::fs::remove_file(j.path()).unwrap();
        assert_eq!(j.load_last().unwrap(), (1, "state b\n".to_owned()));
        assert_eq!(j.load_all().unwrap().len(), 2);

        // But losing every replica is a clean Io error.
        std::fs::remove_file(&r1).unwrap();
        assert!(matches!(j.load_last(), Err(CkptError::Io { .. })));
        let _ = std::fs::remove_file(crate::scrub::scrub_path(j.path()));
    }

    #[test]
    fn undamaged_replicated_load_is_not_degraded() {
        let j = FramedJournal::new(temp("replicated-clean.ckpt"), "test-v1").with_replicas(2);
        j.append(0, "state a\n").unwrap();
        let ((seq, _), report) = j.load_last_report().unwrap();
        assert_eq!(seq, 0);
        assert_eq!(report.replicas_scanned, 2);
        assert_eq!(report.damaged, 0);
        assert!(!report.degraded());
        std::fs::remove_file(j.path()).unwrap();
        std::fs::remove_file(replica_path(j.path(), 1)).unwrap();
        let _ = std::fs::remove_file(crate::scrub::scrub_path(j.path()));
    }

    #[test]
    fn disk_chaos_bitrot_corrupts_one_replica_detectably() {
        let chaos = crate::ChaosConfig::parse("bitrot=1.0,seed=5").unwrap();
        let j = FramedJournal::new(temp("rotted.ckpt"), "test-v1")
            .with_replicas(2)
            .with_disk_chaos(chaos);
        // bitrot=1.0 rots *every* replica: the append reports success
        // (silent corruption) but nothing intact survives.
        j.append(0, "state a\n").unwrap();
        assert!(matches!(
            j.load_last(),
            Err(CkptError::NoValidRecord { .. })
        ));

        // At a partial probability the replicas draw independently;
        // scan seeds until exactly one replica is rotted, then prove
        // the intact sibling serves the record.
        let partial = (0..64)
            .map(|s| crate::ChaosConfig::parse(&format!("bitrot=0.5,seed={s}")).unwrap())
            .find(|c| {
                let p = crate::io_chaos::decide(c, crate::io_chaos::disk_ordinal(0, 0));
                let r = crate::io_chaos::decide(c, crate::io_chaos::disk_ordinal(0, 1));
                (p == DiskFault::BitRot) != (r == DiskFault::BitRot)
            })
            .expect("some seed rots exactly one replica");
        let j2 = FramedJournal::new(temp("rotted-one.ckpt"), "test-v1")
            .with_replicas(2)
            .with_disk_chaos(partial);
        j2.append(0, "state a\n").unwrap();
        let ((seq, body), report) = j2.load_last_report().unwrap();
        assert_eq!((seq, body.as_str()), (0, "state a\n"));
        assert_eq!(report.damaged, 1, "the rotted copy is detected");
        for p in [
            j.path().to_path_buf(),
            replica_path(j.path(), 1),
            j2.path().to_path_buf(),
            replica_path(j2.path(), 1),
        ] {
            let _ = std::fs::remove_file(&p);
        }
        let _ = std::fs::remove_file(crate::scrub::scrub_path(j.path()));
        let _ = std::fs::remove_file(crate::scrub::scrub_path(j2.path()));
    }

    #[test]
    fn empty_body_and_missing_newline_are_framed() {
        let (seq, body) = parse_framed(&frame_record("t", 0, ""), "t").unwrap();
        assert_eq!((seq, body.as_str()), (0, ""));
        let (_, body) = parse_framed(&frame_record("t", 1, "no newline"), "t").unwrap();
        assert_eq!(body, "no newline\n");
    }
}
