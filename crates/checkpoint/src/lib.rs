//! `dft-checkpoint`: the durability layer of the aidft toolkit.
//!
//! Long DFT jobs (ATPG, fault simulation, BIST sweeps) die hours in on
//! real testers and server farms; this crate makes that failure a
//! first-class, recoverable event instead of a lost run. It has three
//! pieces, deliberately dependency-free so every other crate in the
//! workspace can use them:
//!
//! * [`CancelToken`] — cooperative cancellation with optional per-phase
//!   deadlines. Workers poll the token at batch boundaries and drain
//!   cleanly; nothing is ever interrupted mid-mutation.
//! * [`Journal`] / [`CkptState`] — the `aidft-ckpt-v1` append-only
//!   checkpoint journal. Each record is framed and checksummed, so a
//!   process killed mid-write leaves the previous record intact and
//!   [`Journal::load_last`] always recovers the newest *complete*
//!   checkpoint.
//! * [`ChaosConfig`] — the `AIDFT_CHAOS` fault-injection harness:
//!   seeded, deterministic decisions to panic a worker batch, delay a
//!   batch, fail a checkpoint write, or skip the deadline clock forward.
//!   The chaos test suite uses it to prove kill-at-any-point → resume →
//!   identical-output.
//!
//! The serialized state model ([`CkptState`]) is plain data (strings,
//! integers, bit vectors) so this crate stays at the bottom of the
//! dependency graph; the ATPG driver converts its working state to and
//! from it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod chaos;
mod framed;
pub mod fsck;
mod io_chaos;
mod journal;
pub mod scrub;

pub use cancel::CancelToken;
pub use chaos::{ChaosConfig, ChaosSite};
pub use framed::{frame_record, parse_framed, replica_path, FramedJournal, RecoveryReport};
pub use io_chaos::{decide as decide_disk_fault, disk_ordinal, ChaosWriter, DiskFault};
pub use journal::{
    fnv1a, CkptError, CkptPhase, CkptSection, CkptState, CkptStatus, Journal, CKPT_FORMAT,
};
