//! Cooperative cancellation with per-phase deadlines.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Why the token fired: 0 = not fired, 1 = explicit cancel (signal),
    /// 2 = deadline.
    cause: AtomicU64,
    /// Total [`CancelToken::poll`] calls, across all clones and threads.
    polls: AtomicU64,
    /// Test/chaos hook: the poll whose ordinal reaches this value trips
    /// the token (0 = disabled). Gives tests a deterministic kill point
    /// without wall clocks or signals.
    trip_at: AtomicU64,
    /// Chaos clock skew in nanoseconds, added to "now" when checking the
    /// deadline (simulates a tester clock jumping forward).
    skew_nanos: AtomicU64,
    /// Deadline for the current phase, if any. Read only on the coarse
    /// poll path, so a mutex is fine.
    deadline: Mutex<Option<Instant>>,
}

/// A cheap, cloneable cancellation token shared between a driver and its
/// workers.
///
/// Two observation tiers keep the hot paths hot:
///
/// * [`CancelToken::is_cancelled`] — one relaxed atomic load; safe to
///   call per fault in inner simulation loops.
/// * [`CancelToken::poll`] — additionally counts the poll, applies the
///   deterministic trip point, and checks the phase deadline. Called at
///   batch/fault boundaries (hundreds per second, not millions).
///
/// Cancellation is **cooperative and monotonic**: once fired the token
/// never un-fires, and every observer drains at its next boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

/// Cancellation cause, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    Explicit = 1,
    Deadline = 2,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token (idempotent). Signal handlers route here via a
    /// watcher thread; tests call it directly.
    pub fn cancel(&self) {
        self.inner
            .cause
            .compare_exchange(
                0,
                Cause::Explicit as u64,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .ok();
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// `true` once the token has fired. One relaxed load — usable in
    /// inner loops.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// `true` when the firing cause was a phase deadline rather than an
    /// explicit [`CancelToken::cancel`].
    pub fn deadline_exceeded(&self) -> bool {
        self.inner.cause.load(Ordering::SeqCst) == Cause::Deadline as u64
    }

    /// Arms a deadline `budget` from now. Observers see it on their next
    /// [`CancelToken::poll`]. Phases re-arm on entry; [`CancelToken::clear_deadline`]
    /// disarms between phases.
    pub fn arm_deadline(&self, budget: Duration) {
        *self.inner.deadline.lock().unwrap() = Some(Instant::now() + budget);
    }

    /// Disarms the phase deadline (a fired token stays fired).
    pub fn clear_deadline(&self) {
        *self.inner.deadline.lock().unwrap() = None;
    }

    /// Deterministic kill point for tests and the chaos harness: the
    /// `n`-th future call to [`CancelToken::poll`] (counting across all
    /// clones) trips the token. `n == 0` disables the hook.
    pub fn trip_after_polls(&self, n: u64) {
        let base = self.inner.polls.load(Ordering::SeqCst);
        self.inner
            .trip_at
            .store(if n == 0 { 0 } else { base + n }, Ordering::SeqCst);
    }

    /// Chaos hook: skips the deadline clock forward by `d` (the token
    /// behaves as if `d` of wall-clock time passed instantly).
    pub fn skip_clock(&self, d: Duration) {
        self.inner
            .skew_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// The coarse check: counts the poll, applies the deterministic trip
    /// point and the phase deadline, and returns [`CancelToken::is_cancelled`].
    /// Call at batch/fault boundaries.
    pub fn poll(&self) -> bool {
        let n = self.inner.polls.fetch_add(1, Ordering::SeqCst) + 1;
        let trip = self.inner.trip_at.load(Ordering::SeqCst);
        if trip != 0 && n >= trip {
            self.cancel();
            return true;
        }
        if let Some(deadline) = *self.inner.deadline.lock().unwrap() {
            let skew = Duration::from_nanos(self.inner.skew_nanos.load(Ordering::SeqCst));
            if Instant::now() + skew >= deadline {
                self.inner
                    .cause
                    .compare_exchange(
                        0,
                        Cause::Deadline as u64,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .ok();
                self.inner.cancelled.store(true, Ordering::SeqCst);
                return true;
            }
        }
        self.is_cancelled()
    }

    /// Polls performed so far (diagnostics; the chaos suite uses it to
    /// size randomized kill points).
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unfired_and_fires_idempotently() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.poll());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.poll());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(!t.deadline_exceeded());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn trip_after_polls_is_deterministic() {
        let t = CancelToken::new();
        t.trip_after_polls(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll());
        assert!(t.is_cancelled());
    }

    #[test]
    fn trip_point_counts_from_arming_time() {
        let t = CancelToken::new();
        t.poll();
        t.poll();
        t.trip_after_polls(2);
        assert!(!t.poll());
        assert!(t.poll());
    }

    #[test]
    fn deadline_fires_on_poll_and_reports_cause() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_secs(3600));
        assert!(!t.poll());
        // Skip the clock past the deadline instead of sleeping.
        t.skip_clock(Duration::from_secs(7200));
        assert!(t.poll());
        assert!(t.deadline_exceeded());
    }

    #[test]
    fn clear_deadline_disarms_before_firing() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_nanos(1));
        t.clear_deadline();
        std::thread::sleep(Duration::from_millis(2));
        assert!(!t.poll());
    }
}
