//! The `aidft-ckpt-v1` append-only checkpoint journal.
//!
//! A journal file is a sequence of framed, checksummed records. Each
//! record is a complete resumable snapshot; the file only ever grows, so
//! a process killed mid-write can at worst leave one *torn* record at
//! the tail. [`Journal::load_last`] scans records newest-first and
//! returns the newest record whose frame is complete and whose FNV-1a
//! checksum matches — torn tails and flipped bytes are skipped, never
//! fatal.
//!
//! Record grammar (line-oriented text; `\n` separators):
//!
//! ```text
//! ckpt aidft-ckpt-v1 <seq>
//! design <name>
//! config <hex16>            # caller-computed configuration hash
//! phase <init | topoff <round> | signoff>
//! seed <u64>
//! fill_seed <u64>
//! ordinal <u64>
//! random_detected <u64>
//! width <usize>             # pattern width in bits
//! section main
//! tally <untestable> <aborted> <escalated> <rescued>
//! status <compact codes>    # u / d<pattern> / x / a, comma-separated
//! npat <count>
//! pat <0/1 bits>            # one line per pattern
//! ncube <count>
//! cube <0/1/X bits>         # one line per cube
//! [section pre_compaction]  # optional second section, same layout
//! end <hex16>               # FNV-1a of every line above, incl. header
//! ```

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The on-disk format identifier; bump on any incompatible change.
pub const CKPT_FORMAT: &str = "aidft-ckpt-v1";

/// FNV-1a 64-bit hash (also used by callers to fingerprint their
/// configuration into [`CkptState::config_hash`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Per-fault resume status (a plain-data mirror of the fault-list
/// status, without the `dft-fault` dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptStatus {
    /// Not yet detected.
    #[default]
    Undetected,
    /// Detected; payload is the first-detecting pattern index.
    Detected(u32),
    /// Proven untestable.
    Untestable,
    /// Aborted at the effort limit.
    Aborted,
}

/// Where a resumed run picks up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptPhase {
    /// Nothing durable happened yet; resume re-runs from scratch.
    Init,
    /// Mid deterministic top-off, in compaction round `round`.
    Topoff(u32),
    /// Top-off and compaction complete; only sign-off simulation (and
    /// downstream compression) remain.
    Signoff,
}

/// One resumable snapshot of the mutable ATPG frontier: fault
/// partitions, the pattern set, and the deterministic cubes, plus the
/// top-off classification tally `[untestable, aborted, escalated,
/// rescued]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CkptSection {
    /// Per-collapsed-fault statuses, in fault-list order.
    pub statuses: Vec<CkptStatus>,
    /// Fully-specified patterns (random prefix + deterministic).
    pub patterns: Vec<Vec<bool>>,
    /// Deterministic cubes (`None` = don't-care bit).
    pub cubes: Vec<Vec<Option<bool>>>,
    /// `[untestable, aborted, escalated, rescued]` counters.
    pub tally: [u64; 4],
}

/// A complete `aidft-ckpt-v1` record: everything a run needs to resume
/// bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptState {
    /// Design name (resume refuses a mismatch).
    pub design: String,
    /// Caller-computed configuration fingerprint (resume refuses a
    /// mismatch — a resumed run must use the exact seed/limits of the
    /// original).
    pub config_hash: u64,
    /// Resume point.
    pub phase: CkptPhase,
    /// Base RNG seed of the run.
    pub seed: u64,
    /// Current cube-fill RNG state.
    pub fill_seed: u64,
    /// Per-fault trace-sampling ordinal.
    pub fault_ordinal: u64,
    /// Collapsed faults detected by the random phase (for reporting).
    pub random_detected: u64,
    /// Pattern width in bits.
    pub width: usize,
    /// The live frontier.
    pub main: CkptSection,
    /// Pre-compaction fallback snapshot, present only while a rebuilt
    /// pattern set is still on probation (top-off round ≥ 1).
    pub pre_compaction: Option<CkptSection>,
}

/// Why a journal could not produce a checkpoint.
#[derive(Debug)]
pub enum CkptError {
    /// The journal file could not be read.
    Io {
        /// Journal path.
        path: String,
        /// Underlying error.
        source: io::Error,
    },
    /// The file holds no complete, checksum-valid record.
    NoValidRecord {
        /// Journal path.
        path: String,
    },
    /// The resuming run's identity does not match the record.
    Mismatch {
        /// Which field disagreed (`design` or `config`).
        what: &'static str,
        /// Value in the checkpoint.
        expected: String,
        /// Value of the resuming run.
        found: String,
    },
    /// The journal holds zero intact records and cannot be repaired —
    /// corrupt beyond repair (`aidft fsck` exit code 5).
    Corrupt {
        /// Journal path.
        path: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, source } => write!(f, "read checkpoint {path}: {source}"),
            CkptError::NoValidRecord { path } => {
                write!(f, "{path}: no complete {CKPT_FORMAT} record")
            }
            CkptError::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {what} mismatch: checkpoint has `{expected}`, this run has `{found}`"
            ),
            CkptError::Corrupt { path } => {
                write!(f, "{path}: corrupt beyond repair (no intact record)")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CkptState {
    /// Refuses resume when `design`/`config_hash` disagree with this
    /// record.
    pub fn verify(&self, design: &str, config_hash: u64) -> Result<(), CkptError> {
        if self.design != design {
            return Err(CkptError::Mismatch {
                what: "design",
                expected: self.design.clone(),
                found: design.to_owned(),
            });
        }
        if self.config_hash != config_hash {
            return Err(CkptError::Mismatch {
                what: "config",
                expected: format!("{:016x}", self.config_hash),
                found: format!("{config_hash:016x}"),
            });
        }
        Ok(())
    }

    /// Renders the record (header through `end` line, trailing newline).
    pub fn to_record(&self, seq: u64) -> String {
        let mut body = String::new();
        body.push_str(&format!("ckpt {CKPT_FORMAT} {seq}\n"));
        body.push_str(&format!("design {}\n", self.design));
        body.push_str(&format!("config {:016x}\n", self.config_hash));
        match self.phase {
            CkptPhase::Init => body.push_str("phase init\n"),
            CkptPhase::Topoff(round) => body.push_str(&format!("phase topoff {round}\n")),
            CkptPhase::Signoff => body.push_str("phase signoff\n"),
        }
        body.push_str(&format!("seed {}\n", self.seed));
        body.push_str(&format!("fill_seed {}\n", self.fill_seed));
        body.push_str(&format!("ordinal {}\n", self.fault_ordinal));
        body.push_str(&format!("random_detected {}\n", self.random_detected));
        body.push_str(&format!("width {}\n", self.width));
        write_section(&mut body, "main", &self.main);
        if let Some(pre) = &self.pre_compaction {
            write_section(&mut body, "pre_compaction", pre);
        }
        let crc = fnv1a(body.as_bytes());
        body.push_str(&format!("end {crc:016x}\n"));
        body
    }

    /// Parses one record (header line through `end`). `None` on any
    /// framing, field, or checksum problem — the journal treats a bad
    /// record as absent, not fatal.
    pub fn parse_record(text: &str) -> Option<CkptState> {
        let end_pos = text.rfind("\nend ")?;
        let body = &text[..end_pos + 1];
        let crc_line = text[end_pos + 1..].lines().next()?;
        let crc = u64::from_str_radix(crc_line.strip_prefix("end ")?.trim(), 16).ok()?;
        if fnv1a(body.as_bytes()) != crc {
            return None;
        }
        let mut lines = body.lines();
        let header = lines.next()?;
        let mut h = header.split_whitespace();
        if h.next()? != "ckpt" || h.next()? != CKPT_FORMAT {
            return None;
        }
        let mut state = CkptState {
            design: String::new(),
            config_hash: 0,
            phase: CkptPhase::Init,
            seed: 0,
            fill_seed: 0,
            fault_ordinal: 0,
            random_detected: 0,
            width: 0,
            main: CkptSection::default(),
            pre_compaction: None,
        };
        let mut lines = lines.peekable();
        while let Some(line) = lines.next() {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "design" => state.design = rest.to_owned(),
                "config" => state.config_hash = u64::from_str_radix(rest, 16).ok()?,
                "phase" => {
                    state.phase = match rest.split_once(' ') {
                        Some(("topoff", round)) => CkptPhase::Topoff(round.parse().ok()?),
                        None if rest == "init" => CkptPhase::Init,
                        None if rest == "signoff" => CkptPhase::Signoff,
                        _ => return None,
                    }
                }
                "seed" => state.seed = rest.parse().ok()?,
                "fill_seed" => state.fill_seed = rest.parse().ok()?,
                "ordinal" => state.fault_ordinal = rest.parse().ok()?,
                "random_detected" => state.random_detected = rest.parse().ok()?,
                "width" => state.width = rest.parse().ok()?,
                "section" => {
                    let section = parse_section(&mut lines)?;
                    match rest {
                        "main" => state.main = section,
                        "pre_compaction" => state.pre_compaction = Some(section),
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        Some(state)
    }
}

fn write_section(out: &mut String, name: &str, s: &CkptSection) {
    out.push_str(&format!("section {name}\n"));
    out.push_str(&format!(
        "tally {} {} {} {}\n",
        s.tally[0], s.tally[1], s.tally[2], s.tally[3]
    ));
    let mut codes = String::with_capacity(s.statuses.len() * 2);
    for (i, st) in s.statuses.iter().enumerate() {
        if i > 0 {
            codes.push(',');
        }
        match st {
            CkptStatus::Undetected => codes.push('u'),
            CkptStatus::Detected(p) => codes.push_str(&format!("d{p}")),
            CkptStatus::Untestable => codes.push('x'),
            CkptStatus::Aborted => codes.push('a'),
        }
    }
    out.push_str(&format!("status {codes}\n"));
    out.push_str(&format!("npat {}\n", s.patterns.len()));
    for p in &s.patterns {
        out.push_str("pat ");
        out.extend(p.iter().map(|&b| if b { '1' } else { '0' }));
        out.push('\n');
    }
    out.push_str(&format!("ncube {}\n", s.cubes.len()));
    for c in &s.cubes {
        out.push_str("cube ");
        out.extend(c.iter().map(|b| match b {
            Some(true) => '1',
            Some(false) => '0',
            None => 'X',
        }));
        out.push('\n');
    }
}

fn parse_section<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
) -> Option<CkptSection> {
    let mut s = CkptSection::default();
    let tally_line = lines.next()?.strip_prefix("tally ")?;
    for (i, v) in tally_line.split_whitespace().enumerate() {
        if i >= 4 {
            return None;
        }
        s.tally[i] = v.parse().ok()?;
    }
    let codes = lines.next()?.strip_prefix("status ")?;
    if !codes.is_empty() {
        for code in codes.split(',') {
            s.statuses.push(match code {
                "u" => CkptStatus::Undetected,
                "x" => CkptStatus::Untestable,
                "a" => CkptStatus::Aborted,
                d => CkptStatus::Detected(d.strip_prefix('d')?.parse().ok()?),
            });
        }
    }
    let npat: usize = lines.next()?.strip_prefix("npat ")?.parse().ok()?;
    for _ in 0..npat {
        let bits = lines.next()?.strip_prefix("pat ")?;
        s.patterns
            .push(bits.chars().map(|c| c == '1').collect::<Vec<bool>>());
    }
    let ncube: usize = lines.next()?.strip_prefix("ncube ")?.parse().ok()?;
    for _ in 0..ncube {
        let bits = lines.next()?.strip_prefix("cube ")?;
        let mut cube = Vec::with_capacity(bits.len());
        for c in bits.chars() {
            cube.push(match c {
                '1' => Some(true),
                '0' => Some(false),
                'X' => None,
                _ => return None,
            });
        }
        s.cubes.push(cube);
    }
    Some(s)
}

/// Handle to an `aidft-ckpt-v1` journal file. Optionally writes N-way
/// replicas ([`Journal::with_replicas`]) and injects seeded disk
/// faults ([`Journal::with_disk_chaos`]), sharing the storage layer
/// with [`crate::FramedJournal`].
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
    replicas: u32,
    chaos: crate::ChaosConfig,
}

impl Journal {
    /// A journal at `path` (created on first append), unreplicated and
    /// chaos-free.
    pub fn new(path: impl Into<PathBuf>) -> Journal {
        Journal {
            path: path.into(),
            replicas: 1,
            chaos: crate::ChaosConfig::disabled(),
        }
    }

    /// Writes every record to `n` replica files (clamped to at least
    /// 1); loads fall back to the newest intact record across them.
    pub fn with_replicas(mut self, n: u32) -> Journal {
        self.replicas = n.max(1);
        self
    }

    /// Routes every append through the disk-fault chaos layer driven
    /// by `chaos` (the `eio=`/`shortwrite=`/`bitrot=`/`fsync_fail=`
    /// knobs), keyed per `(seq, replica)`.
    pub fn with_disk_chaos(mut self, chaos: crate::ChaosConfig) -> Journal {
        self.chaos = chaos;
        self
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one complete record; returns the bytes written.
    /// Torn-tail realignment is shared with [`crate::FramedJournal`],
    /// and with replicas configured the append succeeds when at least
    /// one replica took the full record.
    pub fn append(&self, state: &CkptState, seq: u64) -> io::Result<u64> {
        crate::framed::append_replicated(
            &self.path,
            &state.to_record(seq),
            false,
            self.replicas,
            &self.chaos,
            seq,
        )
    }

    /// Chaos hook: simulates a write failure by appending only a torn
    /// prefix of the record, then returning an error. The previous
    /// record stays recoverable — exactly what a kill mid-write leaves
    /// behind.
    pub fn append_torn(&self, state: &CkptState, seq: u64) -> io::Result<u64> {
        crate::framed::append_replicated(
            &self.path,
            &state.to_record(seq),
            true,
            self.replicas,
            &self.chaos,
            seq,
        )
    }

    /// Loads the newest complete, checksum-valid record. Torn tails and
    /// corrupt records are skipped, and with replicas configured the
    /// newest intact record on *any* replica wins; only a journal with
    /// no valid record anywhere is an error.
    pub fn load_last(&self) -> Result<CkptState, CkptError> {
        self.load_last_report().map(|(state, _)| state)
    }

    /// [`Journal::load_last`] plus the [`crate::RecoveryReport`]
    /// describing the damage the load stepped over and which replica
    /// served the record — any intact record resumes bit-identically,
    /// so a degraded report is an observability signal, not an error.
    pub fn load_last_report(&self) -> Result<(CkptState, crate::RecoveryReport), CkptError> {
        crate::framed::load_last_replicated(&self.path, CKPT_FORMAT, self.replicas, |t| {
            let state = CkptState::parse_record(t)?;
            let seq: u64 = t.lines().next()?.split_whitespace().nth(2)?.parse().ok()?;
            Some((seq, state))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> CkptState {
        CkptState {
            design: "mac4".into(),
            config_hash: 0xDEAD_BEEF_0BAD_F00D,
            phase: CkptPhase::Topoff(1),
            seed: 0x5EED,
            fill_seed: 42 + seq,
            fault_ordinal: 17,
            random_detected: 301,
            width: 5,
            main: CkptSection {
                statuses: vec![
                    CkptStatus::Undetected,
                    CkptStatus::Detected(7),
                    CkptStatus::Untestable,
                    CkptStatus::Aborted,
                ],
                patterns: vec![vec![true, false, true, true, false]],
                cubes: vec![vec![Some(true), None, Some(false), None, None]],
                tally: [1, 2, 3, 4],
            },
            pre_compaction: Some(CkptSection {
                statuses: vec![CkptStatus::Detected(0)],
                patterns: vec![vec![false; 5]],
                cubes: vec![],
                tally: [0, 0, 0, 0],
            }),
        }
    }

    #[test]
    fn record_roundtrip() {
        let s = sample(3);
        let text = s.to_record(3);
        let back = CkptState::parse_record(&text).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn checksum_rejects_bit_flips() {
        let text = sample(0).to_record(0);
        let tampered = text.replace("fill_seed 42", "fill_seed 43");
        assert!(CkptState::parse_record(&tampered).is_none());
        assert!(CkptState::parse_record(&text[..text.len() / 2]).is_none());
    }

    #[test]
    fn journal_returns_newest_valid_record() {
        let dir = std::env::temp_dir().join(format!("aidft-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = Journal::new(dir.join("newest.ckpt"));
        let _ = std::fs::remove_file(j.path());
        j.append(&sample(0), 0).unwrap();
        j.append(&sample(1), 1).unwrap();
        assert_eq!(j.load_last().unwrap().fill_seed, 43);
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn torn_tail_recovers_previous_record() {
        let dir = std::env::temp_dir().join(format!("aidft-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = Journal::new(dir.join("torn.ckpt"));
        let _ = std::fs::remove_file(j.path());
        j.append(&sample(0), 0).unwrap();
        assert!(j.append_torn(&sample(1), 1).is_err());
        // The torn record is skipped; the complete one survives.
        assert_eq!(j.load_last().unwrap().fill_seed, 42);
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn append_after_torn_tail_realigns_and_stays_visible() {
        // A torn tail ends mid-line; the next append must put its
        // header back on a line boundary or the new record would be
        // glued into the torn one and become unloadable.
        let dir = std::env::temp_dir().join(format!("aidft-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = Journal::new(dir.join("realign.ckpt"));
        let _ = std::fs::remove_file(j.path());
        assert!(j.append_torn(&sample(0), 0).is_err());
        assert!(j.append_torn(&sample(1), 1).is_err());
        j.append(&sample(2), 2).unwrap();
        assert_eq!(j.load_last().unwrap().fill_seed, 44);
        // And a torn tail *after* a realigned record still recovers it.
        assert!(j.append_torn(&sample(3), 3).is_err());
        assert_eq!(j.load_last().unwrap().fill_seed, 44);
        std::fs::remove_file(j.path()).unwrap();
    }

    #[test]
    fn empty_or_missing_journal_is_a_clean_error() {
        let j = Journal::new("/nonexistent/aidft.ckpt");
        assert!(matches!(j.load_last(), Err(CkptError::Io { .. })));
        let dir = std::env::temp_dir().join(format!("aidft-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("empty.ckpt");
        std::fs::write(&p, "garbage\n").unwrap();
        let j = Journal::new(&p);
        assert!(matches!(
            j.load_last(),
            Err(CkptError::NoValidRecord { .. })
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn verify_checks_design_and_config() {
        let s = sample(0);
        assert!(s.verify("mac4", 0xDEAD_BEEF_0BAD_F00D).is_ok());
        assert!(matches!(
            s.verify("sys2x2", 0xDEAD_BEEF_0BAD_F00D),
            Err(CkptError::Mismatch { what: "design", .. })
        ));
        assert!(matches!(
            s.verify("mac4", 1),
            Err(CkptError::Mismatch { what: "config", .. })
        ));
    }
}
