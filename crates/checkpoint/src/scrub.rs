//! The scrub-index sidecar: a cheap manifest of what a journal is
//! *supposed* to contain.
//!
//! Every successful journal append also appends one line to
//! `<journal>.scrub`:
//!
//! ```text
//! scrub <seq> <len> <crc16hex>
//! ```
//!
//! recording the record's seq, byte length, and the FNV-1a checksum
//! from its `end` trailer. The sidecar is advisory — journal recovery
//! never needs it — but `aidft fsck` cross-checks it to tell *silent*
//! damage (a record present in the index but failing its checksum on
//! disk, or missing entirely) from records that simply were never
//! written. Sidecar writes are best-effort: a full disk must never
//! fail the journal append that just succeeded.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One scrub-index line: the expected identity of a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubEntry {
    /// Record seq from the `ckpt` header.
    pub seq: u64,
    /// Full framed record length in bytes (header through trailer).
    pub len: u64,
    /// FNV-1a checksum from the record's `end` trailer.
    pub crc: u64,
}

impl ScrubEntry {
    /// Renders the sidecar line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!("scrub {} {} {:016x}", self.seq, self.len, self.crc)
    }

    /// Parses one sidecar line; `None` on any malformation (a damaged
    /// sidecar line is skipped, never fatal — the sidecar is advisory).
    pub fn parse_line(line: &str) -> Option<ScrubEntry> {
        let mut f = line.split_whitespace();
        if f.next()? != "scrub" {
            return None;
        }
        let entry = ScrubEntry {
            seq: f.next()?.parse().ok()?,
            len: f.next()?.parse().ok()?,
            crc: u64::from_str_radix(f.next()?, 16).ok()?,
        };
        f.next().is_none().then_some(entry)
    }

    /// Builds the entry for a fully-framed record (header through
    /// `end <crc>` trailer), reading the checksum out of the trailer.
    pub fn for_record(seq: u64, record: &str) -> Option<ScrubEntry> {
        let trailer = record.lines().next_back()?;
        let crc = u64::from_str_radix(trailer.strip_prefix("end ")?.trim(), 16).ok()?;
        Some(ScrubEntry {
            seq,
            len: record.len() as u64,
            crc,
        })
    }
}

/// The sidecar path for a journal: `<journal>.scrub`.
pub fn scrub_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_owned();
    os.push(".scrub");
    PathBuf::from(os)
}

/// Best-effort append of one entry to the journal's sidecar. Errors
/// are swallowed by design: the journal append already succeeded and
/// the sidecar must never turn that into a failure.
pub fn note_append(journal: &Path, entry: &ScrubEntry) {
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(scrub_path(journal))?;
        writeln!(f, "{}", entry.to_line())
    };
    let _ = write();
}

/// Reads the journal's scrub index, skipping damaged lines. A missing
/// sidecar is an empty index, not an error.
pub fn read_index(journal: &Path) -> Vec<ScrubEntry> {
    match std::fs::read(scrub_path(journal)) {
        Ok(bytes) => String::from_utf8_lossy(&bytes)
            .lines()
            .filter_map(ScrubEntry::parse_line)
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Rewrites the sidecar to exactly `entries` (used by `fsck --repair`
/// after truncating a journal to its intact records).
pub fn rewrite_index(journal: &Path, entries: &[ScrubEntry]) -> std::io::Result<()> {
    let mut text = String::new();
    for e in entries {
        text.push_str(&e.to_line());
        text.push('\n');
    }
    std::fs::write(scrub_path(journal), text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip_and_record_extraction() {
        let e = ScrubEntry {
            seq: 7,
            len: 42,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(ScrubEntry::parse_line(&e.to_line()), Some(e));
        assert!(ScrubEntry::parse_line("scrub 1 2").is_none());
        assert!(ScrubEntry::parse_line("other 1 2 3").is_none());

        let record = crate::frame_record("test-v1", 3, "body\n");
        let e = ScrubEntry::for_record(3, &record).unwrap();
        assert_eq!(e.seq, 3);
        assert_eq!(e.len, record.len() as u64);
        let trailer = record.lines().next_back().unwrap();
        assert_eq!(format!("end {:016x}", e.crc), trailer);
    }

    #[test]
    fn sidecar_appends_and_survives_damage() {
        let dir = std::env::temp_dir().join(format!("aidft-scrub-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("scrubbed.ckpt");
        let _ = std::fs::remove_file(scrub_path(&journal));

        assert!(read_index(&journal).is_empty());
        let a = ScrubEntry {
            seq: 0,
            len: 10,
            crc: 1,
        };
        let b = ScrubEntry {
            seq: 1,
            len: 20,
            crc: 2,
        };
        note_append(&journal, &a);
        note_append(&journal, &b);
        assert_eq!(read_index(&journal), vec![a, b]);

        // A torn sidecar line is skipped, not fatal.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(scrub_path(&journal))
            .unwrap();
        f.write_all(b"scrub 2 3").unwrap();
        drop(f);
        assert_eq!(read_index(&journal), vec![a, b]);
        std::fs::remove_file(scrub_path(&journal)).unwrap();
    }
}
