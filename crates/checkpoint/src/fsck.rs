//! Journal integrity checking and repair — the library behind
//! `aidft fsck`.
//!
//! Works on any of the three framed formats (`aidft-ckpt-v1`,
//! `aidft-serve-v2`, `aidft-telemetry-v1`): the format id is
//! autodetected from the first `ckpt <format> <seq>` header, every
//! candidate record region gets a [`RecordVerdict`] (intact, checksum
//! failure, or torn framing), and the verdicts are cross-checked
//! against the scrub-index sidecar when one exists. [`repair`]
//! rewrites the journal as a clean copy holding exactly the intact
//! records (re-framed canonically, temp-file + rename so a crash
//! mid-repair never loses the original), or refuses with
//! [`CkptError::Corrupt`] when nothing intact survives — the CLI maps
//! that to exit code 5.

use std::fmt::Write as _;
use std::path::Path;

use crate::framed::{frame_record, parse_framed, read_text_lossy, record_regions};
use crate::journal::CkptError;
use crate::scrub::{self, ScrubEntry};

/// What one candidate record region turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordStatus {
    /// Complete framing, checksum verified.
    Intact,
    /// Complete framing (`end <crc>` trailer present) but the checksum
    /// does not match — bit rot or in-place tampering.
    BadCrc,
    /// No complete trailer: a torn or short write.
    Torn,
}

impl RecordStatus {
    /// Short verdict token used in the rendered report.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecordStatus::Intact => "intact",
            RecordStatus::BadCrc => "bad-crc",
            RecordStatus::Torn => "torn",
        }
    }
}

/// The verdict for one candidate record region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordVerdict {
    /// Region index in file order.
    pub index: usize,
    /// Seq from the header line, when it parsed.
    pub seq: Option<u64>,
    /// Byte offset of the region in the (lossily decoded) file.
    pub offset: usize,
    /// Region length in bytes.
    pub len: usize,
    /// The verdict.
    pub status: RecordStatus,
}

/// The full `fsck` result for one journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The journal path.
    pub path: String,
    /// Autodetected format id, `None` when no header was found.
    pub format: Option<String>,
    /// Journal size in bytes.
    pub bytes: usize,
    /// Per-region verdicts, file order.
    pub records: Vec<RecordVerdict>,
    /// Scrub-index entries found in the sidecar.
    pub scrub_entries: usize,
    /// Scrub entries whose `(seq, crc)` matched an intact record.
    pub scrub_matched: usize,
    /// `true` when [`repair`] rewrote the file.
    pub repaired: bool,
}

impl FsckReport {
    /// Intact record count.
    pub fn intact(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == RecordStatus::Intact)
            .count()
    }

    /// Damaged (bad-crc or torn) record count.
    pub fn damaged(&self) -> usize {
        self.records.len() - self.intact()
    }

    /// Seq of the newest intact record, when any.
    pub fn newest_intact_seq(&self) -> Option<u64> {
        self.records
            .iter()
            .filter(|r| r.status == RecordStatus::Intact)
            .filter_map(|r| r.seq)
            .max()
    }

    /// `true` when every region is intact (an empty journal is clean —
    /// it simply has nothing to resume from).
    pub fn is_clean(&self) -> bool {
        self.damaged() == 0
    }

    /// Renders the line-oriented report (`fsck <path>` header, one
    /// `record` line per region, a `scrub` line when a sidecar exists,
    /// and the summary verdict line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fsck {} format={} bytes={}",
            self.path,
            self.format.as_deref().unwrap_or("unknown"),
            self.bytes
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "record {} seq={} offset={} len={} {}",
                r.index,
                r.seq.map_or_else(|| "?".to_owned(), |s| s.to_string()),
                r.offset,
                r.len,
                r.status.as_str()
            );
        }
        if self.scrub_entries > 0 {
            let _ = writeln!(
                out,
                "scrub entries={} matched={}",
                self.scrub_entries, self.scrub_matched
            );
        }
        let verdict = if self.records.is_empty() {
            "empty"
        } else if self.intact() == 0 {
            "corrupt-beyond-repair"
        } else if self.repaired {
            "repaired"
        } else if self.is_clean() {
            "clean"
        } else {
            "degraded"
        };
        let _ = writeln!(
            out,
            "summary intact={} damaged={} newest_seq={} verdict={}",
            self.intact(),
            self.damaged(),
            self.newest_intact_seq()
                .map_or_else(|| "-".to_owned(), |s| s.to_string()),
            verdict
        );
        out
    }
}

/// Autodetects the journal format from the first line-aligned
/// `ckpt <format> ` header in `text`.
fn detect_format(text: &str) -> Option<String> {
    let mut at = 0usize;
    while let Some(pos) = text[at..].find("ckpt ") {
        let abs = at + pos;
        if abs == 0 || text.as_bytes()[abs - 1] == b'\n' {
            let rest = &text[abs + 5..];
            let token: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
            if !token.is_empty() {
                return Some(token);
            }
        }
        at = abs + 5;
    }
    None
}

/// Classifies one region: intact if it parses, otherwise bad-crc when
/// a complete `end` trailer is present, torn when it is not.
fn classify(region: &str, format: &str) -> (Option<u64>, RecordStatus, Option<String>) {
    if let Some((seq, body)) = parse_framed(region, format) {
        return (Some(seq), RecordStatus::Intact, Some(body));
    }
    let seq = region
        .lines()
        .next()
        .and_then(|h| h.split_whitespace().nth(2))
        .and_then(|s| s.parse().ok());
    let has_trailer = region
        .rfind("\nend ")
        .and_then(|p| region[p + 1..].lines().next())
        .and_then(|l| l.strip_prefix("end "))
        .is_some_and(|hex| u64::from_str_radix(hex.trim(), 16).is_ok());
    let status = if has_trailer {
        RecordStatus::BadCrc
    } else {
        RecordStatus::Torn
    };
    (seq, status, None)
}

/// Scans the journal at `path` and returns the per-record verdicts.
/// Only an unreadable file is an error — a fully corrupt journal is a
/// report, and the caller decides whether zero intact records is
/// fatal.
pub fn scan(path: &Path) -> Result<FsckReport, CkptError> {
    let text = read_text_lossy(path).map_err(|e| CkptError::Io {
        path: path.display().to_string(),
        source: e,
    })?;
    let format = detect_format(&text);
    let mut records = Vec::new();
    let mut intact: Vec<(u64, String)> = Vec::new();
    if let Some(fmt) = &format {
        let header = format!("ckpt {fmt} ");
        for (i, &(start, end)) in record_regions(&text, &header).iter().enumerate() {
            let (seq, status, body) = classify(&text[start..end], fmt);
            if let (Some(s), Some(b)) = (seq, body) {
                intact.push((s, b));
            }
            records.push(RecordVerdict {
                index: i,
                seq,
                offset: start,
                len: end - start,
                status,
            });
        }
    }
    let scrub_index = scrub::read_index(path);
    let scrub_matched = scrub_index
        .iter()
        .filter(|e| {
            intact
                .iter()
                .any(|(s, b)| *s == e.seq && verify_scrub(e, format.as_deref(), *s, b))
        })
        .count();
    Ok(FsckReport {
        path: path.display().to_string(),
        format,
        bytes: text.len(),
        records,
        scrub_entries: scrub_index.len(),
        scrub_matched,
        repaired: false,
    })
}

/// `true` when re-framing `(seq, body)` reproduces the scrub entry's
/// length and checksum.
fn verify_scrub(entry: &ScrubEntry, format: Option<&str>, seq: u64, body: &str) -> bool {
    let Some(fmt) = format else { return false };
    let record = frame_record(fmt, seq, body);
    ScrubEntry::for_record(seq, &record).is_some_and(|e| e.len == entry.len && e.crc == entry.crc)
}

/// Repairs the journal at `path`: rewrites it as a clean copy holding
/// exactly the intact records, canonically re-framed, truncating any
/// torn or rotted regions, and regenerates the scrub-index sidecar to
/// match. The rewrite goes through a temp file and rename so a crash
/// mid-repair leaves the original untouched. A journal with zero
/// intact records is refused with [`CkptError::Corrupt`].
pub fn repair(path: &Path) -> Result<FsckReport, CkptError> {
    let before = scan(path)?;
    let Some(fmt) = before.format.clone() else {
        return Err(CkptError::Corrupt {
            path: path.display().to_string(),
        });
    };
    let text = read_text_lossy(path).map_err(|e| CkptError::Io {
        path: path.display().to_string(),
        source: e,
    })?;
    let header = format!("ckpt {fmt} ");
    let mut clean = String::new();
    let mut entries = Vec::new();
    for &(start, end) in &record_regions(&text, &header) {
        if let Some((seq, body)) = parse_framed(&text[start..end], &fmt) {
            let record = frame_record(&fmt, seq, &body);
            if let Some(e) = ScrubEntry::for_record(seq, &record) {
                entries.push(e);
            }
            clean.push_str(&record);
        }
    }
    if entries.is_empty() {
        return Err(CkptError::Corrupt {
            path: path.display().to_string(),
        });
    }
    let io_err = |e: std::io::Error| CkptError::Io {
        path: path.display().to_string(),
        source: e,
    };
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".fsck-tmp");
        std::path::PathBuf::from(os)
    };
    std::fs::write(&tmp, &clean).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)?;
    scrub::rewrite_index(path, &entries).map_err(io_err)?;
    let mut after = scan(path)?;
    after.repaired = true;
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framed::FramedJournal;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aidft-fsck-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(scrub::scrub_path(&p));
        p
    }

    #[test]
    fn clean_journal_scans_clean() {
        let j = FramedJournal::new(temp("clean.ckpt"), "test-v1");
        j.append(0, "a\n").unwrap();
        j.append(1, "b\n").unwrap();
        let r = scan(j.path()).unwrap();
        assert_eq!(r.format.as_deref(), Some("test-v1"));
        assert_eq!(r.intact(), 2);
        assert!(r.is_clean());
        assert_eq!(r.newest_intact_seq(), Some(1));
        assert_eq!(r.scrub_entries, 2);
        assert_eq!(r.scrub_matched, 2);
        assert!(r.render().contains("verdict=clean"));
    }

    #[test]
    fn damage_is_classified_and_repaired() {
        let j = FramedJournal::new(temp("damaged.ckpt"), "test-v1");
        j.append(0, "a\n").unwrap();
        j.append(1, "b\n").unwrap();
        assert!(j.append_torn(2, "torn\n").is_err());
        // Rot one byte of record 1's body in place.
        let mut bytes = std::fs::read(j.path()).unwrap();
        let pos = bytes
            .windows(3)
            .position(|w| w == b"\nb\n")
            .expect("body line present");
        bytes[pos + 1] ^= 0x01;
        std::fs::write(j.path(), &bytes).unwrap();

        let r = scan(j.path()).unwrap();
        assert_eq!(r.intact(), 1);
        assert_eq!(r.damaged(), 2);
        assert!(r.records.iter().any(|v| v.status == RecordStatus::BadCrc));
        assert!(r.records.iter().any(|v| v.status == RecordStatus::Torn));
        assert!(r.render().contains("verdict=degraded"));

        let repaired = repair(j.path()).unwrap();
        assert!(repaired.repaired);
        assert_eq!(repaired.intact(), 1);
        assert!(repaired.is_clean());
        // The repaired journal loads cleanly.
        assert_eq!(j.load_last().unwrap(), (0, "a\n".to_owned()));
        assert_eq!(scan(j.path()).unwrap().scrub_matched, 1);
    }

    #[test]
    fn zero_intact_records_is_corrupt_beyond_repair() {
        let p = temp("hopeless.ckpt");
        std::fs::write(&p, "ckpt test-v1 0\nbody with no trailer").unwrap();
        let r = scan(&p).unwrap();
        assert_eq!(r.intact(), 0);
        assert!(r.render().contains("verdict=corrupt-beyond-repair"));
        assert!(matches!(repair(&p), Err(CkptError::Corrupt { .. })));
        // The refused repair must not have touched the file.
        assert!(std::fs::read_to_string(&p).unwrap().contains("no trailer"));

        // A file with no header at all is equally hopeless.
        std::fs::write(&p, "not a journal\n").unwrap();
        let r = scan(&p).unwrap();
        assert_eq!(r.format, None);
        assert!(matches!(repair(&p), Err(CkptError::Corrupt { .. })));
    }
}
