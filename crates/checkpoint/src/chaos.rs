//! The `AIDFT_CHAOS` fault-injection harness.
//!
//! Chaos decisions are **deterministic**: whether injection point
//! `(site, ordinal)` fires is a pure function of the configured seed, so
//! a chaos run can be replayed exactly and per-site ordinals that are
//! stable across thread counts (e.g. fault-list indices) inject the same
//! failures no matter how work is scheduled.

use std::time::Duration;

/// Which class of failure an injection point belongs to. Each site is
/// salted separately so e.g. `panic` and `delay` decisions at the same
/// ordinal are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSite {
    /// Panic a worker's fault batch (exercises panic isolation).
    WorkerPanic,
    /// Delay a worker batch by [`ChaosConfig::delay`] (exercises
    /// stragglers and deadline drains).
    DelayBatch,
    /// Fail a checkpoint journal write with a synthetic I/O error,
    /// leaving a torn partial record behind (exercises journal
    /// recovery).
    CkptIo,
    /// Skip the deadline clock forward by [`ChaosConfig::clock_skip`]
    /// (exercises spurious deadline firings).
    ClockSkip,
    /// Drop a tester↔die connection mid-stream (exercises session
    /// reconnect and window resume in the serve layer).
    DropConn,
    /// Write only a torn prefix of a frame before dropping the
    /// connection (exercises frame-codec truncation detection).
    TornFrame,
    /// Delay a die's signature upload by [`ChaosConfig::delay`]
    /// (exercises per-session backpressure and slow-die isolation).
    DelayDie,
    /// Stall the server mid-stream: hold the connection open and
    /// silent for [`ChaosConfig::stall`] (exercises client read
    /// deadlines — the peer must time out, not hang).
    StallServer,
    /// Accept a session's `Hello` and then go silent without a
    /// `Welcome` — a half-open connection (exercises handshake
    /// deadlines and the reconnect budget).
    HalfOpenConn,
    /// Corrupt a signature upload in flight: the frame arrives
    /// complete but fails its checksum (exercises checksum rejection
    /// and that a corrupt upload is never recorded).
    CorruptFrame,
    /// Fail a journal write with EIO before any byte reaches the file
    /// (exercises replica fallback — the record must survive on a
    /// sibling replica).
    DiskEio,
    /// Write only a deterministic prefix of a journal record, then
    /// fail (exercises torn-record skipping under real truncation
    /// lengths, not just the half-record `CkptIo` tear).
    DiskShortWrite,
    /// Flip one deterministically-chosen bit of a journal record and
    /// report *success* — silent corruption, detected only by the
    /// per-record checksum at load/fsck time.
    DiskBitRot,
    /// Write the full record but fail the flush, modelling an fsync
    /// error where on-disk durability is unknown to the writer.
    DiskFsyncFail,
}

impl ChaosSite {
    fn salt(self) -> u64 {
        match self {
            ChaosSite::WorkerPanic => 0x9E37_79B9_7F4A_7C15,
            ChaosSite::DelayBatch => 0xBF58_476D_1CE4_E5B9,
            ChaosSite::CkptIo => 0x94D0_49BB_1331_11EB,
            ChaosSite::ClockSkip => 0xD6E8_FEB8_6659_FD93,
            ChaosSite::DropConn => 0xC2B2_AE3D_27D4_EB4F,
            ChaosSite::TornFrame => 0x1656_67B1_9E37_79F9,
            ChaosSite::DelayDie => 0x2545_F491_4F6C_DD1D,
            ChaosSite::StallServer => 0x8EBC_6AF0_9C88_C6E3,
            ChaosSite::HalfOpenConn => 0x5899_65CC_7537_4E9B,
            ChaosSite::CorruptFrame => 0x1D8E_4E27_C47D_124F,
            ChaosSite::DiskEio => 0xE703_7ED1_A0B4_28DB,
            ChaosSite::DiskShortWrite => 0x3C79_AC49_2BA7_B653,
            ChaosSite::DiskBitRot => 0x6C62_272E_07BB_0142,
            ChaosSite::DiskFsyncFail => 0x27D4_EB2F_1656_67C5,
        }
    }
}

/// Parsed `AIDFT_CHAOS` configuration.
///
/// The environment variable is a comma-separated `key=value` list:
///
/// ```text
/// AIDFT_CHAOS="panic=0.02,delay=0.01,delay_ms=5,io=0.2,clock=0.01,clock_ms=50,seed=7"
/// ```
///
/// | key        | meaning                                             | default |
/// |------------|-----------------------------------------------------|---------|
/// | `panic`    | probability a fault batch panics                    | 0.0     |
/// | `delay`    | probability a worker chunk is delayed               | 0.0     |
/// | `delay_ms` | delay length in milliseconds                        | 2       |
/// | `io`       | probability a checkpoint write fails (torn record)  | 0.0     |
/// | `clock`    | probability a checkpoint boundary skips the clock   | 0.0     |
/// | `clock_ms` | clock-skip length in milliseconds                   | 100     |
/// | `drop`     | probability a tester↔die connection is dropped      | 0.0     |
/// | `tear`     | probability a frame write is torn mid-frame         | 0.0     |
/// | `stall`    | probability the server stalls silent mid-stream     | 0.0     |
/// | `halfopen` | probability a session goes half-open after `Hello`  | 0.0     |
/// | `corrupt`  | probability a signature upload is corrupted         | 0.0     |
/// | `stall_ms` | how long a stalled/half-open peer holds the socket  | 250     |
/// | `eio`      | probability a journal write fails with EIO          | 0.0     |
/// | `shortwrite` | probability a journal write is cut short          | 0.0     |
/// | `bitrot`   | probability a journal record lands with one bit flipped | 0.0 |
/// | `fsync_fail` | probability a journal flush reports failure       | 0.0     |
/// | `seed`     | decision seed (replays are exact)                   | 0       |
///
/// The serve layer's delayed-die site ([`ChaosSite::DelayDie`]) fires
/// on the shared `delay`/`delay_ms` knobs (with an independent salt).
/// `stall`/`halfopen`/`corrupt` drive the resilience layer: stalled and
/// half-open peers must hit liveness deadlines (never hang a thread),
/// corrupted uploads must be rejected by the checksum, and a die whose
/// reconnect budget is exhausted must be quarantined `Untestable` —
/// the fleet always completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability a worker's fault batch panics.
    pub panic_prob: f64,
    /// Probability a worker chunk sleeps for [`ChaosConfig::delay`].
    pub delay_prob: f64,
    /// Injected delay length.
    pub delay: Duration,
    /// Probability a checkpoint journal write fails torn.
    pub io_prob: f64,
    /// Probability a checkpoint boundary skips the deadline clock.
    pub clock_skip_prob: f64,
    /// Injected clock-skip length.
    pub clock_skip: Duration,
    /// Probability a tester↔die connection is dropped mid-stream.
    pub drop_prob: f64,
    /// Probability a frame write is torn (partial bytes, then dropped).
    pub tear_prob: f64,
    /// Probability the server stalls silent mid-stream (connection held
    /// open past the client's read deadline).
    pub stall_prob: f64,
    /// Probability a session goes half-open: `Hello` accepted, then
    /// silence instead of `Welcome`.
    pub halfopen_prob: f64,
    /// Probability a die's signature upload is corrupted in flight.
    pub corrupt_prob: f64,
    /// How long a stalled or half-open peer holds the socket before
    /// dropping it.
    pub stall: Duration,
    /// Probability a journal write fails with EIO before any byte
    /// reaches the file.
    pub eio_prob: f64,
    /// Probability a journal write is cut short at a deterministic
    /// prefix, then fails.
    pub shortwrite_prob: f64,
    /// Probability a journal record lands with one bit silently
    /// flipped (the write still reports success).
    pub bitrot_prob: f64,
    /// Probability a journal flush reports failure after the bytes
    /// were written.
    pub fsync_fail_prob: f64,
    /// Seed for the deterministic decision hash.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            panic_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(2),
            io_prob: 0.0,
            clock_skip_prob: 0.0,
            clock_skip: Duration::from_millis(100),
            drop_prob: 0.0,
            tear_prob: 0.0,
            stall_prob: 0.0,
            halfopen_prob: 0.0,
            corrupt_prob: 0.0,
            stall: Duration::from_millis(250),
            eio_prob: 0.0,
            shortwrite_prob: 0.0,
            bitrot_prob: 0.0,
            fsync_fail_prob: 0.0,
            seed: 0,
        }
    }
}

impl ChaosConfig {
    /// The all-off configuration (every probability zero).
    pub fn disabled() -> ChaosConfig {
        ChaosConfig::default()
    }

    /// `true` when at least one injection class can fire.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || self.delay_prob > 0.0
            || self.io_prob > 0.0
            || self.clock_skip_prob > 0.0
            || self.drop_prob > 0.0
            || self.tear_prob > 0.0
            || self.stall_prob > 0.0
            || self.halfopen_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.has_disk_faults()
    }

    /// `true` when any of the disk-fault knobs can fire (the subset
    /// the journal writer's [`crate::ChaosWriter`] layer cares about).
    pub fn has_disk_faults(&self) -> bool {
        self.eio_prob > 0.0
            || self.shortwrite_prob > 0.0
            || self.bitrot_prob > 0.0
            || self.fsync_fail_prob > 0.0
    }

    /// Reads `AIDFT_CHAOS` from the environment. `None` when unset or
    /// empty; a malformed value is an `Err` so operators notice typos
    /// instead of silently running without chaos.
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        match std::env::var("AIDFT_CHAOS") {
            Ok(v) if !v.trim().is_empty() => ChaosConfig::parse(&v).map(Some),
            _ => Ok(None),
        }
    }

    /// Parses the `key=value,key=value` knob list (see the type docs for
    /// the table).
    pub fn parse(text: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos knob `{part}` is not key=value"))?;
            let fval = || -> Result<f64, String> {
                let p: f64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad chaos probability `{value}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos probability `{key}={value}` outside [0, 1]"));
                }
                Ok(p)
            };
            let uval = || -> Result<u64, String> {
                value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad chaos value `{value}` for `{key}`"))
            };
            match key.trim() {
                "panic" => cfg.panic_prob = fval()?,
                "delay" => cfg.delay_prob = fval()?,
                "delay_ms" => cfg.delay = Duration::from_millis(uval()?),
                "io" => cfg.io_prob = fval()?,
                "clock" => cfg.clock_skip_prob = fval()?,
                "clock_ms" => cfg.clock_skip = Duration::from_millis(uval()?),
                "drop" => cfg.drop_prob = fval()?,
                "tear" => cfg.tear_prob = fval()?,
                "stall" => cfg.stall_prob = fval()?,
                "halfopen" => cfg.halfopen_prob = fval()?,
                "corrupt" => cfg.corrupt_prob = fval()?,
                "stall_ms" => cfg.stall = Duration::from_millis(uval()?),
                "eio" => cfg.eio_prob = fval()?,
                "shortwrite" => cfg.shortwrite_prob = fval()?,
                "bitrot" => cfg.bitrot_prob = fval()?,
                "fsync_fail" => cfg.fsync_fail_prob = fval()?,
                "seed" => cfg.seed = uval()?,
                other => return Err(format!("unknown chaos knob `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Whether injection point `(site, ordinal)` fires. Pure function of
    /// `(seed, site, ordinal)` — replays and thread counts cannot change
    /// the answer.
    pub fn fires(&self, site: ChaosSite, ordinal: u64) -> bool {
        let prob = match site {
            ChaosSite::WorkerPanic => self.panic_prob,
            ChaosSite::DelayBatch => self.delay_prob,
            ChaosSite::CkptIo => self.io_prob,
            ChaosSite::ClockSkip => self.clock_skip_prob,
            ChaosSite::DropConn => self.drop_prob,
            ChaosSite::TornFrame => self.tear_prob,
            ChaosSite::DelayDie => self.delay_prob,
            ChaosSite::StallServer => self.stall_prob,
            ChaosSite::HalfOpenConn => self.halfopen_prob,
            ChaosSite::CorruptFrame => self.corrupt_prob,
            ChaosSite::DiskEio => self.eio_prob,
            ChaosSite::DiskShortWrite => self.shortwrite_prob,
            ChaosSite::DiskBitRot => self.bitrot_prob,
            ChaosSite::DiskFsyncFail => self.fsync_fail_prob,
        };
        if prob <= 0.0 {
            return false;
        }
        if prob >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ site.salt() ^ ordinal.wrapping_mul(0xA076_1D64_78BD_642F));
        // Map the top 53 bits to [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < prob
    }
}

/// SplitMix64: the standard 64-bit finalizer-style mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_knob_list() {
        let c = ChaosConfig::parse(
            "panic=0.02,delay=0.01,delay_ms=5,io=0.2,clock=0.01,clock_ms=50,drop=0.1,tear=0.05,\
             stall=0.04,halfopen=0.03,corrupt=0.02,stall_ms=80,seed=7",
        )
        .unwrap();
        assert_eq!(c.panic_prob, 0.02);
        assert_eq!(c.delay_prob, 0.01);
        assert_eq!(c.delay, Duration::from_millis(5));
        assert_eq!(c.io_prob, 0.2);
        assert_eq!(c.clock_skip_prob, 0.01);
        assert_eq!(c.clock_skip, Duration::from_millis(50));
        assert_eq!(c.drop_prob, 0.1);
        assert_eq!(c.tear_prob, 0.05);
        assert_eq!(c.stall_prob, 0.04);
        assert_eq!(c.halfopen_prob, 0.03);
        assert_eq!(c.corrupt_prob, 0.02);
        assert_eq!(c.stall, Duration::from_millis(80));
        assert_eq!(c.seed, 7);
        assert!(c.is_active());
        assert!(ChaosConfig::parse("drop=1.0").unwrap().is_active());
        assert!(ChaosConfig::parse("tear=1.0").unwrap().is_active());
        assert!(ChaosConfig::parse("stall=1.0").unwrap().is_active());
        assert!(ChaosConfig::parse("halfopen=1.0").unwrap().is_active());
        assert!(ChaosConfig::parse("corrupt=1.0").unwrap().is_active());
    }

    #[test]
    fn parse_disk_fault_knobs() {
        let c =
            ChaosConfig::parse("eio=0.1,shortwrite=0.2,bitrot=0.3,fsync_fail=0.4,seed=11").unwrap();
        assert_eq!(c.eio_prob, 0.1);
        assert_eq!(c.shortwrite_prob, 0.2);
        assert_eq!(c.bitrot_prob, 0.3);
        assert_eq!(c.fsync_fail_prob, 0.4);
        assert!(c.is_active() && c.has_disk_faults());
        for knob in ["eio", "shortwrite", "bitrot", "fsync_fail"] {
            let one = ChaosConfig::parse(&format!("{knob}=1.0")).unwrap();
            assert!(one.is_active(), "{knob} should activate chaos");
            assert!(one.has_disk_faults(), "{knob} is a disk fault");
        }
        assert!(!ChaosConfig::parse("io=0.5").unwrap().has_disk_faults());
        assert!(ChaosConfig::parse("bitrot=2.0").is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(ChaosConfig::parse("panic").is_err());
        assert!(ChaosConfig::parse("panic=2.0").is_err());
        assert!(ChaosConfig::parse("warp=0.5").is_err());
        assert!(ChaosConfig::parse("seed=x").is_err());
        assert!(!ChaosConfig::parse("").unwrap().is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_sites_independent() {
        let c = ChaosConfig {
            panic_prob: 0.5,
            io_prob: 0.5,
            seed: 42,
            ..ChaosConfig::default()
        };
        for i in 0..64 {
            assert_eq!(
                c.fires(ChaosSite::WorkerPanic, i),
                c.fires(ChaosSite::WorkerPanic, i)
            );
        }
        // With both probs at 0.5 the two sites should disagree somewhere.
        assert!(
            (0..64).any(|i| c.fires(ChaosSite::WorkerPanic, i) != c.fires(ChaosSite::CkptIo, i))
        );
    }

    #[test]
    fn fire_rate_tracks_probability() {
        let c = ChaosConfig {
            panic_prob: 0.25,
            seed: 9,
            ..ChaosConfig::default()
        };
        let hits = (0..10_000)
            .filter(|&i| c.fires(ChaosSite::WorkerPanic, i))
            .count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!ChaosConfig::disabled().fires(ChaosSite::WorkerPanic, 3));
        let always = ChaosConfig {
            delay_prob: 1.0,
            ..ChaosConfig::default()
        };
        assert!(always.fires(ChaosSite::DelayBatch, 11));
    }
}
