//! Deterministic disk-fault injection for journal writes.
//!
//! The network and compute chaos sites fail *operations*; this module
//! fails *storage*. A journal append wraps its file handle in a
//! [`ChaosWriter`], a `Write`/`Seek` layer that injects exactly one
//! decided [`DiskFault`] per record: an EIO before any byte lands, a
//! short write cut at a deterministic prefix, a single silently
//! flipped bit, or an fsync that reports failure after the bytes were
//! written. Every decision and every fault parameter (cut length, bit
//! index) is a pure function of `(chaos seed, site, ordinal)`, and the
//! ordinal mixes the record seq with the replica index
//! ([`disk_ordinal`]) so sibling replicas of the same record fail
//! independently — the property replica fallback recovery relies on.

use std::io::{self, Seek, SeekFrom, Write};

use crate::chaos::{splitmix64, ChaosConfig, ChaosSite};

/// The disk fault (if any) decided for one journal write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// No fault: the write goes through untouched.
    None,
    /// The write fails with a synthetic EIO before any byte reaches
    /// the file.
    Eio,
    /// Only a deterministic prefix of the planned bytes is written,
    /// then the write fails.
    ShortWrite,
    /// All bytes are written with one deterministically-chosen bit
    /// flipped, and the write *reports success* — silent corruption
    /// that only the per-record checksum can catch.
    BitRot,
    /// All bytes are written but the flush reports failure, modelling
    /// an fsync error where durability is unknown to the writer.
    FsyncFail,
}

/// Ordinal for disk-chaos decisions: mixes the record seq with the
/// replica index so replicas of the same record draw independent
/// fault decisions (a bit-rotted primary leaves replica 1 intact, and
/// vice versa).
pub fn disk_ordinal(seq: u64, replica: u32) -> u64 {
    (seq << 8) | u64::from(replica & 0xFF)
}

/// Decides which fault (if any) strikes the write at `ordinal`. Sites
/// are consulted in a fixed priority order (EIO, short write, bit
/// rot, fsync) so a replay is exact even when several knobs are hot.
pub fn decide(chaos: &ChaosConfig, ordinal: u64) -> DiskFault {
    if chaos.fires(ChaosSite::DiskEio, ordinal) {
        DiskFault::Eio
    } else if chaos.fires(ChaosSite::DiskShortWrite, ordinal) {
        DiskFault::ShortWrite
    } else if chaos.fires(ChaosSite::DiskBitRot, ordinal) {
        DiskFault::BitRot
    } else if chaos.fires(ChaosSite::DiskFsyncFail, ordinal) {
        DiskFault::FsyncFail
    } else {
        DiskFault::None
    }
}

/// Deterministic fault-parameter key for `(seed, ordinal)`: drives the
/// short-write cut length and the bit-rot flip position.
pub fn fault_key(chaos: &ChaosConfig, ordinal: u64) -> u64 {
    splitmix64(chaos.seed ^ ordinal.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5851_F42D_4C95_7F2D)
}

/// A `Write`/`Seek` layer that injects one [`DiskFault`] into a
/// stream of `planned` bytes. Construct it per journal append: the
/// fault and its parameters are fixed at construction so the same
/// `(fault, key, planned)` triple always damages the file the same
/// way, byte for byte.
#[derive(Debug)]
pub struct ChaosWriter<W> {
    inner: W,
    fault: DiskFault,
    /// Short-write cut: bytes allowed through before the failure
    /// (strictly fewer than `planned`).
    cut: u64,
    /// Bit-rot target: absolute bit index within the planned stream.
    flip: u64,
    /// Bytes accepted so far.
    written: u64,
}

impl<W> ChaosWriter<W> {
    /// Wraps `inner` for a write of `planned` bytes under `fault`,
    /// with fault parameters derived from `key` (see [`fault_key`]).
    pub fn new(inner: W, fault: DiskFault, key: u64, planned: u64) -> ChaosWriter<W> {
        let planned = planned.max(1);
        ChaosWriter {
            inner,
            fault,
            cut: key % planned,
            flip: key % (planned * 8),
            written: 0,
        }
    }

    /// Bytes accepted so far (for callers that report write progress).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.fault {
            DiskFault::Eio => Err(io::Error::other("chaos: injected EIO on journal write")),
            DiskFault::ShortWrite => {
                let room = self.cut.saturating_sub(self.written);
                if room == 0 {
                    return Err(io::Error::other("chaos: injected short journal write"));
                }
                let take = room.min(buf.len() as u64) as usize;
                let n = self.inner.write(&buf[..take])?;
                self.written += n as u64;
                Ok(n)
            }
            DiskFault::BitRot => {
                let start = self.written;
                let end = start + buf.len() as u64;
                let target = self.flip / 8;
                let n = if (start..end).contains(&target) {
                    let mut rotted = buf.to_vec();
                    rotted[(target - start) as usize] ^= 1 << (self.flip % 8);
                    self.inner.write(&rotted)?
                } else {
                    self.inner.write(buf)?
                };
                self.written += n as u64;
                Ok(n)
            }
            DiskFault::None | DiskFault::FsyncFail => {
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        if self.fault == DiskFault::FsyncFail {
            return Err(io::Error::other("chaos: injected fsync failure"));
        }
        Ok(())
    }
}

impl<W: Write + Seek> Seek for ChaosWriter<W> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(fault: DiskFault, key: u64, payload: &[u8]) -> (io::Result<()>, Vec<u8>) {
        let mut w = ChaosWriter::new(Vec::new(), fault, key, payload.len() as u64);
        let res = w.write_all(payload).and_then(|()| w.flush());
        (res, w.into_inner())
    }

    #[test]
    fn eio_writes_nothing() {
        let (res, bytes) = run(DiskFault::Eio, 7, b"ckpt test 0\nbody\nend 00\n");
        assert!(res.is_err());
        assert!(bytes.is_empty());
    }

    #[test]
    fn short_write_is_a_strict_prefix() {
        let payload = b"ckpt test 0\nbody\nend 00\n";
        let (res, bytes) = run(DiskFault::ShortWrite, 13, payload);
        assert!(res.is_err());
        assert!(bytes.len() < payload.len());
        assert_eq!(&payload[..bytes.len()], &bytes[..]);
        // Same key, same cut — the damage replays exactly.
        let (_, again) = run(DiskFault::ShortWrite, 13, payload);
        assert_eq!(bytes, again);
    }

    #[test]
    fn bitrot_flips_exactly_one_bit_and_reports_success() {
        let payload = b"ckpt test 0\nbody\nend 00\n";
        let (res, bytes) = run(DiskFault::BitRot, 99, payload);
        assert!(res.is_ok(), "bit rot is silent");
        assert_eq!(bytes.len(), payload.len());
        let flipped: u32 = payload
            .iter()
            .zip(&bytes)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        let (_, again) = run(DiskFault::BitRot, 99, payload);
        assert_eq!(bytes, again);
    }

    #[test]
    fn fsync_fail_writes_everything_then_errors() {
        let payload = b"ckpt test 0\nbody\nend 00\n";
        let (res, bytes) = run(DiskFault::FsyncFail, 3, payload);
        assert!(res.is_err());
        assert_eq!(bytes, payload);
    }

    #[test]
    fn decisions_are_independent_per_replica() {
        let chaos = ChaosConfig::parse("bitrot=0.5,seed=42").unwrap();
        let disagree = (0..64u64).any(|seq| {
            decide(&chaos, disk_ordinal(seq, 0)) != decide(&chaos, disk_ordinal(seq, 1))
        });
        assert!(disagree, "replicas must draw independent fault decisions");
        assert_eq!(decide(&ChaosConfig::disabled(), 5), DiskFault::None);
        let all = ChaosConfig::parse("eio=1.0,bitrot=1.0").unwrap();
        // Fixed priority: EIO outranks bit rot.
        assert_eq!(decide(&all, 0), DiskFault::Eio);
    }
}
