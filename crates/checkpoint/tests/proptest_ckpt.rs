//! Property tests for the `aidft-ckpt-v1` record codec and journal:
//! serialize → parse is the identity for arbitrary states, and the
//! newest complete record always survives torn tails and garbage.

use proptest::prelude::*;

use dft_checkpoint::{CkptPhase, CkptSection, CkptState, CkptStatus, Journal};

/// SplitMix64: one seed → an arbitrary-but-deterministic state, the
/// same construction idiom the engines use.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn section(&mut self, width: usize) -> CkptSection {
        let statuses = (0..self.below(40))
            .map(|_| match self.below(4) {
                0 => CkptStatus::Undetected,
                1 => CkptStatus::Detected(self.below(5000) as u32),
                2 => CkptStatus::Untestable,
                _ => CkptStatus::Aborted,
            })
            .collect();
        let patterns = (0..self.below(10))
            .map(|_| (0..width).map(|_| self.next() & 1 == 1).collect())
            .collect();
        let cubes = (0..self.below(8))
            .map(|_| {
                (0..width)
                    .map(|_| match self.below(5) {
                        0 => Some(true),
                        1 => Some(false),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        CkptSection {
            statuses,
            patterns,
            cubes,
            tally: [
                self.below(10_000),
                self.below(10_000),
                self.below(10_000),
                self.below(10_000),
            ],
        }
    }

    fn state(&mut self) -> CkptState {
        let width = 1 + self.below(24) as usize;
        let name_len = 1 + self.below(12) as usize;
        let design: String = (0..name_len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect();
        CkptState {
            design,
            config_hash: self.next(),
            phase: match self.below(3) {
                0 => CkptPhase::Init,
                1 => CkptPhase::Topoff(self.below(6) as u32),
                _ => CkptPhase::Signoff,
            },
            seed: self.next(),
            fill_seed: self.next(),
            fault_ordinal: self.next(),
            random_detected: self.below(100_000),
            width,
            main: self.section(width),
            pre_compaction: (self.next() & 1 == 1).then(|| self.section(width)),
        }
    }
}

fn temp_journal(tag: &str, case: u64) -> Journal {
    let dir = std::env::temp_dir().join(format!("aidft-ckpt-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = Journal::new(dir.join(format!("{tag}-{case}.ckpt")));
    std::fs::remove_file(journal.path()).ok();
    journal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// to_record → parse_record is the identity: the resumable frontier
    /// (fault partitions, pattern set, cubes, tallies, seeds) survives a
    /// serialization roundtrip bit-for-bit.
    #[test]
    fn record_roundtrip_is_identity(seed in 0u64..1_000_000, seq in 0u64..1000) {
        let state = Gen(seed).state();
        let record = state.to_record(seq);
        let parsed = CkptState::parse_record(&record).expect("own record parses");
        prop_assert_eq!(parsed, state);
    }

    /// Appending through a journal file and loading the last record
    /// returns the newest state, even with earlier records present.
    #[test]
    fn journal_returns_newest_record(seed in 0u64..1_000_000, n in 1u64..4) {
        let mut gen = Gen(seed);
        let states: Vec<CkptState> = (0..n).map(|_| gen.state()).collect();
        let journal = temp_journal("newest", seed);
        for (i, s) in states.iter().enumerate() {
            journal.append(s, i as u64).unwrap();
        }
        let loaded = journal.load_last().expect("complete records on disk");
        prop_assert_eq!(&loaded, states.last().unwrap());
        std::fs::remove_file(journal.path()).ok();
    }

    /// A torn (half-written) tail — the crash-mid-write case — never
    /// hides the previous complete record.
    #[test]
    fn torn_tail_is_skipped(seed in 0u64..1_000_000) {
        let mut gen = Gen(seed);
        let good = gen.state();
        let torn = gen.state();
        let journal = temp_journal("torn", seed);
        journal.append(&good, 0).unwrap();
        let _ = journal.append_torn(&torn, 1);
        let loaded = journal.load_last().expect("first record intact");
        prop_assert_eq!(loaded, good);
        std::fs::remove_file(journal.path()).ok();
    }

    /// A single bit flip at ANY byte offset — the silent-bitrot case —
    /// never panics the loader, is always detected by the record
    /// checksum, and never yields a silently-wrong state: `load_last`
    /// either errors (every record damaged) or returns one of the
    /// states that were actually written.
    #[test]
    fn single_bit_flip_is_never_silently_wrong(
        seed in 0u64..1_000_000,
        offset_pick in 0usize..usize::MAX,
        bit in 0u8..8,
    ) {
        let mut gen = Gen(seed);
        let a = gen.state();
        let b = gen.state();
        let journal = temp_journal("bitflip", seed);
        journal.append(&a, 0).unwrap();
        journal.append(&b, 1).unwrap();
        let mut bytes = std::fs::read(journal.path()).unwrap();
        let offset = offset_pick % bytes.len();
        bytes[offset] ^= 1 << bit;
        std::fs::write(journal.path(), &bytes).unwrap();
        // A flip in record 0 leaves `b` the newest intact record; a
        // flip in record 1 must surface `a`, never a mutated `b` — the
        // FNV trailer makes any single-byte change detectable. A flip
        // that damages the framing of both regions (e.g. the newline
        // gluing the records) is a detected `Err`, also acceptable.
        if let Ok(loaded) = journal.load_last() {
            prop_assert!(loaded == b || loaded == a);
        }
        std::fs::remove_file(journal.path()).ok();
        std::fs::remove_file(dft_checkpoint::scrub::scrub_path(journal.path())).ok();
    }

    /// Arbitrary garbage appended to the journal (partial lines, bit
    /// rot) is treated as absent, not fatal.
    #[test]
    fn trailing_garbage_is_ignored(seed in 0u64..1_000_000, glen in 0usize..200) {
        let mut gen = Gen(seed);
        let state = gen.state();
        let journal = temp_journal("garbage", seed);
        journal.append(&state, 7).unwrap();
        let garbage: Vec<u8> = (0..glen).map(|_| (gen.below(95) + 32) as u8).collect();
        let mut bytes = std::fs::read(journal.path()).unwrap();
        bytes.extend_from_slice(&garbage);
        std::fs::write(journal.path(), &bytes).unwrap();
        let loaded = journal.load_last().expect("complete record survives");
        prop_assert_eq!(loaded, state);
        std::fs::remove_file(journal.path()).ok();
    }
}

/// Exhaustive companion to the proptest: flips one bit at EVERY byte
/// offset of a two-record journal and checks the same invariant at
/// each — never a panic, never a state that was not written.
#[test]
fn exhaustive_bit_flip_sweep_never_yields_wrong_state() {
    let mut gen = Gen(0xF11B);
    let a = gen.state();
    let b = gen.state();
    let journal = temp_journal("sweep", 0);
    journal.append(&a, 0).unwrap();
    journal.append(&b, 1).unwrap();
    let pristine = std::fs::read(journal.path()).unwrap();
    for offset in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x01;
        std::fs::write(journal.path(), &bytes).unwrap();
        if let Ok(loaded) = journal.load_last() {
            assert!(
                loaded == b || loaded == a,
                "offset {offset}: flip produced a state that was never written"
            );
        }
    }
    std::fs::remove_file(journal.path()).ok();
    std::fs::remove_file(dft_checkpoint::scrub::scrub_path(journal.path())).ok();
}
