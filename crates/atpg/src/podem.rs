//! PODEM: path-oriented decision making test generation.
//!
//! The search makes decisions only at combinational sources (primary
//! inputs and scan flops), derives every internal value by five-valued
//! simulation, and backtracks chronologically. Objectives are chosen in
//! the textbook order: excite the fault, then drive a D-frontier gate
//! towards an observation point; the backtrace is guided by SCOAP costs.
//! Optional *constraints* (required values on arbitrary nets) support the
//! launch condition of broadside transition ATPG.

use dft_checkpoint::CancelToken;
use dft_fault::Fault;
use dft_logicsim::testability::{scoap, Scoap};
use dft_logicsim::{FiveSim, TestCube};
use dft_metrics::MetricsHandle;
use dft_netlist::{GateId, GateKind, Logic, Netlist};

/// Outcome of test generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgResult {
    /// A test cube that detects the fault (care bits only).
    Test(TestCube),
    /// The fault is proven untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was exceeded; testability unknown.
    Aborted,
}

impl AtpgResult {
    /// `true` for [`AtpgResult::Test`].
    pub fn is_test(&self) -> bool {
        matches!(self, AtpgResult::Test(_))
    }
}

/// Counters describing one PODEM invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PodemStats {
    /// Chronological backtracks performed.
    pub backtracks: u32,
    /// Five-valued simulation passes.
    pub simulations: u32,
    /// Decisions (source assignments) made.
    pub decisions: u32,
}

/// A PODEM test generator bound to one netlist.
#[derive(Debug)]
pub struct Podem<'a> {
    sim: FiveSim<'a>,
    scoap: Scoap,
    /// Map from source gate to its index in the assignment vector.
    source_index: Vec<Option<u32>>,
    /// Whether backtrace uses SCOAP guidance (`true`) or naive first-X
    /// selection (`false`) — the E3 ablation knob.
    pub guided: bool,
    metrics: MetricsHandle,
    /// Cooperative cancellation, checked once per search iteration. A
    /// cancelled search returns [`AtpgResult::Aborted`]; the driver
    /// discards that result rather than classifying the fault.
    cancel: Option<CancelToken>,
}

struct Decision {
    source: usize,
    value: bool,
    flipped: bool,
}

impl<'a> Podem<'a> {
    /// Builds a generator for `nl`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational loop.
    pub fn new(nl: &'a Netlist) -> Podem<'a> {
        let sim = FiveSim::new(nl);
        let mut source_index = vec![None; nl.num_gates()];
        for (i, &s) in sim.sources().iter().enumerate() {
            source_index[s.index()] = Some(i as u32);
        }
        Podem {
            sim,
            scoap: scoap(nl),
            source_index,
            guided: true,
            metrics: MetricsHandle::disabled(),
            cancel: None,
        }
    }

    /// Attaches a cancellation token; see [`Podem::generate`]'s abort
    /// behavior in the `cancel` field docs.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Points per-call counters (calls, decisions, backtracks, outcomes)
    /// at `metrics`. The search loop still accumulates into the local
    /// [`PodemStats`]; the registry is flushed once per generate call.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// The netlist this generator works on.
    pub fn netlist(&self) -> &Netlist {
        self.sim.netlist()
    }

    /// Generates a test for `fault`, backtracking at most
    /// `backtrack_limit` times.
    pub fn generate(&self, fault: Fault, backtrack_limit: u32) -> (AtpgResult, PodemStats) {
        self.generate_constrained(fault, &[], backtrack_limit, None)
    }

    /// Generates a test for `fault` subject to `constraints` (required
    /// binary values on arbitrary nets) and optionally starting from a
    /// pre-assigned cube (for dynamic compaction). The initial assignment
    /// bits are treated as unretractable.
    pub fn generate_constrained(
        &self,
        fault: Fault,
        constraints: &[(GateId, bool)],
        backtrack_limit: u32,
        initial: Option<&TestCube>,
    ) -> (AtpgResult, PodemStats) {
        let (result, stats) = self.search(fault, constraints, backtrack_limit, initial);
        if let Some(m) = self.metrics.get() {
            m.podem_calls.inc();
            m.podem_decisions.add(stats.decisions as u64);
            m.podem_backtracks.add(stats.backtracks as u64);
            m.podem_simulations.add(stats.simulations as u64);
            m.podem_backtracks_per_call.record(stats.backtracks as u64);
            match &result {
                AtpgResult::Test(_) => m.podem_tests.inc(),
                AtpgResult::Untestable => m.podem_untestable.inc(),
                AtpgResult::Aborted => m.podem_aborted.inc(),
            }
        }
        (result, stats)
    }

    /// The PODEM search loop behind [`Podem::generate_constrained`].
    fn search(
        &self,
        fault: Fault,
        constraints: &[(GateId, bool)],
        backtrack_limit: u32,
        initial: Option<&TestCube>,
    ) -> (AtpgResult, PodemStats) {
        let num_sources = self.sim.sources().len();
        let mut assignment = vec![Logic::X; num_sources];
        if let Some(cube) = initial {
            assert_eq!(cube.width(), num_sources, "initial cube width");
            for (i, b) in cube.bits().iter().enumerate() {
                if let Some(v) = b {
                    assignment[i] = Logic::from_bool(*v);
                }
            }
        }
        let mut stats = PodemStats::default();
        let mut stack: Vec<Decision> = Vec::new();

        loop {
            if let Some(c) = &self.cancel {
                if c.is_cancelled() {
                    return (AtpgResult::Aborted, stats);
                }
            }
            stats.simulations += 1;
            let vals = self.sim.simulate(&assignment, Some(fault));

            if self.sim.fault_observed(&vals, Some(fault))
                && constraints_satisfiable(&vals, constraints) == Tri::Satisfied
            {
                let mut cube = TestCube::all_x(num_sources);
                for (i, &v) in assignment.iter().enumerate() {
                    if let Some(b) = v.good() {
                        cube.set(i, b);
                    }
                }
                return (AtpgResult::Test(cube), stats);
            }

            // Choose the next objective, or learn that this branch failed.
            let objective = self.objective(fault, &vals, constraints);
            let objective = match objective {
                Objective::Assign(net, val) => (net, val),
                Objective::Fail => {
                    // Backtrack.
                    match backtrack(&mut stack, &mut assignment) {
                        true => {
                            stats.backtracks += 1;
                            if stats.backtracks > backtrack_limit {
                                return (AtpgResult::Aborted, stats);
                            }
                            continue;
                        }
                        false => return (AtpgResult::Untestable, stats),
                    }
                }
            };

            // Backtrace the objective to an unassigned source.
            match self.backtrace(objective.0, objective.1, &vals) {
                Some((src, val)) => {
                    stats.decisions += 1;
                    assignment[src] = Logic::from_bool(val);
                    stack.push(Decision {
                        source: src,
                        value: val,
                        flipped: false,
                    });
                }
                None => {
                    // No X path to a source: treat as a failed branch.
                    match backtrack(&mut stack, &mut assignment) {
                        true => {
                            stats.backtracks += 1;
                            if stats.backtracks > backtrack_limit {
                                return (AtpgResult::Aborted, stats);
                            }
                        }
                        false => return (AtpgResult::Untestable, stats),
                    }
                }
            }

            // Cheap sanity guard against pathological loops.
            if stats.decisions > 4 * (num_sources as u32 + 4) * (backtrack_limit + 4) {
                return (AtpgResult::Aborted, stats);
            }
        }
    }

    /// Selects the next objective per the PODEM priority order.
    fn objective(&self, fault: Fault, vals: &[Logic], constraints: &[(GateId, bool)]) -> Objective {
        let nl = self.sim.netlist();
        // 0. Constraints: any violated -> fail; any unassigned -> objective.
        match constraints_satisfiable(vals, constraints) {
            Tri::Violated => return Objective::Fail,
            Tri::Pending(net, val) => return Objective::Assign(net, val),
            Tri::Satisfied => {}
        }

        // 1. Excitation: the fault site's driving net must carry !stuck.
        let site_net = fault.site.net(nl);
        let stuck = fault.kind.stuck_value();
        let site_val = vals[site_net.index()];
        match site_val {
            Logic::X => return Objective::Assign(site_net, !stuck),
            v if v.is_binary() => {
                if v.good() == Some(stuck) {
                    return Objective::Fail;
                }
                // Excited at the driver. For stem faults the injected site
                // shows D/Dbar via simulation; binary !stuck here happens
                // only for branch faults (driver keeps its good value).
                if fault.site.pin.is_none() {
                    // A stem site with a binary value should be impossible
                    // (injection turns it into D/Dbar); defensive fail.
                    return Objective::Fail;
                }
            }
            _ => {} // D or Dbar: excited.
        }

        // 2. Propagation: pick a D-frontier gate and a non-controlling
        // objective on one of its X inputs.
        let mut best: Option<(GateId, u32)> = None;
        for (id, g) in nl.iter() {
            if vals[id.index()] != Logic::X || !g.kind.is_logic() {
                continue;
            }
            let mut has_effect = g.fanins.iter().any(|&f| vals[f.index()].is_fault_effect());
            // The site gate of a branch fault carries the injected effect
            // on its pin even though the driving net shows the good value.
            if !has_effect && fault.site.pin.is_some() && fault.site.gate == id {
                let driver = fault.site.net(nl);
                has_effect = vals[driver.index()].good() == Some(!stuck);
            }
            if !has_effect {
                continue;
            }
            // X-path check: can this gate still reach a sink through X?
            if !self.x_path_to_sink(id, vals) {
                continue;
            }
            let cost = self.scoap.co[id.index()];
            if best.map(|(_, c)| cost < c).unwrap_or(true) {
                best = Some((id, cost));
            }
        }
        // Also: a fault effect can already sit on a sink-feeding net while
        // the D-frontier is empty (effect on a flop D pin is immediately
        // observed). That case is caught by `fault_observed` before
        // objective selection, so an empty D-frontier here means failure.
        let (gate, _) = match best {
            Some(b) => b,
            None => return Objective::Fail,
        };
        let g = nl.gate(gate);
        // Objective: set an X input to the gate's non-controlling value.
        let noncontrolling = g.kind.controlling_value().map(|c| !c).unwrap_or(true);
        let mut candidate: Option<(GateId, u32)> = None;
        for &f in &g.fanins {
            if vals[f.index()] == Logic::X {
                let cost = if noncontrolling {
                    self.scoap.cc1[f.index()]
                } else {
                    self.scoap.cc0[f.index()]
                };
                if candidate.map(|(_, c)| cost < c).unwrap_or(true) {
                    candidate = Some((f, cost));
                }
            }
        }
        match candidate {
            Some((net, _)) => Objective::Assign(net, noncontrolling),
            None => Objective::Fail,
        }
    }

    /// `true` if a path of X-valued nets leads from `from` to any sink.
    fn x_path_to_sink(&self, from: GateId, vals: &[Logic]) -> bool {
        let nl = self.sim.netlist();
        let mut seen = vec![false; nl.num_gates()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(id) = stack.pop() {
            let g = nl.gate(id);
            if matches!(g.kind, GateKind::Output | GateKind::Dff) {
                return true;
            }
            for &fo in &g.fanouts {
                if seen[fo.index()] {
                    continue;
                }
                seen[fo.index()] = true;
                let fog = nl.gate(fo);
                if matches!(fog.kind, GateKind::Output | GateKind::Dff) {
                    return true;
                }
                if vals[fo.index()] == Logic::X {
                    stack.push(fo);
                }
            }
        }
        false
    }

    /// Walks an objective `(net, value)` backwards through X-valued gates
    /// to an unassigned source; returns the source index and value to
    /// assign.
    fn backtrace(&self, mut net: GateId, mut value: bool, vals: &[Logic]) -> Option<(usize, bool)> {
        let nl = self.sim.netlist();
        loop {
            if let Some(src) = self.source_index[net.index()] {
                // Only X sources are decidable.
                if vals[net.index()] == Logic::X {
                    return Some((src as usize, value));
                }
                return None;
            }
            let g = nl.gate(net);
            if matches!(g.kind, GateKind::Output) {
                net = g.fanins[0];
                continue;
            }
            if !g.kind.is_logic() {
                return None; // constants cannot be controlled
            }
            if g.kind.is_inverting() {
                value = !value;
            }
            // Choose which X input to pursue.
            let x_inputs: Vec<GateId> = g
                .fanins
                .iter()
                .copied()
                .filter(|&f| vals[f.index()] == Logic::X)
                .collect();
            if x_inputs.is_empty() {
                return None;
            }
            let next = match g.kind {
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    // After inversion handling, `value` is the objective for
                    // the underlying AND/OR. Controlling objective -> one
                    // (easiest) input suffices; non-controlling -> all
                    // inputs needed, pursue the hardest first.
                    let base_and = matches!(g.kind, GateKind::And | GateKind::Nand);
                    let controlling = if base_and { !value } else { value };
                    let cost = |f: GateId| {
                        if value {
                            self.scoap.cc1[f.index()]
                        } else {
                            self.scoap.cc0[f.index()]
                        }
                    };
                    if !self.guided {
                        x_inputs[0]
                    } else if controlling {
                        // easiest
                        *x_inputs.iter().min_by_key(|&&f| cost(f)).unwrap()
                    } else {
                        // hardest
                        *x_inputs.iter().max_by_key(|&&f| cost(f)).unwrap()
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Heuristic: aim the first X input at `value` adjusted
                    // by the parity of the known inputs.
                    let known_parity = g
                        .fanins
                        .iter()
                        .filter_map(|&f| vals[f.index()].good())
                        .fold(false, |acc, b| acc ^ b);
                    value ^= known_parity;
                    // Remaining X inputs besides the chosen one are assumed
                    // 0 by this heuristic; simulation corrects any error.
                    x_inputs[0]
                }
                GateKind::Mux2 => {
                    // Prefer steering through the select if it is X.
                    x_inputs[0]
                }
                GateKind::Buf | GateKind::Not => x_inputs[0],
                _ => x_inputs[0],
            };
            net = next;
        }
    }
}

enum Objective {
    Assign(GateId, bool),
    Fail,
}

#[derive(PartialEq, Eq)]
enum Tri {
    Satisfied,
    Violated,
    Pending(GateId, bool),
}

fn constraints_satisfiable(vals: &[Logic], constraints: &[(GateId, bool)]) -> Tri {
    for &(net, want) in constraints {
        match vals[net.index()].good() {
            Some(v) if v == want => {}
            Some(_) => return Tri::Violated,
            None => return Tri::Pending(net, want),
        }
    }
    Tri::Satisfied
}

/// Flips the most recent unflipped decision; pops exhausted ones. Returns
/// `false` when the stack empties (search space exhausted).
fn backtrack(stack: &mut Vec<Decision>, assignment: &mut [Logic]) -> bool {
    while let Some(top) = stack.last_mut() {
        if top.flipped {
            assignment[top.source] = Logic::X;
            stack.pop();
            continue;
        }
        top.flipped = true;
        top.value = !top.value;
        assignment[top.source] = Logic::from_bool(top.value);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{universe_stuck_at, Fault};
    use dft_logicsim::FaultSim;
    use dft_netlist::generators::{c17, decoder, ripple_adder};
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn podem_finds_test_for_every_c17_fault() {
        let nl = c17();
        let podem = Podem::new(&nl);
        let fsim = FaultSim::new(&nl);
        for fault in universe_stuck_at(&nl) {
            let (result, _) = podem.generate(fault, 100);
            match result {
                AtpgResult::Test(cube) => {
                    let pattern = cube.random_fill(1);
                    assert!(
                        fsim.detects(&pattern, fault),
                        "cube {cube} does not detect {fault}"
                    );
                }
                other => panic!("{fault}: expected test, got {other:?}"),
            }
        }
    }

    #[test]
    fn podem_proves_redundant_fault_untestable() {
        // y = OR(a, AND(a, b)): the AND output SA0 is redundant (absorbed).
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and = nl.add_gate(GateKind::And, vec![a, b], "and");
        let or = nl.add_gate(GateKind::Or, vec![a, and], "or");
        nl.add_output(or, "po");
        let podem = Podem::new(&nl);
        let (result, _) = podem.generate(Fault::stuck_at_output(and, false), 1000);
        assert_eq!(result, AtpgResult::Untestable);
        // But the AND SA1 is testable: a=0,b=1 -> or flips 0->1? AND(0,1)=0
        // good, SA1 makes it 1 -> or=1 vs 0. Yes.
        let (result, _) = podem.generate(Fault::stuck_at_output(and, true), 1000);
        assert!(result.is_test());
    }

    #[test]
    fn decoder_hard_faults_need_deterministic_patterns() {
        let nl = decoder(4);
        let podem = Podem::new(&nl);
        let fsim = FaultSim::new(&nl);
        // Output y0 SA0 requires the exact code 0 with enable: random
        // patterns rarely hit it; PODEM must.
        let y0 = nl.find("y0_g").unwrap();
        let f = Fault::stuck_at_output(y0, false);
        let (result, stats) = podem.generate(f, 1000);
        let AtpgResult::Test(cube) = result else {
            panic!("expected test, stats {stats:?}");
        };
        assert!(fsim.detects(&cube.random_fill(7), f));
        // The cube must pin all 4 address bits + enable.
        assert!(cube.care_bits() >= 5, "cube {cube}");
    }

    #[test]
    fn cube_care_bits_are_minimal_ish() {
        // For a wide OR, exciting an input SA1 only needs that input at 0
        // and the others at 0 (to propagate): all needed. For AND SA0 on
        // one input, the cube needs all inputs 1.
        let mut nl = Netlist::new("t");
        let ins: Vec<_> = (0..6).map(|i| nl.add_input(&format!("i{i}"))).collect();
        let g = nl.add_gate(GateKind::And, ins, "g");
        nl.add_output(g, "po");
        let podem = Podem::new(&nl);
        let (result, _) = podem.generate(Fault::stuck_at_input(g, 2, false), 100);
        let AtpgResult::Test(cube) = result else {
            panic!()
        };
        assert_eq!(cube.care_bits(), 6);
        assert_eq!(cube.bits().iter().filter(|b| **b == Some(true)).count(), 6);
    }

    #[test]
    fn constraint_steers_generation() {
        let nl = ripple_adder(4);
        let podem = Podem::new(&nl);
        let fsim = FaultSim::new(&nl);
        let cin = nl.find("cin").unwrap();
        // Any testable fault, but require cin = 1.
        let s0 = nl.find("add_fa0_s").unwrap();
        let f = Fault::stuck_at_output(s0, false);
        let (result, _) = podem.generate_constrained(f, &[(cin, true)], 1000, None);
        let AtpgResult::Test(cube) = result else {
            panic!()
        };
        let sources = nl.combinational_sources();
        let cin_idx = sources.iter().position(|&s| s == cin).unwrap();
        assert_eq!(cube.get(cin_idx), Some(true));
        assert!(fsim.detects(&cube.random_fill(3), f));
    }

    #[test]
    fn impossible_constraint_is_untestable() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv = nl.add_gate(GateKind::Not, vec![a], "inv");
        let and = nl.add_gate(GateKind::And, vec![a, inv], "and"); // always 0
        nl.add_output(and, "po");
        let podem = Podem::new(&nl);
        // Constrain and=1: impossible.
        let b = nl.find("po").unwrap();
        let f = Fault::stuck_at_output(a, false);
        let (result, _) = podem.generate_constrained(f, &[(b, true)], 1000, None);
        assert_eq!(result, AtpgResult::Untestable);
    }

    #[test]
    fn initial_cube_is_respected() {
        let nl = c17();
        let podem = Podem::new(&nl);
        let g1 = nl.find("G1").unwrap();
        let sources = nl.combinational_sources();
        let g1_idx = sources.iter().position(|&s| s == g1).unwrap();
        let mut initial = TestCube::all_x(sources.len());
        initial.set(g1_idx, true);
        // Target a fault not involving G1's value directly.
        let g11 = nl.find("G11").unwrap();
        let f = Fault::stuck_at_output(g11, true);
        let (result, _) = podem.generate_constrained(f, &[], 1000, Some(&initial));
        if let AtpgResult::Test(cube) = result {
            assert_eq!(cube.get(g1_idx), Some(true), "initial bit dropped");
        }
    }

    #[test]
    fn unguided_backtrace_still_correct() {
        let nl = ripple_adder(4);
        let mut podem = Podem::new(&nl);
        podem.guided = false;
        let fsim = FaultSim::new(&nl);
        let mut tested = 0;
        for fault in universe_stuck_at(&nl) {
            let (result, _) = podem.generate(fault, 500);
            if let AtpgResult::Test(cube) = result {
                assert!(fsim.detects(&cube.random_fill(5), fault), "{fault}");
                tested += 1;
            }
        }
        assert!(tested > 0);
    }
}
