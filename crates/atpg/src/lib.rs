//! Automatic test pattern generation (ATPG).
//!
//! Implements the classic PODEM algorithm (path-oriented decision making)
//! with SCOAP-guided objective selection and X-path checking, a production
//! -shaped driver (random-pattern phase followed by deterministic top-off,
//! with static and dynamic compaction), and broadside transition-fault ATPG
//! via two-frame circuit expansion.
//!
//! # Example
//!
//! ```
//! use dft_netlist::generators::c17;
//! use dft_atpg::{Atpg, AtpgConfig};
//!
//! let nl = c17();
//! let run = Atpg::new(&nl).run(&AtpgConfig::default());
//! assert!(run.fault_list.fault_coverage() > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod dalg;
mod driver;
mod podem;
mod twoframe;

pub use compact::{compact_cubes, reverse_order_compaction};
pub use dalg::DAlgorithm;
pub use driver::{Atpg, AtpgConfig, AtpgError, AtpgInterrupt, AtpgRun, CompactionMode, Durability};
pub use podem::{AtpgResult, Podem, PodemStats};
pub use twoframe::{expand_two_frames, TransitionAtpg, TransitionAtpgRun, TwoFrame};
