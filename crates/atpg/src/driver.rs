//! The production-shaped ATPG flow: random phase, deterministic top-off,
//! compaction, and sign-off fault simulation.

use std::time::{Duration, Instant};

use dft_fault::{collapse_equivalent, universe_stuck_at, Fault, FaultList, FaultStatus};
use dft_logicsim::{Executor, FaultSim, PatternSet, TestCube};
use dft_metrics::MetricsHandle;
use dft_netlist::Netlist;
use dft_trace::TraceHandle;

use crate::{compact_cubes, AtpgResult, DAlgorithm, Podem, PodemStats};

/// How the driver compacts deterministic cubes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionMode {
    /// One pattern per generated cube.
    None,
    /// Greedy merging of compatible cubes after generation.
    #[default]
    Static,
    /// Multi-target cube filling during generation (each cube is extended
    /// with tests for additional faults before fill), then static merging.
    Dynamic,
}

/// Configuration of an ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Number of random patterns simulated before deterministic top-off.
    /// Zero disables the random phase.
    pub random_patterns: usize,
    /// Seed for random patterns and cube fill.
    pub seed: u64,
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: u32,
    /// Cube compaction mode.
    pub compaction: CompactionMode,
    /// Use SCOAP-guided backtrace (`false` = naive; the E3 ablation).
    pub guided_backtrace: bool,
    /// Secondary targets attempted per cube under dynamic compaction.
    pub dynamic_targets: usize,
    /// Worker threads for the fault-simulation phases: `0` = one per
    /// hardware thread, `1` = serial. Any value produces bit-identical
    /// results (see [`dft_logicsim::Executor`]).
    pub threads: usize,
    /// Retry a PODEM-aborted fault once with the D-algorithm (at
    /// [`AtpgConfig::escalation_backtracks`]) before classifying it
    /// aborted. The structural D-algorithm often closes hard faults the
    /// path-oriented search gives up on, at a bounded extra cost.
    pub escalate_aborts: bool,
    /// Backtrack limit for the D-algorithm escalation retry.
    pub escalation_backtracks: u32,
    /// Per-fault wall-clock budget in milliseconds: when the PODEM
    /// attempt has already consumed the budget, the escalation retry is
    /// skipped and the fault is classified aborted immediately. `0` (the
    /// default) means unlimited. **Wall-clock-based**, so a non-zero
    /// budget can classify differently across machines/runs — leave it
    /// at 0 whenever reproducibility matters (golden tests do).
    pub fault_budget_ms: u64,
    /// Test-only hook, forwarded to
    /// [`dft_logicsim::FaultSim::with_poisoned_fault`]: every
    /// fault-simulation pass panics on this fault's batch, exercising
    /// the panic-isolation path end to end (the run completes; the lost
    /// batches are counted in [`AtpgRun::failed_sim_batches`]). Never
    /// set outside tests.
    pub poison_fault: Option<Fault>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_patterns: 128,
            seed: 0x5EED,
            backtrack_limit: 256,
            compaction: CompactionMode::Static,
            guided_backtrace: true,
            dynamic_targets: 16,
            threads: 0,
            escalate_aborts: true,
            escalation_backtracks: 512,
            fault_budget_ms: 0,
            poison_fault: None,
        }
    }
}

impl AtpgConfig {
    /// The default configuration, as a builder seed: chain the setters
    /// below, e.g. `AtpgConfig::new().random_patterns(64).threads(8)`.
    /// All fields remain public for direct struct updates.
    pub fn new() -> AtpgConfig {
        AtpgConfig::default()
    }

    /// Sets the number of random patterns before deterministic top-off.
    pub fn random_patterns(mut self, n: usize) -> AtpgConfig {
        self.random_patterns = n;
        self
    }

    /// Sets the seed for random patterns and cube fill.
    pub fn seed(mut self, seed: u64) -> AtpgConfig {
        self.seed = seed;
        self
    }

    /// Sets the PODEM backtrack limit per fault.
    pub fn backtrack_limit(mut self, limit: u32) -> AtpgConfig {
        self.backtrack_limit = limit;
        self
    }

    /// Sets the cube compaction mode.
    pub fn compaction(mut self, mode: CompactionMode) -> AtpgConfig {
        self.compaction = mode;
        self
    }

    /// Enables or disables SCOAP-guided backtrace.
    pub fn guided_backtrace(mut self, guided: bool) -> AtpgConfig {
        self.guided_backtrace = guided;
        self
    }

    /// Sets the secondary targets attempted per cube under dynamic
    /// compaction.
    pub fn dynamic_targets(mut self, n: usize) -> AtpgConfig {
        self.dynamic_targets = n;
        self
    }

    /// Sets the fault-simulation worker count (`0` = auto, `1` = serial).
    pub fn threads(mut self, n: usize) -> AtpgConfig {
        self.threads = n;
        self
    }

    /// Enables or disables the D-algorithm escalation retry for
    /// PODEM-aborted faults.
    pub fn escalate_aborts(mut self, on: bool) -> AtpgConfig {
        self.escalate_aborts = on;
        self
    }

    /// Sets the backtrack limit for the D-algorithm escalation retry.
    pub fn escalation_backtracks(mut self, limit: u32) -> AtpgConfig {
        self.escalation_backtracks = limit;
        self
    }

    /// Sets the per-fault wall-clock budget in milliseconds (`0` =
    /// unlimited). See [`AtpgConfig::fault_budget_ms`] for the
    /// reproducibility caveat.
    pub fn fault_budget_ms(mut self, ms: u64) -> AtpgConfig {
        self.fault_budget_ms = ms;
        self
    }

    /// Sets the test-only poisoned fault (see
    /// [`AtpgConfig::poison_fault`]).
    pub fn poison_fault(mut self, fault: Fault) -> AtpgConfig {
        self.poison_fault = Some(fault);
        self
    }
}

/// Counters and results of a full ATPG run.
#[derive(Debug)]
pub struct AtpgRun {
    /// The final pattern set (random keepers + deterministic patterns).
    pub patterns: PatternSet,
    /// Status of every fault in the *full* (uncollapsed) universe after
    /// sign-off fault simulation of `patterns`.
    pub fault_list: FaultList,
    /// Deterministic cubes (post-compaction), for the compression crate.
    pub cubes: Vec<TestCube>,
    /// Faults detected by the random phase (collapsed universe).
    pub random_detected: usize,
    /// Faults detected during deterministic top-off (collapsed universe).
    pub deterministic_detected: usize,
    /// Collapsed faults proven untestable.
    pub untestable: usize,
    /// Collapsed faults aborted at the backtrack limit.
    pub aborted: usize,
    /// PODEM-aborted targets escalated to the D-algorithm retry.
    pub escalated: usize,
    /// Escalated targets the D-algorithm resolved (a confirmed test or
    /// an untestability proof) instead of staying aborted.
    pub rescued: usize,
    /// Fault-simulation batches lost to an isolated worker panic across
    /// every sim pass of the run (see
    /// [`dft_logicsim::SimStats::failed_batches`]). Always zero in a
    /// healthy run.
    pub failed_sim_batches: usize,
    /// Aggregate PODEM effort.
    pub podem: PodemStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Wall-clock time of the random-pattern phase (phase 1).
    pub random_time: Duration,
    /// Wall-clock time of deterministic top-off and compaction (phase 2).
    pub deterministic_time: Duration,
    /// Wall-clock time of the sign-off fault simulation.
    pub signoff_time: Duration,
}

impl AtpgRun {
    /// Test coverage (detected / (total - untestable)) on the full
    /// universe.
    pub fn test_coverage(&self) -> f64 {
        self.fault_list.test_coverage()
    }
}

/// Top-off classification counters, snapshotted and restored as a unit
/// around the compaction rebuild.
#[derive(Debug, Clone, Copy, Default)]
struct TopoffTally {
    untestable: usize,
    aborted: usize,
    escalated: usize,
    rescued: usize,
}

/// The ATPG driver bound to one netlist.
#[derive(Debug)]
pub struct Atpg<'a> {
    nl: &'a Netlist,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl<'a> Atpg<'a> {
    /// Creates a driver for `nl`.
    pub fn new(nl: &'a Netlist) -> Atpg<'a> {
        Atpg {
            nl,
            metrics: MetricsHandle::disabled(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Points run counters, phase timers, and the engines underneath
    /// (PODEM, fault simulation) at `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Atpg<'a> {
        self.metrics = metrics;
        self
    }

    /// Points span recording at `trace`: the run records
    /// `atpg_random`/`atpg_topoff`/`atpg_signoff` phase spans (whose
    /// durations are what [`AtpgRun`] reports, so phase times and trace
    /// spans always agree), sampled per-fault `podem`/`dalg_escalation`
    /// spans, and the fault-simulation spans underneath.
    pub fn with_trace(mut self, trace: TraceHandle) -> Atpg<'a> {
        self.trace = trace;
        self
    }

    /// Runs the full flow on the single stuck-at universe.
    pub fn run(&self, config: &AtpgConfig) -> AtpgRun {
        let universe = universe_stuck_at(self.nl);
        self.run_on(config, universe)
    }

    /// Runs the full flow on a caller-provided stuck-at universe.
    pub fn run_on(&self, config: &AtpgConfig, universe: Vec<Fault>) -> AtpgRun {
        let start = Instant::now();
        let exec = Executor::with_threads(config.threads);
        let collapsed = collapse_equivalent(self.nl, &universe);
        let mut reps = FaultList::new(collapsed.representatives().to_vec());
        let mut sim = FaultSim::new(self.nl)
            .with_metrics(self.metrics.clone())
            .with_trace(self.trace.clone());
        if let Some(poison) = config.poison_fault {
            sim = sim.with_poisoned_fault(poison);
        }
        let sim = sim;
        let mut podem = Podem::new(self.nl);
        podem.guided = config.guided_backtrace;
        podem.set_metrics(self.metrics.clone());
        let mut dalg = DAlgorithm::new(self.nl);
        dalg.set_metrics(self.metrics.clone());
        let mut failed_sim_batches = 0usize;

        let mut patterns = PatternSet::for_netlist(self.nl);

        // Phase 1: random patterns with fault dropping. The phase span
        // is the timing source, so the reported time and the trace span
        // are one measurement.
        let t_random = self.trace.timed_span("atpg_random");
        if config.random_patterns > 0 {
            let random = PatternSet::random(self.nl, config.random_patterns, config.seed);
            failed_sim_batches += sim.run_with(&random, &mut reps, &exec).failed_batches;
            patterns.extend_from(&random);
        }
        let random_detected = reps.num_detected();
        let random_time = t_random.finish();

        // Phase 2: deterministic top-off, then (optionally) static
        // compaction. Compaction re-fills merged cubes with fresh random
        // values, which can lose *collateral* detections of the replaced
        // patterns, so after a rebuild the flow re-simulates and tops off
        // again; the final top-off appends without rebuilding, which
        // guarantees convergence.
        let t_deterministic = self.trace.timed_span("atpg_topoff");
        let mut fault_ordinal = 0u64;
        let mut cubes: Vec<TestCube> = Vec::new();
        let mut podem_stats = PodemStats::default();
        let mut tally = TopoffTally::default();
        let mut fill_seed = config.seed ^ 0xF111;
        let compaction_rounds = if matches!(config.compaction, CompactionMode::None) {
            0
        } else {
            1
        };
        // A complete (patterns, cubes, statuses, counters) state from
        // before the compaction rebuild. Restored as a unit: restoring
        // only the patterns would let rebuild-run abort/untestable
        // classifications leak into the sign-off projection.
        struct Snapshot {
            patterns: PatternSet,
            cubes: Vec<TestCube>,
            reps: FaultList,
            tally: TopoffTally,
        }
        let mut pre_compaction: Option<Snapshot> = None;
        for round in 0..=compaction_rounds {
            self.topoff(
                config,
                &podem,
                &dalg,
                &sim,
                &mut reps,
                &mut patterns,
                &mut cubes,
                &mut podem_stats,
                &mut tally,
                &mut failed_sim_batches,
                &mut fill_seed,
                &mut fault_ordinal,
            );
            if round == compaction_rounds || cubes.is_empty() {
                break;
            }
            let merged = compact_cubes(&cubes);
            if merged.len() == cubes.len() {
                break; // nothing merged: patterns already final
            }
            pre_compaction = Some(Snapshot {
                patterns: patterns.clone(),
                cubes: cubes.clone(),
                reps: reps.clone(),
                tally,
            });
            // Rebuild the pattern set: random prefix + merged cubes.
            let mut rebuilt = PatternSet::for_netlist(self.nl);
            if config.random_patterns > 0 {
                let random = PatternSet::random(self.nl, config.random_patterns, config.seed);
                rebuilt.extend_from(&random);
            }
            for cube in &merged {
                fill_seed = fill_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                rebuilt.push(cube.random_fill(fill_seed));
            }
            patterns = rebuilt;
            cubes = merged;
            // Re-simulate from scratch to find lost collateral detections.
            let mut fresh = FaultList::new(reps.faults().to_vec());
            for i in 0..reps.len() {
                match reps.status(i) {
                    FaultStatus::Untestable => fresh.set_status(i, FaultStatus::Untestable),
                    FaultStatus::Aborted => fresh.set_status(i, FaultStatus::Aborted),
                    _ => {}
                }
            }
            failed_sim_batches += sim.run_with(&patterns, &mut fresh, &exec).failed_batches;
            reps = fresh;
        }
        // Compaction must never make the result worse: keep the rebuilt
        // set only when it is no larger *and* detects at least as many
        // collapsed faults (the re-top-off can abort faults that the
        // pre-compaction set detected). Otherwise restore the snapshot.
        if let Some(snap) = pre_compaction {
            let rebuilt_wins = patterns.len() <= snap.patterns.len()
                && reps.num_detected() >= snap.reps.num_detected();
            if !rebuilt_wins {
                patterns = snap.patterns;
                cubes = snap.cubes;
                reps = snap.reps;
                tally = snap.tally;
            }
        }
        let deterministic_detected = reps.num_detected().saturating_sub(random_detected);
        let deterministic_time = t_deterministic.finish();

        // Sign-off: fault-simulate the final pattern set against the full
        // universe, then project untestable/aborted statuses from the
        // collapsed list.
        let t_signoff = self.trace.timed_span("atpg_signoff");
        let mut fault_list = FaultList::new(universe);
        failed_sim_batches += sim
            .run_with(&patterns, &mut fault_list, &exec)
            .failed_batches;
        for (i, &f) in fault_list.faults().to_vec().iter().enumerate() {
            let rep = collapsed.representative(f);
            if let Some(status) = reps.status_of(rep) {
                match status {
                    FaultStatus::Untestable => fault_list.set_status(i, FaultStatus::Untestable),
                    FaultStatus::Aborted if !fault_list.status(i).is_detected() => {
                        fault_list.set_status(i, FaultStatus::Aborted);
                    }
                    _ => {}
                }
            }
        }

        let signoff_time = t_signoff.finish();
        if let Some(m) = self.metrics.get() {
            m.atpg_runs.inc();
            m.atpg_patterns.add(patterns.len() as u64);
            m.atpg_untestable.add(tally.untestable as u64);
            m.atpg_aborted.add(tally.aborted as u64);
            m.atpg_escalations.add(tally.escalated as u64);
            m.atpg_rescued.add(tally.rescued as u64);
            m.t_atpg_random.record(random_time);
            m.t_atpg_deterministic.record(deterministic_time);
            m.t_atpg_signoff.record(signoff_time);
        }

        AtpgRun {
            patterns,
            fault_list,
            cubes,
            random_detected,
            deterministic_detected,
            untestable: tally.untestable,
            aborted: tally.aborted,
            escalated: tally.escalated,
            rescued: tally.rescued,
            failed_sim_batches,
            podem: podem_stats,
            elapsed: start.elapsed(),
            random_time,
            deterministic_time,
            signoff_time,
        }
    }

    /// One deterministic top-off pass: PODEM every remaining undetected
    /// fault (escalating aborts to the D-algorithm when configured),
    /// fault-dropping each new pattern against the list.
    #[allow(clippy::too_many_arguments)]
    fn topoff(
        &self,
        config: &AtpgConfig,
        podem: &Podem<'_>,
        dalg: &DAlgorithm<'_>,
        sim: &FaultSim<'_>,
        reps: &mut FaultList,
        patterns: &mut PatternSet,
        cubes: &mut Vec<TestCube>,
        podem_stats: &mut PodemStats,
        tally: &mut TopoffTally,
        failed_sim_batches: &mut usize,
        fill_seed: &mut u64,
        fault_ordinal: &mut u64,
    ) {
        loop {
            let target_idx = match reps.undetected().next() {
                Some(i) => i,
                None => break,
            };
            let target = reps.faults()[target_idx];
            // Sampled per-fault span (every_n knob bounds the volume);
            // covers the PODEM attempt and any escalation retry.
            let sampled = self.trace.fault_sampled(*fault_ordinal);
            *fault_ordinal += 1;
            let _fault_span = if sampled {
                Some(self.trace.span_arg("podem", target_idx as u64))
            } else {
                None
            };
            let target_start = Instant::now();
            let (result, st) = podem.generate(target, config.backtrack_limit);
            podem_stats.backtracks += st.backtracks;
            podem_stats.simulations += st.simulations;
            podem_stats.decisions += st.decisions;
            // Escalation: retry a PODEM abort once with the structural
            // D-algorithm (stem faults only — it has no branch-fault
            // model), unless this fault already blew its time budget.
            let mut escalated = false;
            let result = match result {
                AtpgResult::Aborted if config.escalate_aborts && target.site.pin.is_none() => {
                    let within_budget = config.fault_budget_ms == 0
                        || target_start.elapsed().as_millis() < u128::from(config.fault_budget_ms);
                    if within_budget {
                        escalated = true;
                        tally.escalated += 1;
                        let _dalg_span = if sampled {
                            Some(self.trace.span_arg("dalg_escalation", target_idx as u64))
                        } else {
                            None
                        };
                        dalg.generate(target, config.escalation_backtracks)
                    } else {
                        AtpgResult::Aborted
                    }
                }
                other => other,
            };
            match result {
                AtpgResult::Test(mut cube) => {
                    if config.compaction == CompactionMode::Dynamic {
                        cube = self.extend_cube(podem, cube, reps, target_idx, config, podem_stats);
                    }
                    *fill_seed = fill_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                    let pattern = cube.random_fill(*fill_seed);
                    let mut single = PatternSet::for_netlist(self.nl);
                    single.push(pattern.clone());
                    *failed_sim_batches += sim.run(&single, reps).failed_batches;
                    // Guard against a generator/fault-sim disagreement
                    // leaving the target undetected (would loop forever).
                    if !reps.status(target_idx).is_detected() {
                        reps.set_status(target_idx, FaultStatus::Aborted);
                        tally.aborted += 1;
                    } else if escalated {
                        // The D-algorithm produced a sim-confirmed test.
                        tally.rescued += 1;
                    }
                    patterns.push(pattern);
                    cubes.push(cube);
                }
                AtpgResult::Untestable => {
                    reps.set_status(target_idx, FaultStatus::Untestable);
                    tally.untestable += 1;
                    if escalated {
                        tally.rescued += 1;
                    }
                }
                AtpgResult::Aborted => {
                    reps.set_status(target_idx, FaultStatus::Aborted);
                    tally.aborted += 1;
                }
            }
        }
    }

    /// Dynamic compaction: extend `cube` with tests for additional
    /// undetected faults while the merged cube stays consistent.
    fn extend_cube(
        &self,
        podem: &Podem<'_>,
        mut cube: TestCube,
        reps: &FaultList,
        primary_idx: usize,
        config: &AtpgConfig,
        stats: &mut PodemStats,
    ) -> TestCube {
        let mut tried = 0usize;
        for idx in reps.undetected() {
            if idx == primary_idx {
                continue;
            }
            if tried >= config.dynamic_targets {
                break;
            }
            tried += 1;
            let secondary = reps.faults()[idx];
            // A short-leash attempt: secondary targets must be cheap.
            let limit = (config.backtrack_limit / 8).max(8);
            let (result, st) = podem.generate_constrained(secondary, &[], limit, Some(&cube));
            stats.backtracks += st.backtracks;
            stats.simulations += st.simulations;
            stats.decisions += st.decisions;
            if let AtpgResult::Test(extended) = result {
                cube = extended;
            }
        }
        cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::{alu, c17, decoder, mac_pe, ripple_adder, s27};

    #[test]
    fn c17_full_coverage_few_patterns() {
        let nl = c17();
        let run = Atpg::new(&nl).run(&AtpgConfig {
            random_patterns: 0, // pure deterministic
            ..AtpgConfig::default()
        });
        assert!((run.test_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(run.untestable, 0);
        assert_eq!(run.aborted, 0);
        // Deterministic c17 test sets are classically under 10 patterns.
        assert!(run.patterns.len() <= 12, "{} patterns", run.patterns.len());
    }

    #[test]
    fn decoder_needs_topoff_after_random() {
        let nl = decoder(5);
        let cfg = AtpgConfig {
            random_patterns: 32,
            ..AtpgConfig::default()
        };
        let run = Atpg::new(&nl).run(&cfg);
        assert!(
            run.deterministic_detected > 0,
            "decoder should be random-resistant"
        );
        assert!((run.test_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_logic_is_classified_untestable() {
        use dft_netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and = nl.add_gate(GateKind::And, vec![a, b], "and");
        let or = nl.add_gate(GateKind::Or, vec![a, and], "or");
        nl.add_output(or, "po");
        let run = Atpg::new(&nl).run(&AtpgConfig::default());
        assert!(run.untestable >= 1);
        // Test coverage can still be 100% (untestable excluded).
        assert!((run.test_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn static_compaction_reduces_pattern_count() {
        let nl = alu(8);
        let base = AtpgConfig {
            random_patterns: 0,
            compaction: CompactionMode::None,
            ..AtpgConfig::default()
        };
        let run_none = Atpg::new(&nl).run(&base);
        let run_static = Atpg::new(&nl).run(&AtpgConfig {
            compaction: CompactionMode::Static,
            ..base.clone()
        });
        // Compaction may be a wash on cube-dense circuits but must never
        // make the set larger (the driver falls back if it would).
        assert!(
            run_static.patterns.len() <= run_none.patterns.len(),
            "static {} vs none {}",
            run_static.patterns.len(),
            run_none.patterns.len()
        );
        assert!(run_static.test_coverage() >= run_none.test_coverage() - 1e-9);
    }

    #[test]
    fn dynamic_compaction_beats_none() {
        let nl = ripple_adder(8);
        let base = AtpgConfig {
            random_patterns: 0,
            ..AtpgConfig::default()
        };
        let run_dyn = Atpg::new(&nl).run(&AtpgConfig {
            compaction: CompactionMode::Dynamic,
            ..base.clone()
        });
        let run_none = Atpg::new(&nl).run(&AtpgConfig {
            compaction: CompactionMode::None,
            ..base
        });
        assert!(run_dyn.patterns.len() <= run_none.patterns.len());
        assert!((run_dyn.test_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_s27_full_scan_coverage() {
        let nl = s27();
        let run = Atpg::new(&nl).run(&AtpgConfig::default());
        assert!(
            run.test_coverage() > 0.99,
            "s27 coverage {}",
            run.test_coverage()
        );
    }

    #[test]
    fn escalation_rescues_aborted_stem_faults() {
        // A tight PODEM leash forces aborts; the D-algorithm retry at its
        // own (default) limit should resolve at least some of them.
        let nl = mac_pe(4);
        let tight = AtpgConfig {
            backtrack_limit: 4,
            escalate_aborts: false,
            ..AtpgConfig::default()
        };
        let off = Atpg::new(&nl).run(&tight);
        assert_eq!(off.escalated, 0);
        assert_eq!(off.rescued, 0);
        assert!(off.aborted > 0, "leash too loose for this test");
        let on = Atpg::new(&nl).run(&AtpgConfig {
            escalate_aborts: true,
            ..tight
        });
        assert!(on.escalated > 0);
        assert!(on.rescued > 0, "D-algorithm rescued nothing");
        assert!(on.rescued <= on.escalated);
        assert!(
            on.test_coverage() >= off.test_coverage(),
            "escalation lowered coverage: {} < {}",
            on.test_coverage(),
            off.test_coverage()
        );
    }

    #[test]
    fn zero_fault_budget_means_unlimited_escalation() {
        let nl = ripple_adder(4);
        let run = Atpg::new(&nl).run(&AtpgConfig::default().fault_budget_ms(0));
        assert!((run.test_coverage() - 1.0).abs() < 1e-9);
        assert_eq!(run.failed_sim_batches, 0);
    }

    #[test]
    fn poisoned_sim_batch_does_not_abort_the_run() {
        let nl = ripple_adder(4);
        let universe = universe_stuck_at(&nl);
        let poison = universe[3];
        let clean = Atpg::new(&nl).run(&AtpgConfig::default());
        assert_eq!(clean.failed_sim_batches, 0);
        // The poisoned run must complete and report the lost batches.
        let run = Atpg::new(&nl).run(&AtpgConfig::default().poison_fault(poison));
        assert!(run.failed_sim_batches > 0);
        // Everything except the poisoned fault still gets tested.
        let detected = run
            .fault_list
            .faults()
            .iter()
            .enumerate()
            .filter(|&(i, _)| run.fault_list.status(i).is_detected())
            .count();
        assert!(detected >= clean.fault_list.len() - 2);
    }

    #[test]
    fn mac_pe_signoff() {
        let nl = mac_pe(4);
        let run = Atpg::new(&nl).run(&AtpgConfig::default());
        assert!(
            run.test_coverage() > 0.98,
            "mac coverage {} aborted {}",
            run.test_coverage(),
            run.aborted
        );
    }
}
