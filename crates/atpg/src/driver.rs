//! The production-shaped ATPG flow: random phase, deterministic top-off,
//! compaction, and sign-off fault simulation.
//!
//! Two entry points share one engine. [`Atpg::run`] is the plain flow —
//! infallible, no durability overhead. [`Atpg::run_durable`] layers
//! durable execution on top: a [`dft_checkpoint::CancelToken`] polled at
//! fault boundaries, per-phase deadlines, periodic `aidft-ckpt-v1`
//! journal checkpoints, and resume from a prior checkpoint that replays
//! to a **bit-identical** final result. Checkpoints are only ever taken
//! at consistent boundaries (between faults, between phases); an
//! interrupted fault-simulation pass is wholly discarded, so a resumed
//! run re-executes it deterministically.

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dft_checkpoint::{
    fnv1a, CancelToken, ChaosConfig, ChaosSite, CkptError, CkptPhase, CkptSection, CkptState,
    CkptStatus, Journal,
};
use dft_fault::{collapse_equivalent, universe_stuck_at, Fault, FaultList, FaultStatus};
use dft_logicsim::{AnyKernel, Executor, PatternSet, SimKernel, TestCube};
use dft_metrics::MetricsHandle;
use dft_netlist::Netlist;
use dft_trace::TraceHandle;

use crate::{compact_cubes, AtpgResult, DAlgorithm, Podem, PodemStats};

/// How the driver compacts deterministic cubes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionMode {
    /// One pattern per generated cube.
    None,
    /// Greedy merging of compatible cubes after generation.
    #[default]
    Static,
    /// Multi-target cube filling during generation (each cube is extended
    /// with tests for additional faults before fill), then static merging.
    Dynamic,
}

/// Configuration of an ATPG run.
#[derive(Debug, Clone)]
pub struct AtpgConfig {
    /// Number of random patterns simulated before deterministic top-off.
    /// Zero disables the random phase.
    pub random_patterns: usize,
    /// Seed for random patterns and cube fill.
    pub seed: u64,
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: u32,
    /// Cube compaction mode.
    pub compaction: CompactionMode,
    /// Use SCOAP-guided backtrace (`false` = naive; the E3 ablation).
    pub guided_backtrace: bool,
    /// Secondary targets attempted per cube under dynamic compaction.
    pub dynamic_targets: usize,
    /// Worker threads for the fault-simulation phases: `0` = one per
    /// hardware thread, `1` = serial. Any value produces bit-identical
    /// results (see [`dft_logicsim::Executor`]).
    pub threads: usize,
    /// Retry a PODEM-aborted fault once with the D-algorithm (at
    /// [`AtpgConfig::escalation_backtracks`]) before classifying it
    /// aborted. The structural D-algorithm often closes hard faults the
    /// path-oriented search gives up on, at a bounded extra cost.
    pub escalate_aborts: bool,
    /// Backtrack limit for the D-algorithm escalation retry.
    pub escalation_backtracks: u32,
    /// Per-fault wall-clock budget in milliseconds: when the PODEM
    /// attempt has already consumed the budget, the escalation retry is
    /// skipped and the fault is classified aborted immediately. `0` (the
    /// default) means unlimited. **Wall-clock-based**, so a non-zero
    /// budget can classify differently across machines/runs — leave it
    /// at 0 whenever reproducibility matters (golden tests do).
    pub fault_budget_ms: u64,
    /// Per-phase wall-clock deadline in milliseconds for durable runs
    /// (`0` = none). Each phase — random, top-off, sign-off — re-arms
    /// the deadline on entry; when it expires the run drains
    /// cooperatively at the next fault boundary, writes a checkpoint,
    /// and returns [`AtpgError::Interrupted`] with
    /// [`AtpgInterrupt::deadline`] set. Ignored by the plain
    /// [`Atpg::run`], and deliberately excluded from
    /// [`AtpgConfig::fingerprint`] so a resumed run may use a different
    /// (or no) deadline.
    pub deadline_ms: u64,
    /// Test-only hook, forwarded to
    /// [`dft_logicsim::FaultSim::with_poisoned_fault`]: every
    /// fault-simulation pass panics on this fault's batch, exercising
    /// the panic-isolation path end to end (the run completes; the lost
    /// batches are counted in [`AtpgRun::failed_sim_batches`]). Never
    /// set outside tests.
    pub poison_fault: Option<Fault>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_patterns: 128,
            seed: 0x5EED,
            backtrack_limit: 256,
            compaction: CompactionMode::Static,
            guided_backtrace: true,
            dynamic_targets: 16,
            threads: 0,
            escalate_aborts: true,
            escalation_backtracks: 512,
            fault_budget_ms: 0,
            deadline_ms: 0,
            poison_fault: None,
        }
    }
}

impl AtpgConfig {
    /// The default configuration, as a builder seed: chain the setters
    /// below, e.g. `AtpgConfig::new().random_patterns(64).threads(8)`.
    /// All fields remain public for direct struct updates.
    pub fn new() -> AtpgConfig {
        AtpgConfig::default()
    }

    /// Sets the number of random patterns before deterministic top-off.
    pub fn random_patterns(mut self, n: usize) -> AtpgConfig {
        self.random_patterns = n;
        self
    }

    /// Sets the seed for random patterns and cube fill.
    pub fn seed(mut self, seed: u64) -> AtpgConfig {
        self.seed = seed;
        self
    }

    /// Sets the PODEM backtrack limit per fault.
    pub fn backtrack_limit(mut self, limit: u32) -> AtpgConfig {
        self.backtrack_limit = limit;
        self
    }

    /// Sets the cube compaction mode.
    pub fn compaction(mut self, mode: CompactionMode) -> AtpgConfig {
        self.compaction = mode;
        self
    }

    /// Enables or disables SCOAP-guided backtrace.
    pub fn guided_backtrace(mut self, guided: bool) -> AtpgConfig {
        self.guided_backtrace = guided;
        self
    }

    /// Sets the secondary targets attempted per cube under dynamic
    /// compaction.
    pub fn dynamic_targets(mut self, n: usize) -> AtpgConfig {
        self.dynamic_targets = n;
        self
    }

    /// Sets the fault-simulation worker count (`0` = auto, `1` = serial).
    pub fn threads(mut self, n: usize) -> AtpgConfig {
        self.threads = n;
        self
    }

    /// Enables or disables the D-algorithm escalation retry for
    /// PODEM-aborted faults.
    pub fn escalate_aborts(mut self, on: bool) -> AtpgConfig {
        self.escalate_aborts = on;
        self
    }

    /// Sets the backtrack limit for the D-algorithm escalation retry.
    pub fn escalation_backtracks(mut self, limit: u32) -> AtpgConfig {
        self.escalation_backtracks = limit;
        self
    }

    /// Sets the per-fault wall-clock budget in milliseconds (`0` =
    /// unlimited). See [`AtpgConfig::fault_budget_ms`] for the
    /// reproducibility caveat.
    pub fn fault_budget_ms(mut self, ms: u64) -> AtpgConfig {
        self.fault_budget_ms = ms;
        self
    }

    /// Sets the per-phase deadline in milliseconds for durable runs
    /// (`0` = none). See [`AtpgConfig::deadline_ms`].
    pub fn deadline_ms(mut self, ms: u64) -> AtpgConfig {
        self.deadline_ms = ms;
        self
    }

    /// Sets the test-only poisoned fault (see
    /// [`AtpgConfig::poison_fault`]).
    pub fn poison_fault(mut self, fault: Fault) -> AtpgConfig {
        self.poison_fault = Some(fault);
        self
    }

    /// FNV-1a fingerprint of every knob that affects the *result* of a
    /// run, plus the design name and fault-universe size. Stored in each
    /// checkpoint; resume refuses a mismatch, because replaying with a
    /// different seed or search limit would silently diverge from the
    /// original run. Durability-only knobs (`threads`, `deadline_ms`,
    /// and the checkpoint cadence) are excluded — any thread count
    /// produces bit-identical results, and a resumed run may legitimately
    /// drop the deadline that interrupted it.
    pub fn fingerprint(&self, design: &str, universe_len: usize) -> u64 {
        let text = format!(
            "{design}|{universe_len}|{}|{}|{}|{:?}|{}|{}|{}|{}|{}",
            self.random_patterns,
            self.seed,
            self.backtrack_limit,
            self.compaction,
            self.guided_backtrace,
            self.dynamic_targets,
            self.escalate_aborts,
            self.escalation_backtracks,
            self.fault_budget_ms
        );
        fnv1a(text.as_bytes())
    }
}

/// Counters and results of a full ATPG run.
#[derive(Debug)]
pub struct AtpgRun {
    /// The final pattern set (random keepers + deterministic patterns).
    pub patterns: PatternSet,
    /// Status of every fault in the *full* (uncollapsed) universe after
    /// sign-off fault simulation of `patterns`.
    pub fault_list: FaultList,
    /// Deterministic cubes (post-compaction), for the compression crate.
    pub cubes: Vec<TestCube>,
    /// Faults detected by the random phase (collapsed universe).
    pub random_detected: usize,
    /// Faults detected during deterministic top-off (collapsed universe).
    pub deterministic_detected: usize,
    /// Collapsed faults proven untestable.
    pub untestable: usize,
    /// Collapsed faults aborted at the backtrack limit.
    pub aborted: usize,
    /// PODEM-aborted targets escalated to the D-algorithm retry.
    pub escalated: usize,
    /// Escalated targets the D-algorithm resolved (a confirmed test or
    /// an untestability proof) instead of staying aborted.
    pub rescued: usize,
    /// Fault-simulation batches lost to an isolated worker panic across
    /// every sim pass of the run (see
    /// [`dft_logicsim::SimStats::failed_batches`]). Always zero in a
    /// healthy run.
    pub failed_sim_batches: usize,
    /// Aggregate PODEM effort.
    pub podem: PodemStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Wall-clock time spent compiling the simulation kernel (tape
    /// levelization and layout; paid once per run, before phase 1).
    pub compile_time: Duration,
    /// Wall-clock time of the random-pattern phase (phase 1).
    pub random_time: Duration,
    /// Wall-clock time of deterministic top-off and compaction (phase 2).
    pub deterministic_time: Duration,
    /// Wall-clock time of the sign-off fault simulation.
    pub signoff_time: Duration,
}

impl AtpgRun {
    /// Test coverage (detected / (total - untestable)) on the full
    /// universe.
    pub fn test_coverage(&self) -> f64 {
        self.fault_list.test_coverage()
    }
}

/// Top-off classification counters, snapshotted and restored as a unit
/// around the compaction rebuild (and around each fault under durable
/// execution).
#[derive(Debug, Clone, Copy, Default)]
struct TopoffTally {
    untestable: usize,
    aborted: usize,
    escalated: usize,
    rescued: usize,
}

impl TopoffTally {
    fn to_array(self) -> [u64; 4] {
        [
            self.untestable as u64,
            self.aborted as u64,
            self.escalated as u64,
            self.rescued as u64,
        ]
    }

    fn from_array(a: [u64; 4]) -> TopoffTally {
        TopoffTally {
            untestable: a[0] as usize,
            aborted: a[1] as usize,
            escalated: a[2] as usize,
            rescued: a[3] as usize,
        }
    }
}

/// Durable-execution controls for [`Atpg::run_durable`]: the
/// cancellation token, the checkpoint journal and cadence, the chaos
/// harness, and an optional checkpoint to resume from.
#[derive(Debug)]
pub struct Durability {
    cancel: CancelToken,
    journal: Option<Journal>,
    /// Checkpoint cadence: a record every N top-off faults (0 = phase
    /// boundaries only).
    every_faults: u64,
    chaos: Option<ChaosConfig>,
    resume: Option<CkptState>,
    seq: u64,
    has_record: bool,
    write_failures: u64,
}

impl Default for Durability {
    fn default() -> Durability {
        Durability::new(CancelToken::new())
    }
}

impl Durability {
    /// Durability with `cancel` as the interrupt source, no journal, and
    /// the default checkpoint cadence (every 64 top-off faults once a
    /// journal is attached).
    pub fn new(cancel: CancelToken) -> Durability {
        Durability {
            cancel,
            journal: None,
            every_faults: 64,
            chaos: None,
            resume: None,
            seq: 0,
            has_record: false,
            write_failures: 0,
        }
    }

    /// Attaches an `aidft-ckpt-v1` journal; the run appends periodic
    /// checkpoints and a final record on interruption.
    pub fn with_journal(mut self, journal: Journal) -> Durability {
        self.journal = Some(journal);
        self
    }

    /// Sets the checkpoint cadence in top-off faults (`0` = checkpoints
    /// only at phase boundaries and on interruption).
    pub fn checkpoint_every(mut self, faults: u64) -> Durability {
        self.every_faults = faults;
        self
    }

    /// Attaches the chaos harness: checkpoint-write failures and
    /// deadline clock skips inject here; worker panics and batch delays
    /// are forwarded to the fault simulator.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Durability {
        self.chaos = chaos.is_active().then_some(chaos);
        self
    }

    /// Resumes from `state` (typically
    /// [`Journal::load_last`]) instead of starting fresh. The run
    /// verifies the design name and configuration fingerprint before
    /// touching any state and refuses a mismatch with
    /// [`AtpgError::Resume`].
    pub fn resume_from(mut self, state: CkptState) -> Durability {
        self.resume = Some(state);
        self
    }

    /// The shared cancellation token (clone it into signal handlers).
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// Checkpoint writes that failed (chaos-injected or real I/O). The
    /// run continues past a failed periodic write — the journal still
    /// holds the previous record.
    pub fn checkpoint_write_failures(&self) -> u64 {
        self.write_failures
    }
}

/// What an interrupted durable run managed to save.
#[derive(Debug)]
pub struct AtpgInterrupt {
    /// Journal holding a complete resume checkpoint, when one was
    /// written. `None` when the run had no journal or every final write
    /// attempt failed.
    pub checkpoint: Option<PathBuf>,
    /// `true` when a phase deadline (rather than an explicit cancel)
    /// fired the token.
    pub deadline: bool,
    /// Patterns accumulated at the interrupt point.
    pub patterns: usize,
    /// Collapsed faults detected at the interrupt point.
    pub detected: usize,
    /// Size of the collapsed fault list.
    pub total_faults: usize,
    /// Phase that observed the interrupt: `random`, `topoff`, or
    /// `signoff`.
    pub phase: &'static str,
}

/// Why a durable run returned early.
#[derive(Debug)]
pub enum AtpgError {
    /// The cancellation token fired (signal or phase deadline); the run
    /// drained cleanly at a fault boundary and checkpointed.
    Interrupted(AtpgInterrupt),
    /// The resume checkpoint could not be used (wrong design, wrong
    /// configuration, or wrong shape).
    Resume(CkptError),
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::Interrupted(i) => {
                let cause = if i.deadline {
                    "phase deadline"
                } else {
                    "cancelled"
                };
                write!(
                    f,
                    "ATPG interrupted in {} phase ({}): {}/{} faults detected, {} patterns",
                    i.phase, cause, i.detected, i.total_faults, i.patterns
                )?;
                match &i.checkpoint {
                    Some(path) => write!(f, "; checkpoint at {}", path.display()),
                    None => write!(f, "; no checkpoint written"),
                }
            }
            AtpgError::Resume(e) => write!(f, "cannot resume: {e}"),
        }
    }
}

impl std::error::Error for AtpgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtpgError::Resume(e) => Some(e),
            AtpgError::Interrupted(_) => None,
        }
    }
}

/// The mutable frontier of a run — everything a checkpoint must capture
/// and a resume must restore.
struct Working {
    reps: FaultList,
    patterns: PatternSet,
    cubes: Vec<TestCube>,
    tally: TopoffTally,
    fill_seed: u64,
    fault_ordinal: u64,
    random_detected: usize,
    podem_stats: PodemStats,
    failed_sim_batches: usize,
}

/// A complete (patterns, cubes, statuses, counters) state from before
/// the compaction rebuild. Restored as a unit: restoring only the
/// patterns would let rebuild-run abort/untestable classifications leak
/// into the sign-off projection.
struct Snapshot {
    patterns: PatternSet,
    cubes: Vec<TestCube>,
    reps: FaultList,
    tally: TopoffTally,
}

fn section_of(
    reps: &FaultList,
    patterns: &PatternSet,
    cubes: &[TestCube],
    tally: TopoffTally,
) -> CkptSection {
    CkptSection {
        statuses: (0..reps.len())
            .map(|i| match reps.status(i) {
                FaultStatus::Undetected => CkptStatus::Undetected,
                FaultStatus::Detected(p) => CkptStatus::Detected(p),
                FaultStatus::Untestable => CkptStatus::Untestable,
                FaultStatus::Aborted => CkptStatus::Aborted,
            })
            .collect(),
        patterns: patterns.iter().cloned().collect(),
        cubes: cubes.iter().map(|c| c.bits().to_vec()).collect(),
        tally: tally.to_array(),
    }
}

fn restore_section(
    faults: &[Fault],
    width: usize,
    s: &CkptSection,
) -> (FaultList, PatternSet, Vec<TestCube>, TopoffTally) {
    let mut reps = FaultList::new(faults.to_vec());
    for (i, st) in s.statuses.iter().enumerate() {
        match *st {
            CkptStatus::Undetected => {}
            CkptStatus::Detected(p) => reps.mark_detected(i, p),
            CkptStatus::Untestable => reps.set_status(i, FaultStatus::Untestable),
            CkptStatus::Aborted => reps.set_status(i, FaultStatus::Aborted),
        }
    }
    let mut patterns = PatternSet::new(width);
    for p in &s.patterns {
        patterns.push(p.clone());
    }
    let cubes = s
        .cubes
        .iter()
        .map(|c| TestCube::from_bits(c.clone()))
        .collect();
    (reps, patterns, cubes, TopoffTally::from_array(s.tally))
}

/// Per-run durable context: the caller's [`Durability`] plus the run
/// identity a checkpoint records.
struct DurCtx<'d> {
    d: &'d mut Durability,
    design: String,
    config_hash: u64,
    seed: u64,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl DurCtx<'_> {
    fn state_of(&self, phase: CkptPhase, w: &Working, pre: Option<&Snapshot>) -> CkptState {
        CkptState {
            design: self.design.clone(),
            config_hash: self.config_hash,
            phase,
            seed: self.seed,
            fill_seed: w.fill_seed,
            fault_ordinal: w.fault_ordinal,
            random_detected: w.random_detected as u64,
            width: w.patterns.width(),
            main: section_of(&w.reps, &w.patterns, &w.cubes, w.tally),
            pre_compaction: pre.map(|s| section_of(&s.reps, &s.patterns, &s.cubes, s.tally)),
        }
    }

    /// Appends one checkpoint record. Returns `true` on success; a
    /// failed write is counted and survived — the journal still holds
    /// the previous record.
    fn write(&mut self, phase: CkptPhase, w: &Working, pre: Option<&Snapshot>) -> bool {
        let Some(journal) = self.d.journal.clone() else {
            return false;
        };
        self.d.seq += 1;
        let seq = self.d.seq;
        let _span = self.trace.span_arg("ckpt_write", seq);
        if let Some(chaos) = self.d.chaos {
            if chaos.fires(ChaosSite::ClockSkip, seq) {
                self.d.cancel.skip_clock(chaos.clock_skip);
                if let Some(m) = self.metrics.get() {
                    m.chaos_clock_skips.inc();
                }
            }
        }
        let state = self.state_of(phase, w, pre);
        let torn = self
            .d
            .chaos
            .is_some_and(|c| c.fires(ChaosSite::CkptIo, seq));
        let t0 = Instant::now();
        let result = if torn {
            journal.append_torn(&state, seq)
        } else {
            journal.append(&state, seq)
        };
        match result {
            Ok(bytes) => {
                self.d.has_record = true;
                if let Some(m) = self.metrics.get() {
                    m.ckpt_writes.inc();
                    m.ckpt_bytes.add(bytes);
                    m.t_ckpt_write.record(t0.elapsed());
                }
                true
            }
            Err(_) => {
                self.d.write_failures += 1;
                if let Some(m) = self.metrics.get() {
                    m.ckpt_write_failures.inc();
                }
                false
            }
        }
    }

    /// The interrupt-time record must land if at all possible: retry a
    /// few times, each attempt under a fresh sequence number (so a
    /// chaos-injected I/O failure rolls fresh dice).
    fn write_final(&mut self, phase: CkptPhase, w: &Working, pre: Option<&Snapshot>) {
        if self.d.journal.is_none() {
            return;
        }
        for _ in 0..3 {
            if self.write(phase, w, pre) {
                return;
            }
        }
    }

    /// Builds the interrupt error for a drained run: writes the final
    /// checkpoint and reports where (and why) the run stopped.
    fn interrupt(
        &mut self,
        phase_name: &'static str,
        ckpt_phase: CkptPhase,
        w: &Working,
        pre: Option<&Snapshot>,
    ) -> AtpgError {
        if let Some(m) = self.metrics.get() {
            m.cancel_requests.inc();
        }
        self.write_final(ckpt_phase, w, pre);
        AtpgError::Interrupted(AtpgInterrupt {
            checkpoint: if self.d.has_record {
                self.d.journal.as_ref().map(|j| j.path().to_path_buf())
            } else {
                None
            },
            deadline: self.d.cancel.deadline_exceeded(),
            patterns: w.patterns.len(),
            detected: w.reps.num_detected(),
            total_faults: w.reps.len(),
            phase: phase_name,
        })
    }
}

/// Arms the per-phase deadline on phase entry (no-op for plain runs or
/// a zero budget).
fn arm(dur: &mut Option<DurCtx<'_>>, ms: u64) {
    if ms == 0 {
        return;
    }
    if let Some(ctx) = dur {
        ctx.d.cancel.arm_deadline(Duration::from_millis(ms));
    }
}

/// Builds the interrupt error at a drain point. The `None` arm is
/// unreachable in practice (only durable runs carry a cancellation
/// source) but keeps the engine panic-free by construction.
fn interrupted(
    dur: &mut Option<DurCtx<'_>>,
    phase: &'static str,
    ckpt: CkptPhase,
    w: &Working,
    pre: Option<&Snapshot>,
) -> AtpgError {
    match dur.as_mut() {
        Some(ctx) => ctx.interrupt(phase, ckpt, w, pre),
        None => AtpgError::Interrupted(AtpgInterrupt {
            checkpoint: None,
            deadline: false,
            patterns: w.patterns.len(),
            detected: w.reps.num_detected(),
            total_faults: w.reps.len(),
            phase,
        }),
    }
}

/// The ATPG driver bound to one netlist.
#[derive(Debug)]
pub struct Atpg<'a> {
    nl: &'a Netlist,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl<'a> Atpg<'a> {
    /// Creates a driver for `nl`.
    pub fn new(nl: &'a Netlist) -> Atpg<'a> {
        Atpg {
            nl,
            metrics: MetricsHandle::disabled(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Points run counters, phase timers, and the engines underneath
    /// (PODEM, fault simulation) at `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Atpg<'a> {
        self.metrics = metrics;
        self
    }

    /// Points span recording at `trace`: the run records
    /// `atpg_random`/`atpg_topoff`/`atpg_signoff` phase spans (whose
    /// durations are what [`AtpgRun`] reports, so phase times and trace
    /// spans always agree), sampled per-fault `podem`/`dalg_escalation`
    /// spans, and the fault-simulation spans underneath. Durable runs
    /// add a `ckpt_write` span per journal append.
    pub fn with_trace(mut self, trace: TraceHandle) -> Atpg<'a> {
        self.trace = trace;
        self
    }

    /// Runs the full flow on the single stuck-at universe.
    pub fn run(&self, config: &AtpgConfig) -> AtpgRun {
        let universe = universe_stuck_at(self.nl);
        self.run_on(config, universe)
    }

    /// Runs the full flow on a caller-provided stuck-at universe.
    pub fn run_on(&self, config: &AtpgConfig, universe: Vec<Fault>) -> AtpgRun {
        match self.run_inner(config, universe, None) {
            Ok(run) => run,
            // A plain run has no cancellation source and no resume
            // state, so neither error can occur.
            Err(e) => unreachable!("plain ATPG run cannot fail: {e}"),
        }
    }

    /// Runs the full flow durably on the single stuck-at universe: the
    /// token in `dur` is polled at fault boundaries, phase deadlines
    /// apply, checkpoints stream to the journal, and a fired token
    /// drains the run into [`AtpgError::Interrupted`]. A run resumed
    /// via [`Durability::resume_from`] replays to a result
    /// bit-identical to the uninterrupted run.
    pub fn run_durable(
        &self,
        config: &AtpgConfig,
        dur: &mut Durability,
    ) -> Result<AtpgRun, AtpgError> {
        let universe = universe_stuck_at(self.nl);
        self.run_durable_on(config, universe, dur)
    }

    /// [`Atpg::run_durable`] on a caller-provided stuck-at universe.
    pub fn run_durable_on(
        &self,
        config: &AtpgConfig,
        universe: Vec<Fault>,
        dur: &mut Durability,
    ) -> Result<AtpgRun, AtpgError> {
        let ctx = DurCtx {
            design: self.nl.name().to_owned(),
            config_hash: config.fingerprint(self.nl.name(), universe.len()),
            seed: config.seed,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
            d: dur,
        };
        self.run_inner(config, universe, Some(ctx))
    }

    /// The engine behind both entry points. `dur == None` is the plain
    /// flow — no polling, no checkpoints, infallible.
    fn run_inner(
        &self,
        config: &AtpgConfig,
        universe: Vec<Fault>,
        mut dur: Option<DurCtx<'_>>,
    ) -> Result<AtpgRun, AtpgError> {
        let start = Instant::now();
        let exec = Executor::with_threads(config.threads);
        let collapsed = collapse_equivalent(self.nl, &universe);
        // Compile the simulation kernel once per run; the span is the
        // timing source for the reported compile phase.
        let t_compile = self.trace.timed_span("sim_compile");
        let compiled = AnyKernel::compile(self.nl);
        let compile_time = t_compile.finish();
        let mut sim = compiled
            .with_metrics(self.metrics.clone())
            .with_trace(self.trace.clone());
        if let Some(poison) = config.poison_fault {
            sim = sim.with_poisoned_fault(poison);
        }
        if let Some(ctx) = &dur {
            sim = sim.with_cancel(ctx.d.cancel.clone());
            if let Some(chaos) = ctx.d.chaos {
                sim = sim.with_chaos(chaos);
            }
        }
        let sim = sim;
        let mut podem = Podem::new(self.nl);
        podem.guided = config.guided_backtrace;
        podem.set_metrics(self.metrics.clone());
        let mut dalg = DAlgorithm::new(self.nl);
        dalg.set_metrics(self.metrics.clone());
        if let Some(ctx) = &dur {
            podem.set_cancel(ctx.d.cancel.clone());
            dalg.set_cancel(ctx.d.cancel.clone());
        }

        let mut w = Working {
            reps: FaultList::new(collapsed.representatives().to_vec()),
            patterns: PatternSet::for_netlist(self.nl),
            cubes: Vec::new(),
            tally: TopoffTally::default(),
            fill_seed: config.seed ^ 0xF111,
            fault_ordinal: 0,
            random_detected: 0,
            podem_stats: PodemStats::default(),
            failed_sim_batches: 0,
        };

        // Resume: verify the checkpoint's identity, then restore the
        // frontier. `Init` means nothing durable happened before the
        // interrupt — rerun from scratch.
        let mut resume_round = 0u32;
        let mut resume_signoff = false;
        let mut restored = false;
        let mut pre_compaction: Option<Snapshot> = None;
        if let Some(ctx) = &mut dur {
            if let Some(state) = ctx.d.resume.take() {
                state
                    .verify(&ctx.design, ctx.config_hash)
                    .map_err(AtpgError::Resume)?;
                if state.main.statuses.len() != w.reps.len() || state.width != w.patterns.width() {
                    return Err(AtpgError::Resume(CkptError::Mismatch {
                        what: "shape",
                        expected: format!(
                            "{} faults x {} bits",
                            state.main.statuses.len(),
                            state.width
                        ),
                        found: format!("{} faults x {} bits", w.reps.len(), w.patterns.width()),
                    }));
                }
                match state.phase {
                    CkptPhase::Init => {}
                    phase => {
                        let (reps, patterns, cubes, tally) =
                            restore_section(collapsed.representatives(), state.width, &state.main);
                        w.reps = reps;
                        w.patterns = patterns;
                        w.cubes = cubes;
                        w.tally = tally;
                        w.fill_seed = state.fill_seed;
                        w.fault_ordinal = state.fault_ordinal;
                        w.random_detected = state.random_detected as usize;
                        pre_compaction = state.pre_compaction.as_ref().map(|pre| {
                            let (reps, patterns, cubes, tally) =
                                restore_section(collapsed.representatives(), state.width, pre);
                            Snapshot {
                                patterns,
                                cubes,
                                reps,
                                tally,
                            }
                        });
                        match phase {
                            CkptPhase::Topoff(r) => resume_round = r,
                            CkptPhase::Signoff => resume_signoff = true,
                            CkptPhase::Init => unreachable!(),
                        }
                        restored = true;
                    }
                }
                ctx.d.has_record = true;
                if let Some(m) = self.metrics.get() {
                    m.ckpt_resumes.inc();
                }
            }
        }

        // Phase 1: random patterns with fault dropping. The phase span
        // is the timing source, so the reported time and the trace span
        // are one measurement. Skipped on resume — the checkpointed
        // frontier already includes the random-phase detections.
        let t_random = self.trace.timed_span("atpg_random");
        if !restored {
            arm(&mut dur, config.deadline_ms);
            if config.random_patterns > 0 {
                let random = PatternSet::random(self.nl, config.random_patterns, config.seed);
                let stats = sim.fault_batch(&random, &mut w.reps, &exec);
                w.failed_sim_batches += stats.failed_batches;
                if stats.interrupted {
                    // The interrupted pass marked nothing, so the state
                    // is still the pristine Init state.
                    return Err(interrupted(&mut dur, "random", CkptPhase::Init, &w, None));
                }
                w.patterns.extend_from(&random);
            }
            w.random_detected = w.reps.num_detected();
        }
        let random_time = t_random.finish();

        // Phase 2: deterministic top-off, then (optionally) static
        // compaction. Compaction re-fills merged cubes with fresh random
        // values, which can lose *collateral* detections of the replaced
        // patterns, so after a rebuild the flow re-simulates and tops off
        // again; the final top-off appends without rebuilding, which
        // guarantees convergence.
        let t_deterministic = self.trace.timed_span("atpg_topoff");
        arm(&mut dur, config.deadline_ms);
        let compaction_rounds = if matches!(config.compaction, CompactionMode::None) {
            0
        } else {
            1
        };
        if !resume_signoff {
            for round in resume_round..=compaction_rounds {
                self.topoff(
                    config,
                    &podem,
                    &dalg,
                    &sim,
                    &mut w,
                    &mut dur,
                    round,
                    pre_compaction.as_ref(),
                )?;
                if round == compaction_rounds || w.cubes.is_empty() {
                    break;
                }
                let merged = compact_cubes(&w.cubes);
                if merged.len() == w.cubes.len() {
                    break; // nothing merged: patterns already final
                }
                let fill_seed_before = w.fill_seed;
                pre_compaction = Some(Snapshot {
                    patterns: w.patterns.clone(),
                    cubes: w.cubes.clone(),
                    reps: w.reps.clone(),
                    tally: w.tally,
                });
                // Rebuild the pattern set: random prefix + merged cubes.
                let mut rebuilt = PatternSet::for_netlist(self.nl);
                if config.random_patterns > 0 {
                    let random = PatternSet::random(self.nl, config.random_patterns, config.seed);
                    rebuilt.extend_from(&random);
                }
                for cube in &merged {
                    w.fill_seed = w.fill_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                    rebuilt.push(cube.random_fill(w.fill_seed));
                }
                // Re-simulate from scratch to find lost collateral
                // detections.
                let mut fresh = FaultList::new(w.reps.faults().to_vec());
                for i in 0..w.reps.len() {
                    match w.reps.status(i) {
                        FaultStatus::Untestable => fresh.set_status(i, FaultStatus::Untestable),
                        FaultStatus::Aborted => fresh.set_status(i, FaultStatus::Aborted),
                        _ => {}
                    }
                }
                let stats = sim.fault_batch(&rebuilt, &mut fresh, &exec);
                w.failed_sim_batches += stats.failed_batches;
                if stats.interrupted {
                    // Discard the half-done rebuild entirely; the
                    // checkpoint captures the pre-rebuild boundary and
                    // resume replays the rebuild deterministically.
                    let snap = pre_compaction.take().expect("snapshot just taken");
                    w.patterns = snap.patterns;
                    w.cubes = snap.cubes;
                    w.reps = snap.reps;
                    w.tally = snap.tally;
                    w.fill_seed = fill_seed_before;
                    return Err(interrupted(
                        &mut dur,
                        "topoff",
                        CkptPhase::Topoff(round),
                        &w,
                        None,
                    ));
                }
                w.patterns = rebuilt;
                w.cubes = merged;
                w.reps = fresh;
            }
        }
        // Compaction must never make the result worse: keep the rebuilt
        // set only when it is no larger *and* detects at least as many
        // collapsed faults (the re-top-off can abort faults that the
        // pre-compaction set detected). Otherwise restore the snapshot.
        if let Some(snap) = pre_compaction {
            let rebuilt_wins = w.patterns.len() <= snap.patterns.len()
                && w.reps.num_detected() >= snap.reps.num_detected();
            if !rebuilt_wins {
                w.patterns = snap.patterns;
                w.cubes = snap.cubes;
                w.reps = snap.reps;
                w.tally = snap.tally;
            }
        }
        let deterministic_detected = w.reps.num_detected().saturating_sub(w.random_detected);
        let deterministic_time = t_deterministic.finish();

        // Sign-off: fault-simulate the final pattern set against the full
        // universe, then project untestable/aborted statuses from the
        // collapsed list. The frontier is final here, so the phase opens
        // with a `signoff` checkpoint — a kill anywhere past this point
        // resumes straight into sign-off.
        let t_signoff = self.trace.timed_span("atpg_signoff");
        arm(&mut dur, config.deadline_ms);
        if let Some(ctx) = dur.as_mut() {
            ctx.write(CkptPhase::Signoff, &w, None);
            if ctx.d.cancel.poll() {
                return Err(interrupted(
                    &mut dur,
                    "signoff",
                    CkptPhase::Signoff,
                    &w,
                    None,
                ));
            }
        }
        let mut fault_list = FaultList::new(universe);
        let stats = sim.fault_batch(&w.patterns, &mut fault_list, &exec);
        w.failed_sim_batches += stats.failed_batches;
        if stats.interrupted {
            return Err(interrupted(
                &mut dur,
                "signoff",
                CkptPhase::Signoff,
                &w,
                None,
            ));
        }
        for (i, &f) in fault_list.faults().to_vec().iter().enumerate() {
            let rep = collapsed.representative(f);
            if let Some(status) = w.reps.status_of(rep) {
                match status {
                    FaultStatus::Untestable => fault_list.set_status(i, FaultStatus::Untestable),
                    FaultStatus::Aborted if !fault_list.status(i).is_detected() => {
                        fault_list.set_status(i, FaultStatus::Aborted);
                    }
                    _ => {}
                }
            }
        }

        let signoff_time = t_signoff.finish();
        if let Some(ctx) = &dur {
            ctx.d.cancel.clear_deadline();
        }
        if let Some(m) = self.metrics.get() {
            m.atpg_runs.inc();
            m.atpg_patterns.add(w.patterns.len() as u64);
            m.atpg_untestable.add(w.tally.untestable as u64);
            m.atpg_aborted.add(w.tally.aborted as u64);
            m.atpg_escalations.add(w.tally.escalated as u64);
            m.atpg_rescued.add(w.tally.rescued as u64);
            m.t_atpg_random.record(random_time);
            m.t_atpg_deterministic.record(deterministic_time);
            m.t_atpg_signoff.record(signoff_time);
        }

        Ok(AtpgRun {
            patterns: w.patterns,
            fault_list,
            cubes: w.cubes,
            random_detected: w.random_detected,
            deterministic_detected,
            untestable: w.tally.untestable,
            aborted: w.tally.aborted,
            escalated: w.tally.escalated,
            rescued: w.tally.rescued,
            failed_sim_batches: w.failed_sim_batches,
            podem: w.podem_stats,
            elapsed: start.elapsed(),
            compile_time,
            random_time,
            deterministic_time,
            signoff_time,
        })
    }

    /// One deterministic top-off pass: PODEM every remaining undetected
    /// fault (escalating aborts to the D-algorithm when configured),
    /// fault-dropping each new pattern against the list. Under durable
    /// execution the loop polls the cancellation token and checkpoints
    /// at the configured fault cadence; an interrupt mid-fault rolls the
    /// per-fault state back to the last fault boundary so the checkpoint
    /// is always consistent.
    #[allow(clippy::too_many_arguments)]
    fn topoff(
        &self,
        config: &AtpgConfig,
        podem: &Podem<'_>,
        dalg: &DAlgorithm<'_>,
        sim: &AnyKernel<'_>,
        w: &mut Working,
        dur: &mut Option<DurCtx<'_>>,
        round: u32,
        pre: Option<&Snapshot>,
    ) -> Result<(), AtpgError> {
        loop {
            if let Some(ctx) = dur.as_mut() {
                if ctx.d.cancel.poll() {
                    return Err(ctx.interrupt("topoff", CkptPhase::Topoff(round), w, pre));
                }
                let every = ctx.d.every_faults;
                if every != 0 && w.fault_ordinal.is_multiple_of(every) {
                    ctx.write(CkptPhase::Topoff(round), w, pre);
                }
            }
            let target_idx = match w.reps.undetected().next() {
                Some(i) => i,
                None => break,
            };
            let target = w.reps.faults()[target_idx];
            // Everything a cancelled fault attempt may have half-mutated,
            // restored before checkpointing so the record sits exactly at
            // the previous fault boundary.
            let saved = (w.fill_seed, w.fault_ordinal, w.tally);
            // Sampled per-fault span (every_n knob bounds the volume);
            // covers the PODEM attempt and any escalation retry.
            let sampled = self.trace.fault_sampled(w.fault_ordinal);
            w.fault_ordinal += 1;
            let _fault_span = if sampled {
                Some(self.trace.span_arg("podem", target_idx as u64))
            } else {
                None
            };
            let target_start = Instant::now();
            let (result, st) = podem.generate(target, config.backtrack_limit);
            w.podem_stats.backtracks += st.backtracks;
            w.podem_stats.simulations += st.simulations;
            w.podem_stats.decisions += st.decisions;
            // Escalation: retry a PODEM abort once with the structural
            // D-algorithm (stem faults only — it has no branch-fault
            // model), unless this fault already blew its time budget.
            let mut escalated = false;
            let result = match result {
                AtpgResult::Aborted if config.escalate_aborts && target.site.pin.is_none() => {
                    let within_budget = config.fault_budget_ms == 0
                        || target_start.elapsed().as_millis() < u128::from(config.fault_budget_ms);
                    if within_budget {
                        escalated = true;
                        w.tally.escalated += 1;
                        let _dalg_span = if sampled {
                            Some(self.trace.span_arg("dalg_escalation", target_idx as u64))
                        } else {
                            None
                        };
                        dalg.generate(target, config.escalation_backtracks)
                    } else {
                        AtpgResult::Aborted
                    }
                }
                other => other,
            };
            // A cancelled search returns early with Aborted/no-test — a
            // result that must not be classified. Roll the fault back
            // and drain.
            if dur.as_ref().is_some_and(|ctx| ctx.d.cancel.is_cancelled()) {
                (w.fill_seed, w.fault_ordinal, w.tally) = saved;
                return Err(interrupted(dur, "topoff", CkptPhase::Topoff(round), w, pre));
            }
            match result {
                AtpgResult::Test(mut cube) => {
                    if config.compaction == CompactionMode::Dynamic {
                        cube = self.extend_cube(
                            podem,
                            cube,
                            &w.reps,
                            target_idx,
                            config,
                            &mut w.podem_stats,
                        );
                    }
                    w.fill_seed = w.fill_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                    let pattern = cube.random_fill(w.fill_seed);
                    let mut single = PatternSet::for_netlist(self.nl);
                    single.push(pattern.clone());
                    let stats = sim.fault_batch(&single, &mut w.reps, &Executor::serial());
                    w.failed_sim_batches += stats.failed_batches;
                    if stats.interrupted {
                        // The interrupted pass marked nothing and the
                        // pattern was not pushed: rolling back the
                        // per-fault counters restores the boundary.
                        (w.fill_seed, w.fault_ordinal, w.tally) = saved;
                        return Err(interrupted(dur, "topoff", CkptPhase::Topoff(round), w, pre));
                    }
                    // Guard against a generator/fault-sim disagreement
                    // leaving the target undetected (would loop forever).
                    if !w.reps.status(target_idx).is_detected() {
                        w.reps.set_status(target_idx, FaultStatus::Aborted);
                        w.tally.aborted += 1;
                    } else if escalated {
                        // The D-algorithm produced a sim-confirmed test.
                        w.tally.rescued += 1;
                    }
                    w.patterns.push(pattern);
                    w.cubes.push(cube);
                }
                AtpgResult::Untestable => {
                    w.reps.set_status(target_idx, FaultStatus::Untestable);
                    w.tally.untestable += 1;
                    if escalated {
                        w.tally.rescued += 1;
                    }
                }
                AtpgResult::Aborted => {
                    w.reps.set_status(target_idx, FaultStatus::Aborted);
                    w.tally.aborted += 1;
                }
            }
        }
        Ok(())
    }

    /// Dynamic compaction: extend `cube` with tests for additional
    /// undetected faults while the merged cube stays consistent.
    fn extend_cube(
        &self,
        podem: &Podem<'_>,
        mut cube: TestCube,
        reps: &FaultList,
        primary_idx: usize,
        config: &AtpgConfig,
        stats: &mut PodemStats,
    ) -> TestCube {
        let mut tried = 0usize;
        for idx in reps.undetected() {
            if idx == primary_idx {
                continue;
            }
            if tried >= config.dynamic_targets {
                break;
            }
            tried += 1;
            let secondary = reps.faults()[idx];
            // A short-leash attempt: secondary targets must be cheap.
            let limit = (config.backtrack_limit / 8).max(8);
            let (result, st) = podem.generate_constrained(secondary, &[], limit, Some(&cube));
            stats.backtracks += st.backtracks;
            stats.simulations += st.simulations;
            stats.decisions += st.decisions;
            if let AtpgResult::Test(extended) = result {
                cube = extended;
            }
        }
        cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::{alu, c17, decoder, mac_pe, ripple_adder, s27};

    #[test]
    fn c17_full_coverage_few_patterns() {
        let nl = c17();
        let run = Atpg::new(&nl).run(&AtpgConfig {
            random_patterns: 0, // pure deterministic
            ..AtpgConfig::default()
        });
        assert!((run.test_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(run.untestable, 0);
        assert_eq!(run.aborted, 0);
        // Deterministic c17 test sets are classically under 10 patterns.
        assert!(run.patterns.len() <= 12, "{} patterns", run.patterns.len());
    }

    #[test]
    fn decoder_needs_topoff_after_random() {
        let nl = decoder(5);
        let cfg = AtpgConfig {
            random_patterns: 32,
            ..AtpgConfig::default()
        };
        let run = Atpg::new(&nl).run(&cfg);
        assert!(
            run.deterministic_detected > 0,
            "decoder should be random-resistant"
        );
        assert!((run.test_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_logic_is_classified_untestable() {
        use dft_netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and = nl.add_gate(GateKind::And, vec![a, b], "and");
        let or = nl.add_gate(GateKind::Or, vec![a, and], "or");
        nl.add_output(or, "po");
        let run = Atpg::new(&nl).run(&AtpgConfig::default());
        assert!(run.untestable >= 1);
        // Test coverage can still be 100% (untestable excluded).
        assert!((run.test_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn static_compaction_reduces_pattern_count() {
        let nl = alu(8);
        let base = AtpgConfig {
            random_patterns: 0,
            compaction: CompactionMode::None,
            ..AtpgConfig::default()
        };
        let run_none = Atpg::new(&nl).run(&base);
        let run_static = Atpg::new(&nl).run(&AtpgConfig {
            compaction: CompactionMode::Static,
            ..base.clone()
        });
        // Compaction may be a wash on cube-dense circuits but must never
        // make the set larger (the driver falls back if it would).
        assert!(
            run_static.patterns.len() <= run_none.patterns.len(),
            "static {} vs none {}",
            run_static.patterns.len(),
            run_none.patterns.len()
        );
        assert!(run_static.test_coverage() >= run_none.test_coverage() - 1e-9);
    }

    #[test]
    fn dynamic_compaction_beats_none() {
        let nl = ripple_adder(8);
        let base = AtpgConfig {
            random_patterns: 0,
            ..AtpgConfig::default()
        };
        let run_dyn = Atpg::new(&nl).run(&AtpgConfig {
            compaction: CompactionMode::Dynamic,
            ..base.clone()
        });
        let run_none = Atpg::new(&nl).run(&AtpgConfig {
            compaction: CompactionMode::None,
            ..base
        });
        assert!(run_dyn.patterns.len() <= run_none.patterns.len());
        assert!((run_dyn.test_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_s27_full_scan_coverage() {
        let nl = s27();
        let run = Atpg::new(&nl).run(&AtpgConfig::default());
        assert!(
            run.test_coverage() > 0.99,
            "s27 coverage {}",
            run.test_coverage()
        );
    }

    #[test]
    fn escalation_rescues_aborted_stem_faults() {
        // A tight PODEM leash forces aborts; the D-algorithm retry at its
        // own (default) limit should resolve at least some of them.
        let nl = mac_pe(4);
        let tight = AtpgConfig {
            backtrack_limit: 4,
            escalate_aborts: false,
            ..AtpgConfig::default()
        };
        let off = Atpg::new(&nl).run(&tight);
        assert_eq!(off.escalated, 0);
        assert_eq!(off.rescued, 0);
        assert!(off.aborted > 0, "leash too loose for this test");
        let on = Atpg::new(&nl).run(&AtpgConfig {
            escalate_aborts: true,
            ..tight
        });
        assert!(on.escalated > 0);
        assert!(on.rescued > 0, "D-algorithm rescued nothing");
        assert!(on.rescued <= on.escalated);
        assert!(
            on.test_coverage() >= off.test_coverage(),
            "escalation lowered coverage: {} < {}",
            on.test_coverage(),
            off.test_coverage()
        );
    }

    #[test]
    fn zero_fault_budget_means_unlimited_escalation() {
        let nl = ripple_adder(4);
        let run = Atpg::new(&nl).run(&AtpgConfig::default().fault_budget_ms(0));
        assert!((run.test_coverage() - 1.0).abs() < 1e-9);
        assert_eq!(run.failed_sim_batches, 0);
    }

    #[test]
    fn poisoned_sim_batch_does_not_abort_the_run() {
        let nl = ripple_adder(4);
        let universe = universe_stuck_at(&nl);
        let poison = universe[3];
        let clean = Atpg::new(&nl).run(&AtpgConfig::default());
        assert_eq!(clean.failed_sim_batches, 0);
        // The poisoned run must complete and report the lost batches.
        let run = Atpg::new(&nl).run(&AtpgConfig::default().poison_fault(poison));
        assert!(run.failed_sim_batches > 0);
        // Everything except the poisoned fault still gets tested.
        let detected = run
            .fault_list
            .faults()
            .iter()
            .enumerate()
            .filter(|&(i, _)| run.fault_list.status(i).is_detected())
            .count();
        assert!(detected >= clean.fault_list.len() - 2);
    }

    #[test]
    fn mac_pe_signoff() {
        let nl = mac_pe(4);
        let run = Atpg::new(&nl).run(&AtpgConfig::default());
        assert!(
            run.test_coverage() > 0.98,
            "mac coverage {} aborted {}",
            run.test_coverage(),
            run.aborted
        );
    }

    // ---- durable execution --------------------------------------------

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("aidft-atpg-dur-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn assert_same_result(run: &AtpgRun, reference: &AtpgRun, context: &str) {
        assert_eq!(
            run.patterns.len(),
            reference.patterns.len(),
            "{context}: pattern count"
        );
        for (i, (a, b)) in run
            .patterns
            .iter()
            .zip(reference.patterns.iter())
            .enumerate()
        {
            assert_eq!(a, b, "{context}: pattern {i}");
        }
        for i in 0..reference.fault_list.len() {
            assert_eq!(
                run.fault_list.status(i),
                reference.fault_list.status(i),
                "{context}: fault {i}"
            );
        }
        assert_eq!(run.untestable, reference.untestable, "{context}");
        assert_eq!(run.aborted, reference.aborted, "{context}");
        assert_eq!(run.escalated, reference.escalated, "{context}");
        assert_eq!(run.rescued, reference.rescued, "{context}");
    }

    #[test]
    fn durable_run_without_interruption_matches_plain_run() {
        let nl = ripple_adder(4);
        let cfg = AtpgConfig::default();
        let plain = Atpg::new(&nl).run(&cfg);
        let path = ckpt_path("clean.ckpt");
        let mut dur = Durability::new(CancelToken::new())
            .with_journal(Journal::new(&path))
            .checkpoint_every(8);
        let run = Atpg::new(&nl)
            .run_durable(&cfg, &mut dur)
            .expect("no interruption");
        assert_same_result(&run, &plain, "clean durable run");
        assert_eq!(dur.checkpoint_write_failures(), 0);
        // The journal closed with a sign-off-phase record.
        let last = Journal::new(&path).load_last().expect("valid record");
        assert_eq!(last.phase, CkptPhase::Signoff);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let nl = decoder(5);
        let cfg = AtpgConfig {
            random_patterns: 32,
            ..AtpgConfig::default()
        };
        let plain = Atpg::new(&nl).run(&cfg);
        for &kill in &[1u64, 3, 7, 25] {
            let path = ckpt_path(&format!("kill{kill}.ckpt"));
            let cancel = CancelToken::new();
            cancel.trip_after_polls(kill);
            let mut dur = Durability::new(cancel)
                .with_journal(Journal::new(&path))
                .checkpoint_every(4);
            let run = match Atpg::new(&nl).run_durable(&cfg, &mut dur) {
                Err(AtpgError::Interrupted(int)) => {
                    assert!(
                        int.checkpoint.is_some(),
                        "interrupt at kill point {kill} wrote no checkpoint"
                    );
                    let state = Journal::new(&path).load_last().expect("valid record");
                    let mut resumed = Durability::new(CancelToken::new())
                        .with_journal(Journal::new(&path))
                        .checkpoint_every(4)
                        .resume_from(state);
                    Atpg::new(&nl)
                        .run_durable(&cfg, &mut resumed)
                        .expect("resume completes")
                }
                Ok(run) => run, // kill point past the end of the run
                Err(e) => panic!("unexpected error at kill point {kill}: {e}"),
            };
            assert_same_result(&run, &plain, &format!("kill point {kill}"));
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn phase_deadline_interrupts_and_resume_completes() {
        let nl = mac_pe(4);
        let cfg = AtpgConfig {
            deadline_ms: 1,
            ..AtpgConfig::default()
        };
        let path = ckpt_path("deadline.ckpt");
        let mut dur = Durability::new(CancelToken::new())
            .with_journal(Journal::new(&path))
            .checkpoint_every(16);
        let err = Atpg::new(&nl).run_durable(&cfg, &mut dur);
        let int = match err {
            Err(AtpgError::Interrupted(int)) => int,
            other => panic!("1ms phase deadline did not interrupt: {other:?}"),
        };
        assert!(int.deadline, "cause should be the phase deadline");
        assert!(int.checkpoint.is_some());
        // Resume without the deadline: the fingerprint excludes
        // durability knobs, so this is the "same run".
        let plain_cfg = AtpgConfig::default();
        let plain = Atpg::new(&nl).run(&plain_cfg);
        let state = Journal::new(&path).load_last().expect("valid record");
        let mut resumed = Durability::new(CancelToken::new())
            .with_journal(Journal::new(&path))
            .resume_from(state);
        let run = Atpg::new(&nl)
            .run_durable(&plain_cfg, &mut resumed)
            .expect("resume without deadline completes");
        assert_same_result(&run, &plain, "deadline resume");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_refuses_mismatched_config() {
        let nl = ripple_adder(4);
        let cfg = AtpgConfig::default();
        let path = ckpt_path("mismatch.ckpt");
        let cancel = CancelToken::new();
        cancel.trip_after_polls(2);
        let mut dur = Durability::new(cancel)
            .with_journal(Journal::new(&path))
            .checkpoint_every(2);
        let _ = Atpg::new(&nl).run_durable(&cfg, &mut dur);
        let state = Journal::new(&path).load_last().expect("valid record");
        let other = AtpgConfig {
            seed: 0xBAD,
            ..AtpgConfig::default()
        };
        let mut resumed = Durability::new(CancelToken::new()).resume_from(state);
        let err = Atpg::new(&nl).run_durable(&other, &mut resumed);
        assert!(matches!(
            err,
            Err(AtpgError::Resume(CkptError::Mismatch {
                what: "config",
                ..
            }))
        ));
        let _ = std::fs::remove_file(&path);
    }
}
