//! Test-set compaction.
//!
//! * **Static compaction** ([`compact_cubes`]): greedy merging of
//!   compatible test cubes before random fill — the classic post-ATPG
//!   pass.
//! * **Reverse-order pattern compaction**
//!   ([`reverse_order_compaction`]): fault-simulate the final pattern set
//!   in reverse order and drop patterns that detect nothing new.

use dft_fault::FaultList;
use dft_logicsim::{AnyKernel, Executor, PatternSet, SimKernel, TestCube};
use dft_netlist::Netlist;

/// Greedily merges compatible cubes (first-fit). Returns the merged cube
/// list; order follows the first member of each merged group.
pub fn compact_cubes(cubes: &[TestCube]) -> Vec<TestCube> {
    let mut merged: Vec<TestCube> = Vec::new();
    for cube in cubes {
        match merged.iter_mut().find(|m| m.compatible(cube)) {
            Some(m) => m.merge(cube),
            None => merged.push(cube.clone()),
        }
    }
    merged
}

/// Drops patterns that contribute no new detections when the set is
/// fault-simulated in reverse order. Returns the compacted set (original
/// relative order preserved).
pub fn reverse_order_compaction(
    nl: &Netlist,
    patterns: &PatternSet,
    faults: Vec<dft_fault::Fault>,
) -> PatternSet {
    let sim = AnyKernel::compile(nl);
    let exec = Executor::serial();
    let mut list = FaultList::new(faults);
    let mut keep = vec![false; patterns.len()];
    // Simulate one pattern at a time, last first, keeping only those that
    // detect at least one still-undetected fault.
    for i in (0..patterns.len()).rev() {
        let mut single = PatternSet::new(patterns.width());
        single.push(patterns.pattern(i).clone());
        let before = list.num_detected();
        sim.fault_batch(&single, &mut list, &exec);
        if list.num_detected() > before {
            keep[i] = true;
        }
    }
    let mut out = PatternSet::new(patterns.width());
    for (i, k) in keep.iter().enumerate() {
        if *k {
            out.push(patterns.pattern(i).clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe_stuck_at;
    use dft_netlist::generators::c17;

    #[test]
    fn merging_reduces_cube_count() {
        let mut a = TestCube::all_x(4);
        a.set(0, true);
        let mut b = TestCube::all_x(4);
        b.set(1, false);
        let mut c = TestCube::all_x(4);
        c.set(0, false); // incompatible with a
        let merged = compact_cubes(&[a, b, c]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].get(0), Some(true));
        assert_eq!(merged[0].get(1), Some(false));
    }

    #[test]
    fn merged_sets_preserve_detection() {
        // Build per-fault cubes with PODEM, compact, fill, and verify the
        // compacted set still detects everything the raw set did.
        use crate::{AtpgResult, Podem};
        let nl = c17();
        let podem = Podem::new(&nl);
        let faults = universe_stuck_at(&nl);
        let cubes: Vec<TestCube> = faults
            .iter()
            .filter_map(|&f| match podem.generate(f, 100).0 {
                AtpgResult::Test(c) => Some(c),
                _ => None,
            })
            .collect();
        let merged = compact_cubes(&cubes);
        assert!(merged.len() < cubes.len());
        let sim = AnyKernel::compile(&nl);
        let patterns: PatternSet = merged.iter().map(|c| c.fill_with(false)).collect();
        let mut list = FaultList::new(faults);
        sim.fault_batch(&patterns, &mut list, &Executor::serial());
        assert!(
            (list.fault_coverage() - 1.0).abs() < 1e-12,
            "coverage {} with {} patterns",
            list.fault_coverage(),
            patterns.len()
        );
    }

    #[test]
    fn reverse_compaction_never_loses_coverage() {
        let nl = c17();
        let sim = AnyKernel::compile(&nl);
        let exec = Executor::serial();
        let ps = PatternSet::random(&nl, 64, 13);
        let mut before = FaultList::new(universe_stuck_at(&nl));
        sim.fault_batch(&ps, &mut before, &exec);
        let compacted = reverse_order_compaction(&nl, &ps, universe_stuck_at(&nl));
        assert!(compacted.len() < ps.len());
        let mut after = FaultList::new(universe_stuck_at(&nl));
        sim.fault_batch(&compacted, &mut after, &exec);
        assert_eq!(before.num_detected(), after.num_detected());
    }
}
