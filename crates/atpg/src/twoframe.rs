//! Broadside (launch-on-capture) transition-fault ATPG via two-frame
//! circuit expansion.
//!
//! The sequential behaviour of one launch clock is unrolled into a purely
//! combinational circuit: frame 1 is driven by the scan-loaded state and
//! the (held) primary inputs; frame 2's pseudo inputs are frame 1's
//! next-state functions. A slow-to-rise fault at net `s` is then generated
//! as a stuck-at-0 at `s` in frame 2 under the constraint `s == 0` in
//! frame 1 (symmetrically for slow-to-fall), which is exactly the
//! broadside launch condition.

use dft_fault::{Fault, FaultKind, FaultList, FaultSite, FaultStatus};
use dft_logicsim::{broadside_pairs, AnyKernel, Executor, PatternSet, SimKernel};
use dft_netlist::{GateId, GateKind, Netlist};

use crate::{AtpgResult, Podem};

/// A two-frame expansion of a sequential netlist.
#[derive(Debug)]
pub struct TwoFrame {
    /// The expanded combinational netlist.
    pub netlist: Netlist,
    /// Frame-1 copy of every original gate.
    pub frame1: Vec<GateId>,
    /// Frame-2 copy of every original gate.
    pub frame2: Vec<GateId>,
}

/// Expands `nl` into the two-frame combinational circuit used for
/// broadside transition ATPG. Primary inputs are shared (held) across
/// frames; frame 2's state comes from frame 1's next-state logic; only
/// frame 2 is observed.
pub fn expand_two_frames(nl: &Netlist) -> TwoFrame {
    let mut out = Netlist::new(format!("{}_2frame", nl.name()));
    let n = nl.num_gates();
    let mut f1 = vec![GateId(u32::MAX); n];
    let mut f2 = vec![GateId(u32::MAX); n];

    // Shared primary inputs.
    for &pi in nl.inputs() {
        let id = out.add_input(&nl.gate(pi).name);
        f1[pi.index()] = id;
        f2[pi.index()] = id;
    }
    // Frame-1 state: free pseudo inputs (scan-loaded).
    for &ff in nl.dffs() {
        let id = out.add_input(&format!("{}_ld", nl.gate(ff).name));
        f1[ff.index()] = id;
    }
    // Frame-1 combinational logic, in level order.
    let lv = dft_netlist::Levelization::compute(nl).expect("acyclic");
    for &id in lv.order() {
        let g = nl.gate(id);
        match g.kind {
            GateKind::Input | GateKind::Dff => {}
            GateKind::Output => {
                // Launch-cycle POs are not strobed; keep the net but no
                // marker (map to the driver).
                f1[id.index()] = f1[g.fanins[0].index()];
            }
            _ => {
                let fanins = g.fanins.iter().map(|&f| f1[f.index()]).collect();
                f1[id.index()] = out.add_gate(g.kind, fanins, &format!("{}_f1", g.name));
            }
        }
    }
    // Frame-2 state = frame-1 next-state nets.
    for &ff in nl.dffs() {
        let d = nl.gate(ff).fanins[0];
        f2[ff.index()] = f1[d.index()];
    }
    // Frame-2 logic and observation.
    for &id in lv.order() {
        let g = nl.gate(id);
        match g.kind {
            GateKind::Input | GateKind::Dff => {}
            GateKind::Output => {
                let src = f2[g.fanins[0].index()];
                f2[id.index()] = out.add_output(src, &format!("{}_f2", g.name));
            }
            _ => {
                let fanins = g.fanins.iter().map(|&f| f2[f.index()]).collect();
                f2[id.index()] = out.add_gate(g.kind, fanins, &format!("{}_f2", g.name));
            }
        }
    }
    // Frame-2 captures: expose every flop's next-state as an output.
    for &ff in nl.dffs() {
        let d = nl.gate(ff).fanins[0];
        out.add_output(f2[d.index()], &format!("{}_cap", nl.gate(ff).name));
    }
    TwoFrame {
        netlist: out,
        frame1: f1,
        frame2: f2,
    }
}

/// Results of a transition-fault ATPG run.
#[derive(Debug)]
pub struct TransitionAtpgRun {
    /// Launch/capture pattern pairs, as scan patterns of the original
    /// netlist (the capture vector is implied by broadside operation; it
    /// is included for simulation convenience).
    pub pairs: Vec<(Vec<bool>, Vec<bool>)>,
    /// Per-fault status on the transition universe.
    pub fault_list: FaultList,
    /// Faults proven untestable under broadside constraints.
    pub untestable: usize,
    /// Aborted faults.
    pub aborted: usize,
}

/// Broadside transition-fault ATPG driver.
#[derive(Debug)]
pub struct TransitionAtpg<'a> {
    nl: &'a Netlist,
    expanded: TwoFrame,
}

impl<'a> TransitionAtpg<'a> {
    /// Builds the driver (performs the two-frame expansion).
    pub fn new(nl: &'a Netlist) -> TransitionAtpg<'a> {
        TransitionAtpg {
            nl,
            expanded: expand_two_frames(nl),
        }
    }

    /// The expanded two-frame view.
    pub fn two_frame(&self) -> &TwoFrame {
        &self.expanded
    }

    /// Generates broadside pairs for every fault in `universe`
    /// (transition kinds only), with `random_pairs` random pairs first and
    /// PODEM top-off after.
    pub fn run(
        &self,
        universe: Vec<Fault>,
        random_pairs: usize,
        backtrack_limit: u32,
        seed: u64,
    ) -> TransitionAtpgRun {
        let tsim = AnyKernel::compile(self.nl);
        let exec = Executor::serial();
        let mut list = FaultList::new(universe);

        // Phase 1: random scan patterns -> broadside pairs.
        let mut pairs: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        if random_pairs > 0 {
            let ps = PatternSet::random(self.nl, random_pairs, seed);
            pairs = broadside_pairs(self.nl, &ps);
            tsim.transition_batch(&pairs, &mut list, &exec);
        }

        // Phase 2: deterministic top-off on the expanded circuit.
        let podem = Podem::new(&self.expanded.netlist);
        let exp_sources = self.expanded.netlist.combinational_sources();
        let mut untestable = 0;
        let mut aborted = 0;
        let mut fill_seed = seed ^ 0xABCD;
        loop {
            let idx = match list.undetected().next() {
                Some(i) => i,
                None => break,
            };
            let fault = list.faults()[idx];
            let launch = match fault.kind.launch_value() {
                Some(v) => v,
                None => {
                    // Not a transition fault: ignore it.
                    list.set_status(idx, FaultStatus::Untestable);
                    untestable += 1;
                    continue;
                }
            };
            // Map the site into frame 2 and the launch constraint into
            // frame 1.
            let site_f2 = self.map_site(fault.site, &self.expanded.frame2);
            let site_net_f1 = {
                let net = fault.site.net(self.nl);
                self.expanded.frame1[net.index()]
            };
            let stuck = Fault {
                site: site_f2,
                kind: if fault.kind.stuck_value() {
                    FaultKind::StuckAt1
                } else {
                    FaultKind::StuckAt0
                },
            };
            let (result, _) =
                podem.generate_constrained(stuck, &[(site_net_f1, launch)], backtrack_limit, None);
            match result {
                AtpgResult::Test(cube) => {
                    fill_seed = fill_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                    let exp_pattern = cube.random_fill(fill_seed);
                    // Project the expanded pattern back to a scan pattern
                    // of the original netlist: PIs + frame-1 state loads.
                    let launch_vec = self.project_pattern(&exp_pattern, &exp_sources);
                    let mut single = PatternSet::for_netlist(self.nl);
                    single.push(launch_vec);
                    let new_pairs = broadside_pairs(self.nl, &single);
                    tsim.transition_batch(&new_pairs, &mut list, &exec);
                    if !list.status(idx).is_detected() {
                        // Two-frame model and pair simulation disagree —
                        // should not happen; fail safe.
                        list.set_status(idx, FaultStatus::Aborted);
                        aborted += 1;
                    }
                    // Detection indices recorded against `new_pairs` are
                    // provisional; the sign-off pass below rebuilds them
                    // against the full pair list.
                    pairs.extend(new_pairs);
                }
                AtpgResult::Untestable => {
                    list.set_status(idx, FaultStatus::Untestable);
                    untestable += 1;
                }
                AtpgResult::Aborted => {
                    list.set_status(idx, FaultStatus::Aborted);
                    aborted += 1;
                }
            }
        }

        // Final sign-off: re-simulate the whole pair list against a fresh
        // fault list so Detected(pattern) indices are globally consistent.
        let mut final_list = FaultList::new(list.faults().to_vec());
        tsim.transition_batch(&pairs, &mut final_list, &exec);
        for i in 0..list.len() {
            match list.status(i) {
                FaultStatus::Untestable => final_list.set_status(i, FaultStatus::Untestable),
                FaultStatus::Aborted if !final_list.status(i).is_detected() => {
                    final_list.set_status(i, FaultStatus::Aborted);
                }
                _ => {}
            }
        }

        TransitionAtpgRun {
            pairs,
            fault_list: final_list,
            untestable,
            aborted,
        }
    }

    /// Maps an original-netlist fault site into a frame copy.
    fn map_site(&self, site: FaultSite, frame: &[GateId]) -> FaultSite {
        match site.pin {
            None => FaultSite::output(frame[site.gate.index()]),
            Some(p) => FaultSite::input(frame[site.gate.index()], p),
        }
    }

    /// Converts an expanded-circuit pattern into an original-netlist scan
    /// pattern (launch vector): PIs then flop loads, which is exactly the
    /// expanded circuit's source order.
    fn project_pattern(&self, exp_pattern: &[bool], exp_sources: &[GateId]) -> Vec<bool> {
        // Expanded sources: original PIs (shared), then `_ld` inputs in
        // dff order — the same order as the original scan pattern.
        assert_eq!(
            exp_sources.len(),
            self.nl.num_inputs() + self.nl.num_dffs(),
            "expanded circuit must be purely combinational"
        );
        exp_pattern.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe_transition;
    use dft_netlist::generators::{counter, s27, shift_register};
    use dft_netlist::{GateKind, Levelization, NetlistStats};

    #[test]
    fn expansion_is_combinational_and_doubled() {
        let nl = s27();
        let tf = expand_two_frames(&nl);
        assert_eq!(tf.netlist.num_dffs(), 0);
        Levelization::compute(&tf.netlist).unwrap();
        let orig = NetlistStats::of(&nl);
        let exp = NetlistStats::of(&tf.netlist);
        assert!(exp.logic_gates >= 2 * orig.logic_gates - 2);
        // PIs shared; state loads appear once.
        assert_eq!(tf.netlist.num_inputs(), nl.num_inputs() + nl.num_dffs());
        // Outputs: frame-2 POs + captures.
        assert_eq!(tf.netlist.num_outputs(), nl.num_outputs() + nl.num_dffs());
    }

    #[test]
    fn frame2_state_is_frame1_next_state() {
        let nl = counter(2);
        let tf = expand_two_frames(&nl);
        // In the counter, q0's next state is d0_f1; frame2's q0 must map
        // to that net.
        let q0 = nl.find("q0").unwrap();
        let d0 = nl.gate(q0).fanins[0];
        assert_eq!(tf.frame2[q0.index()], tf.frame1[d0.index()]);
    }

    #[test]
    fn transition_atpg_on_shift_register() {
        // A shift register propagates everything: transition faults on
        // stage outputs are easily testable broadside.
        let nl = shift_register(4);
        let atpg = TransitionAtpg::new(&nl);
        let run = atpg.run(universe_transition(&nl), 16, 200, 3);
        // The two faults on the serial input are untestable broadside
        // (held PIs cannot transition); everything else must be covered.
        assert_eq!(run.untestable, 2);
        assert!(
            run.fault_list.test_coverage() > 0.99,
            "test coverage {} aborted {}",
            run.fault_list.test_coverage(),
            run.aborted
        );
    }

    #[test]
    fn detected_pairs_verify_under_simulation() {
        let nl = s27();
        let atpg = TransitionAtpg::new(&nl);
        let run = atpg.run(universe_transition(&nl), 8, 200, 5);
        let tsim = dft_logicsim::TransitionSim::new(&nl);
        for i in 0..run.fault_list.len() {
            if let FaultStatus::Detected(p) = run.fault_list.status(i) {
                let (l, c) = &run.pairs[p as usize];
                assert!(
                    tsim.detects(l, c, run.fault_list.faults()[i]),
                    "fault {} pair {p}",
                    run.fault_list.faults()[i]
                );
            }
        }
    }

    #[test]
    fn held_pi_transitions_are_untestable_broadside() {
        // A transition fault on a PI can never launch in LOC with held
        // PIs; ATPG must prove it untestable rather than abort.
        let mut nl = dft_netlist::Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_dff(a, "q");
        let x = nl.add_gate(GateKind::Xor, vec![a, q], "x");
        nl.add_output(x, "po");
        let atpg = TransitionAtpg::new(&nl);
        let universe: Vec<Fault> = universe_transition(&nl)
            .into_iter()
            .filter(|f| f.site.gate == a)
            .collect();
        let run = atpg.run(universe, 0, 500, 1);
        assert_eq!(run.untestable, run.fault_list.len());
    }
}
