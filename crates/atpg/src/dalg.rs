//! The D-algorithm (Roth 1966): ATPG with decisions at internal gates.
//!
//! Where PODEM decides only at the circuit inputs, the D-algorithm
//! maintains a *D-frontier* (gates whose output can still propagate the
//! fault effect) and a *J-frontier* (gates whose assigned binary output is
//! not yet justified by their inputs) and makes decisions at both. It is
//! implemented here for stem (output-site) faults as the historical
//! companion to PODEM; the production driver uses PODEM, and the test
//! suite cross-validates the two engines on common fault universes.
//!
//! Implication model: forward five-valued evaluation plus backward binary
//! implication (unique-justification rules); fault-effect (`D`/`D̄`)
//! values are produced only by forward evaluation, which keeps the
//! implication engine simple and sound.

use dft_checkpoint::CancelToken;
use dft_fault::Fault;
use dft_logicsim::TestCube;
use dft_metrics::MetricsHandle;
use dft_netlist::{GateId, GateKind, Levelization, Logic, Netlist};

use crate::AtpgResult;

/// D-algorithm test generator for stem stuck-at faults.
#[derive(Debug)]
pub struct DAlgorithm<'a> {
    nl: &'a Netlist,
    #[allow(dead_code)]
    lv: Levelization,
    source_index: Vec<Option<u32>>,
    metrics: MetricsHandle,
    /// Cooperative cancellation, checked at each recursion step. A
    /// cancelled search aborts; the driver discards the result.
    cancel: Option<CancelToken>,
}

struct Search<'a> {
    nl: &'a Netlist,
    fault: Fault,
    vals: Vec<Logic>,
    backtracks: u32,
    limit: u32,
    cancel: Option<CancelToken>,
}

impl<'a> DAlgorithm<'a> {
    /// Builds a generator for `nl`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational loop.
    pub fn new(nl: &'a Netlist) -> DAlgorithm<'a> {
        let lv = Levelization::compute(nl).expect("acyclic");
        let mut source_index = vec![None; nl.num_gates()];
        for (i, &s) in nl.combinational_sources().iter().enumerate() {
            source_index[s.index()] = Some(i as u32);
        }
        DAlgorithm {
            nl,
            lv,
            source_index,
            metrics: MetricsHandle::disabled(),
            cancel: None,
        }
    }

    /// Points per-call counters at `metrics`.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// Attaches a cancellation token; a cancelled search returns
    /// [`AtpgResult::Aborted`] at its next recursion step.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Generates a test for a stem fault.
    ///
    /// # Panics
    ///
    /// Panics if `fault` is an input-pin (branch) fault — use PODEM for
    /// those.
    pub fn generate(&self, fault: Fault, backtrack_limit: u32) -> AtpgResult {
        assert!(
            fault.site.pin.is_none(),
            "D-algorithm implementation handles stem faults only"
        );
        let mut search = Search {
            nl: self.nl,
            fault,
            vals: vec![Logic::X; self.nl.num_gates()],
            backtracks: 0,
            limit: backtrack_limit,
            cancel: self.cancel.clone(),
        };
        // Activation: the site carries D (good 1 / faulty 0) for SA0,
        // D̄ for SA1; the good value must be justified through the site
        // gate's inputs, which the J-frontier handles via a binary
        // pseudo-assignment on the site's *good* value.
        let site = fault.site.gate;
        let effect = if fault.kind.stuck_value() {
            Logic::Dbar
        } else {
            Logic::D
        };
        search.vals[site.index()] = effect;

        let solved = search.solve();
        let result = match solved {
            Some(true) => {
                let mut cube = TestCube::all_x(self.nl.combinational_sources().len());
                for (g, &v) in search.vals.iter().enumerate() {
                    if let Some(src) = self.source_index[g] {
                        if let Some(b) = v.good() {
                            cube.set(src as usize, b);
                        }
                    }
                }
                AtpgResult::Test(cube)
            }
            Some(false) => AtpgResult::Untestable,
            None => AtpgResult::Aborted,
        };
        if let Some(m) = self.metrics.get() {
            m.dalg_calls.inc();
            m.dalg_backtracks.add(search.backtracks as u64);
            if result.is_test() {
                m.dalg_tests.inc();
            }
        }
        result
    }
}

impl<'a> Search<'a> {
    /// Top-level recursive search. `Some(true)` = test found, `Some(false)`
    /// = exhausted, `None` = aborted at the backtrack limit.
    fn solve(&mut self) -> Option<bool> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return None; // aborted; the driver discards this result
            }
        }
        if !self.imply() {
            return Some(false);
        }
        // Success: effect observed and everything justified.
        if self.effect_at_sink() {
            match self.pick_j_frontier() {
                None => return Some(true),
                Some(j) => return self.justify(j),
            }
        }
        // Propagate: pick a D-frontier gate and push the effect through.
        let frontier = self.d_frontier();
        if frontier.is_empty() {
            return Some(false);
        }
        for gate in frontier {
            let g = self.nl.gate(gate);
            // Propagation alternatives. AND/OR families force every X
            // side input to the non-controlling value (one alternative);
            // XOR/MUX propagate under any binary side values, so the
            // first X input is branched both ways (deeper recursion
            // handles the rest — the gate stays on the frontier until its
            // output resolves).
            let alternatives: Vec<Vec<(GateId, bool)>> = match g.kind.controlling_value() {
                Some(cv) => vec![g
                    .fanins
                    .iter()
                    .filter(|f| self.vals[f.index()] == Logic::X)
                    .map(|&f| (f, !cv))
                    .collect()],
                None => match g.fanins.iter().find(|f| self.vals[f.index()] == Logic::X) {
                    Some(&f) => vec![vec![(f, false)], vec![(f, true)]],
                    None => continue, // imply will resolve this gate
                },
            };
            for alt in alternatives {
                let saved = self.vals.clone();
                let mut ok = true;
                for (f, v) in alt {
                    if !self.assign(f, v) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    match self.solve() {
                        Some(true) => return Some(true),
                        None => return None,
                        Some(false) => {}
                    }
                }
                self.vals = saved;
                self.backtracks += 1;
                if self.backtracks > self.limit {
                    return None;
                }
            }
        }
        Some(false)
    }

    /// Justify the output of J-frontier gate `j`, then continue solving.
    fn justify(&mut self, j: GateId) -> Option<bool> {
        let g = self.nl.gate(j);
        let want = self.vals[j.index()].good().expect("binary J entry");
        // Decision alternatives: when `want` is the gate's controlled
        // response, any single X input at the controlling value justifies
        // it (one alternative per X input); otherwise enumerate the first
        // X input both ways and let implication narrow the rest.
        let alternatives: Vec<Vec<(GateId, bool)>> =
            match (g.kind.controlling_value(), controlled_output(g.kind)) {
                (Some(cv), Some(resp)) if want == resp => g
                    .fanins
                    .iter()
                    .filter(|f| self.vals[f.index()] == Logic::X)
                    .map(|&f| vec![(f, cv)])
                    .collect(),
                _ => match g.fanins.iter().find(|f| self.vals[f.index()] == Logic::X) {
                    Some(&f) => vec![vec![(f, false)], vec![(f, true)]],
                    None => vec![],
                },
            };
        if alternatives.is_empty() {
            return Some(false);
        }
        for alt in alternatives {
            let saved = self.vals.clone();
            let mut ok = true;
            for (net, v) in alt {
                if !self.assign(net, v) {
                    ok = false;
                    break;
                }
            }
            if ok {
                match self.solve() {
                    Some(true) => return Some(true),
                    None => return None,
                    Some(false) => {}
                }
            }
            self.vals = saved;
            self.backtracks += 1;
            if self.backtracks > self.limit {
                return None;
            }
        }
        Some(false)
    }

    /// Assigns a binary value to a net, rejecting conflicts.
    fn assign(&mut self, net: GateId, v: bool) -> bool {
        match self.vals[net.index()] {
            Logic::X => {
                self.vals[net.index()] = Logic::from_bool(v);
                true
            }
            cur => cur.good() == Some(v) && !cur.is_fault_effect(),
        }
    }

    /// Implication to fixpoint: forward evaluation plus unique backward
    /// justification. Returns `false` on conflict.
    fn imply(&mut self) -> bool {
        loop {
            let mut changed = false;
            for (id, g) in self.nl.iter() {
                if !g.kind.is_logic() && !matches!(g.kind, GateKind::Output) {
                    continue;
                }
                // The faulty site keeps its injected effect; its *good*
                // value constrains the inputs via the J-frontier instead.
                if id == self.fault.site.gate {
                    continue;
                }
                let ins: Vec<Logic> = g.fanins.iter().map(|&f| self.vals[f.index()]).collect();
                let out = Logic::eval_gate(g.kind, &ins);
                let cur = self.vals[id.index()];
                if out != Logic::X {
                    if cur == Logic::X {
                        self.vals[id.index()] = out;
                        changed = true;
                    } else if cur != out {
                        return false;
                    }
                }
                // Backward: unique justification for binary outputs.
                if let Some(want) = self.vals[id.index()].good() {
                    if self.vals[id.index()].is_fault_effect() {
                        continue;
                    }
                    if let Some(nc_out) = noncontrolled_output(g.kind) {
                        if want == nc_out {
                            // All inputs must take the non-controlling value.
                            let nc = !g.kind.controlling_value().unwrap();
                            for &f in &g.fanins {
                                if self.vals[f.index()] == Logic::X {
                                    self.vals[f.index()] = Logic::from_bool(nc);
                                    changed = true;
                                } else if self.vals[f.index()].good() == Some(!nc) {
                                    // A controlling input contradicts the
                                    // non-controlled output — conflict,
                                    // unless a fault effect is involved
                                    // (conservatively allowed).
                                    if !self.vals[f.index()].is_fault_effect() {
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                    // Single-input gates invert/copy backwards.
                    if matches!(g.kind, GateKind::Not | GateKind::Buf | GateKind::Output) {
                        let need = want ^ matches!(g.kind, GateKind::Not);
                        let f = g.fanins[0];
                        match self.vals[f.index()] {
                            Logic::X => {
                                self.vals[f.index()] = Logic::from_bool(need);
                                changed = true;
                            }
                            v if v.is_fault_effect() => {}
                            v => {
                                if v.good() != Some(need) {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
            // Activation justification: the site's good value must be
            // producible by its inputs. Treat the site as a J-frontier
            // entry with the good value.
            if !changed {
                return true;
            }
        }
    }

    /// Gates whose output is X with a fault effect on some input, or the
    /// (injected) site gate's own justification pending.
    fn d_frontier(&self) -> Vec<GateId> {
        self.nl
            .iter()
            .filter(|(id, g)| {
                g.kind.is_logic()
                    && self.vals[id.index()] == Logic::X
                    && g.fanins
                        .iter()
                        .any(|&f| self.vals[f.index()].is_fault_effect())
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// The next unjustified binary gate output (J-frontier entry),
    /// including the fault site's good-value justification.
    fn pick_j_frontier(&self) -> Option<GateId> {
        // Fault-site good value first.
        let site = self.fault.site.gate;
        let sg = self.nl.gate(site);
        if sg.kind.is_logic() {
            let want = !self.fault.kind.stuck_value();
            let ins: Vec<Logic> = sg.fanins.iter().map(|&f| self.vals[f.index()]).collect();
            match Logic::eval_gate(sg.kind, &ins).good() {
                Some(v) if v == want => {}
                _ => return Some(site),
            }
        }
        for (id, g) in self.nl.iter() {
            if !g.kind.is_logic() || id == site {
                continue;
            }
            let v = self.vals[id.index()];
            if !v.is_binary() {
                continue;
            }
            let ins: Vec<Logic> = g.fanins.iter().map(|&f| self.vals[f.index()]).collect();
            if Logic::eval_gate(g.kind, &ins) != v {
                return Some(id);
            }
        }
        None
    }

    /// Justify the J-frontier entry, accounting for the fault site whose
    /// target is its *good* value rather than `vals`.
    fn effect_at_sink(&self) -> bool {
        for &s in self.nl.combinational_sinks().iter() {
            let g = self.nl.gate(s);
            let v = if matches!(g.kind, GateKind::Dff) {
                self.vals[g.fanins[0].index()]
            } else {
                self.vals[s.index()]
            };
            if v.is_fault_effect() {
                return true;
            }
        }
        false
    }
}

/// The output value an AND/OR-family gate produces when NO input carries
/// the controlling value (`None` for other kinds).
fn noncontrolled_output(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And => Some(true),
        GateKind::Nand => Some(false),
        GateKind::Or => Some(false),
        GateKind::Nor => Some(true),
        _ => None,
    }
}

/// The controlled response as an output value (`None` for gates without a
/// controlling value).
fn controlled_output(kind: GateKind) -> Option<bool> {
    kind.controlled_response()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe_stuck_at;
    use dft_logicsim::FaultSim;
    use dft_netlist::generators::{c17, decoder, parity_tree, ripple_adder};

    fn stem_faults(nl: &Netlist) -> Vec<Fault> {
        universe_stuck_at(nl)
            .into_iter()
            .filter(|f| f.site.pin.is_none())
            .collect()
    }

    #[test]
    fn dalg_cubes_detect_their_faults_on_c17() {
        let nl = c17();
        let dalg = DAlgorithm::new(&nl);
        let sim = FaultSim::new(&nl);
        for fault in stem_faults(&nl) {
            match dalg.generate(fault, 500) {
                AtpgResult::Test(cube) => {
                    assert!(
                        sim.detects(&cube.random_fill(3), fault),
                        "{fault}: cube {cube} fails"
                    );
                }
                other => panic!("{fault}: expected a test, got {other:?}"),
            }
        }
    }

    #[test]
    fn dalg_agrees_with_podem_on_testability() {
        use crate::Podem;
        let nl = ripple_adder(4);
        let dalg = DAlgorithm::new(&nl);
        let podem = Podem::new(&nl);
        let sim = FaultSim::new(&nl);
        for fault in stem_faults(&nl) {
            let d = dalg.generate(fault, 2000);
            let (p, _) = podem.generate(fault, 2000);
            match (&d, &p) {
                (AtpgResult::Test(dc), AtpgResult::Test(_)) => {
                    assert!(sim.detects(&dc.random_fill(1), fault), "{fault}");
                }
                (AtpgResult::Untestable, AtpgResult::Untestable) => {}
                // Aborts are allowed to disagree.
                (AtpgResult::Aborted, _) | (_, AtpgResult::Aborted) => {}
                (a, b) => panic!("{fault}: D-alg {a:?} vs PODEM {b:?}"),
            }
        }
    }

    #[test]
    fn dalg_solves_random_resistant_decoder() {
        let nl = decoder(4);
        let dalg = DAlgorithm::new(&nl);
        let sim = FaultSim::new(&nl);
        let y0 = nl.find("y0_g").unwrap();
        let f = Fault::stuck_at_output(y0, false);
        let AtpgResult::Test(cube) = dalg.generate(f, 2000) else {
            panic!("decoder fault should be testable");
        };
        assert!(sim.detects(&cube.random_fill(9), f));
    }

    #[test]
    fn dalg_handles_xor_trees() {
        let nl = parity_tree(8);
        let dalg = DAlgorithm::new(&nl);
        let sim = FaultSim::new(&nl);
        let mut tested = 0;
        for fault in stem_faults(&nl) {
            if let AtpgResult::Test(cube) = dalg.generate(fault, 2000) {
                assert!(sim.detects(&cube.random_fill(2), fault), "{fault}");
                tested += 1;
            }
        }
        // Parity trees have no redundancy: everything testable.
        assert_eq!(tested, stem_faults(&nl).len());
    }

    #[test]
    fn dalg_proves_redundancy() {
        use dft_netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let and = nl.add_gate(GateKind::And, vec![a, b], "and");
        let or = nl.add_gate(GateKind::Or, vec![a, and], "or");
        nl.add_output(or, "po");
        let dalg = DAlgorithm::new(&nl);
        assert_eq!(
            dalg.generate(Fault::stuck_at_output(and, false), 5000),
            AtpgResult::Untestable
        );
    }
}
