//! Gate-level STUMPS hardware: the self-test logic itself as a netlist.
//!
//! [`LogicBist`] models BIST at the pattern level; this module builds the
//! actual hardware — a PRPG (LFSR flops), a phase shifter (XOR spread)
//! feeding the scan chains of a scan-inserted core, and a MISR compacting
//! the scan-outs — and simulates whole self-test *sessions* clock by
//! clock, with optional stuck-at fault injection in the core. This is the
//! structure an AI chip tapes out for in-field self-test of its MAC
//! arrays.
//!
//! [`LogicBist`]: crate::LogicBist

use dft_fault::Fault;
use dft_logicsim::Executor;
use dft_netlist::{GateId, GateKind, Levelization, Netlist};
use dft_scan::{insert_scan, ScanConfig, ScanInsertion};

/// A netlist with embedded STUMPS self-test hardware.
#[derive(Debug)]
pub struct StumpsBist {
    /// Core + scan + PRPG + phase shifter + MISR.
    pub netlist: Netlist,
    /// PRPG register flops, shift order.
    pub prpg: Vec<GateId>,
    /// MISR register flops.
    pub misr: Vec<GateId>,
    /// The `bist_rst` control input (1 = load seed / clear MISR).
    pub rst: GateId,
    /// The scan-enable input (1 = shift, 0 = capture).
    pub se: GateId,
    /// Shift cycles per pattern (longest chain).
    pub shift_len: usize,
}

/// Builds STUMPS hardware around `core`.
///
/// * `chains` — internal scan chains.
/// * `prpg_len` — PRPG register length (≥ 8).
/// * `seed` — PRPG reset seed (also randomizes phase-shifter taps).
///
/// The core's functional primary inputs are driven by extra phase-shifter
/// outputs (standard practice: everything random during BIST). The
/// original PI gates remain in the netlist but drive nothing.
pub fn build_stumps(core: &Netlist, chains: usize, prpg_len: usize, seed: u64) -> StumpsBist {
    assert!((8..=64).contains(&prpg_len));
    let scan: ScanInsertion = insert_scan(core, &ScanConfig { num_chains: chains });
    let mut nl = scan.netlist.clone();
    let se = scan.scan_enable;
    let rst = nl.add_input("bist_rst");
    let nrst = nl.add_gate(GateKind::Not, vec![rst], "bist_nrst");

    // --- PRPG: Galois-style LFSR built from flops + XORs ---------------
    // p[i].D = mux(rst, p[i+1] ^ (tap_i & p[0]), seed_i). We realize the
    // Galois form: when the output bit (p[0]) is 1, tapped stages XOR it
    // in. seed/taps derived from the seed value.
    let taps = 0xB400_u64 | (1 << (prpg_len - 1)); // dense known-good base
    let tmp = nl.add_gate(GateKind::Const0, vec![], "prpg_tmp");
    let prpg: Vec<GateId> = (0..prpg_len)
        .map(|i| nl.add_dff(tmp, &format!("prpg{i}")))
        .collect();
    let out_bit = prpg[0];
    for i in 0..prpg_len {
        let shifted = if i + 1 < prpg_len {
            prpg[i + 1]
        } else {
            // Top bit receives only feedback.
            nl.add_gate(GateKind::Const0, vec![], "prpg_top0")
        };
        let with_fb = if (taps >> i) & 1 == 1 {
            nl.add_gate(
                GateKind::Xor,
                vec![shifted, out_bit],
                &format!("prpg_fb{i}"),
            )
        } else {
            shifted
        };
        // Reset loads the seed bit.
        let seed_bit = if (seed >> (i % 64)) & 1 == 1 || i == 0 {
            nl.add_gate(GateKind::Const1, vec![], &format!("prpg_s1_{i}"))
        } else {
            nl.add_gate(GateKind::Const0, vec![], &format!("prpg_s0_{i}"))
        };
        let d = nl.add_gate(
            GateKind::Mux2,
            vec![rst, with_fb, seed_bit],
            &format!("prpg_d{i}"),
        );
        nl.rewire_fanin(prpg[i], 0, d);
    }

    // --- Phase shifter: XOR spread driving chain scan-ins and PIs ------
    let mut ps_tap = {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % prpg_len
        }
    };
    let mut ps_outputs = Vec::new();
    let num_ps = scan.scan_in.len() + core.num_inputs();
    for o in 0..num_ps {
        let (a, b, c) = (ps_tap(), ps_tap(), ps_tap());
        let x1 = nl.add_gate(GateKind::Xor, vec![prpg[a], prpg[b]], &format!("ps{o}_x1"));
        let x2 = nl.add_gate(GateKind::Xor, vec![x1, prpg[c]], &format!("ps{o}_x2"));
        ps_outputs.push(x2);
    }
    // Drive chain scan-ins.
    for (c, &si) in scan.scan_in.iter().enumerate() {
        rewire_readers_of_input(&mut nl, si, ps_outputs[c]);
    }
    // Drive the core's functional PIs from the remaining outputs.
    for (k, &pi) in core.inputs().iter().enumerate() {
        let ps = ps_outputs[scan.scan_in.len() + k];
        // The PI id is identical in the cloned netlist.
        rewire_readers_of_input(&mut nl, pi, ps);
    }

    // --- MISR: one stage per chain (min 8), XORing the scan-outs -------
    let misr_len = chains.max(8);
    let misr: Vec<GateId> = (0..misr_len)
        .map(|i| nl.add_dff(tmp, &format!("misr{i}")))
        .collect();
    let misr_fb = nl.add_gate(
        GateKind::Xor,
        vec![misr[misr_len - 1], misr[misr_len / 2]],
        "misr_fb",
    );
    for i in 0..misr_len {
        let prev = if i == 0 { misr_fb } else { misr[i - 1] };
        // XOR in a chain output where one exists for this stage.
        let with_so = if i < scan.scan_out.len() {
            let so_src = nl.gate(scan.scan_out[i]).fanins[0];
            nl.add_gate(GateKind::Xor, vec![prev, so_src], &format!("misr_in{i}"))
        } else {
            prev
        };
        // Reset clears.
        let d = nl.add_gate(GateKind::And, vec![with_so, nrst], &format!("misr_d{i}"));
        nl.rewire_fanin(misr[i], 0, d);
    }
    for (i, &m) in misr.iter().enumerate() {
        nl.add_output(m, &format!("misr_q{i}"));
    }

    StumpsBist {
        netlist: nl,
        prpg,
        misr,
        rst,
        se,
        shift_len: scan.shift_cycles(),
    }
}

/// Rewires every reader of an `Input` gate to read `new_src` instead
/// (the input gate remains, undriven and unread).
fn rewire_readers_of_input(nl: &mut Netlist, input: GateId, new_src: GateId) {
    let readers: Vec<GateId> = nl.gate(input).fanouts.to_vec();
    for r in readers {
        let pins: Vec<usize> = nl
            .gate(r)
            .fanins
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f == input)
            .map(|(i, _)| i)
            .collect();
        for pin in pins {
            nl.rewire_fanin(r, pin, new_src);
        }
    }
}

impl StumpsBist {
    /// Runs a self-test session of `patterns` pattern slots, clock by
    /// clock at gate level, optionally forcing a stem stuck-at fault in
    /// the core. Returns the final MISR signature.
    ///
    /// # Panics
    ///
    /// Panics if `fault` is not a stem (output-site) fault — pin faults
    /// need per-reader forcing which the session simulator does not
    /// model.
    pub fn run_session(&self, patterns: usize, fault: Option<Fault>) -> Vec<bool> {
        let nl = &self.netlist;
        if let Some(f) = fault {
            assert!(f.site.pin.is_none(), "session sim forces stem faults only");
        }
        let lv = Levelization::compute(nl).expect("acyclic");
        let mut state = vec![false; nl.num_gates()];

        let cycle = |state: &mut Vec<bool>, rst: bool, se: bool| {
            state[self.rst.index()] = rst;
            state[self.se.index()] = se;
            let mut vals = state.clone();
            // Forced source-side fault (on an Input or flop Q).
            if let Some(f) = fault {
                let g = f.site.gate;
                if matches!(nl.gate(g).kind, GateKind::Input | GateKind::Dff) {
                    vals[g.index()] = f.kind.stuck_value();
                }
            }
            for &id in lv.order() {
                let g = nl.gate(id);
                if matches!(g.kind, GateKind::Input | GateKind::Dff) {
                    continue;
                }
                let ins: Vec<bool> = g.fanins.iter().map(|&x| vals[x.index()]).collect();
                let mut v = g.kind.eval_bool(&ins);
                if let Some(f) = fault {
                    if f.site.gate == id {
                        v = f.kind.stuck_value();
                    }
                }
                vals[id.index()] = v;
            }
            for &ff in nl.dffs() {
                let d = nl.gate(ff).fanins[0];
                state[ff.index()] = vals[d.index()];
            }
        };

        // Reset cycle.
        cycle(&mut state, true, true);
        for _ in 0..patterns {
            for _ in 0..self.shift_len {
                cycle(&mut state, false, true);
            }
            cycle(&mut state, false, false); // capture
        }
        self.misr.iter().map(|&m| state[m.index()]).collect()
    }

    /// Runs one self-test session per entry of `faults` (`None` = fault
    /// free) on `exec`'s worker pool. Sessions are independent gate-level
    /// simulations, so they parallelize perfectly; signatures are
    /// returned in input order and are bit-identical to calling
    /// [`StumpsBist::run_session`] in a loop.
    pub fn run_sessions(
        &self,
        patterns: usize,
        faults: &[Option<Fault>],
        exec: &Executor,
    ) -> Vec<Vec<bool>> {
        exec.map(faults, |_, &f| self.run_session(patterns, f))
    }

    /// Fraction of `faults` whose injected-session signature differs from
    /// the fault-free golden signature — the STUMPS analogue of fault
    /// coverage, measured end to end through PRPG, phase shifter, scan,
    /// and MISR.
    ///
    /// # Panics
    ///
    /// Panics if any fault is a pin fault (see [`StumpsBist::run_session`]).
    pub fn signature_coverage(&self, patterns: usize, faults: &[Fault], exec: &Executor) -> f64 {
        if faults.is_empty() {
            return 1.0;
        }
        let golden = self.run_session(patterns, None);
        let wrapped: Vec<Option<Fault>> = faults.iter().copied().map(Some).collect();
        let flagged = self
            .run_sessions(patterns, &wrapped, exec)
            .iter()
            .filter(|sig| **sig != golden)
            .count();
        flagged as f64 / faults.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::universe_stuck_at;
    use dft_netlist::generators::{counter, mac_pe};

    #[test]
    fn stumps_netlist_is_well_formed() {
        let core = counter(8);
        let bist = build_stumps(&core, 2, 16, 0xB1);
        bist.netlist.validate().unwrap();
        Levelization::compute(&bist.netlist).unwrap();
        assert_eq!(bist.prpg.len(), 16);
        assert!(bist.misr.len() >= 8);
    }

    #[test]
    fn signature_is_deterministic_and_seed_sensitive() {
        let core = counter(8);
        let b1 = build_stumps(&core, 2, 16, 0xB1);
        let s1 = b1.run_session(32, None);
        let s1b = b1.run_session(32, None);
        assert_eq!(s1, s1b);
        let b2 = build_stumps(&core, 2, 16, 0xB2);
        let s2 = b2.run_session(32, None);
        assert_ne!(s1, s2);
        // And the signature is not degenerate.
        assert!(s1.iter().any(|&b| b) || s2.iter().any(|&b| b));
    }

    #[test]
    fn injected_core_faults_corrupt_the_signature() {
        let core = mac_pe(4);
        let bist = build_stumps(&core, 4, 24, 0x5EED);
        let golden = bist.run_session(48, None);
        let universe = universe_stuck_at(&core);
        let mut flagged = 0usize;
        let mut trials = 0usize;
        for (i, &f) in universe.iter().enumerate() {
            if f.site.pin.is_some() || i % 11 != 0 {
                continue;
            }
            // Only core-internal stem faults (ids valid in the core) —
            // the bist netlist shares those ids.
            trials += 1;
            let sig = bist.run_session(48, Some(f));
            if sig != golden {
                flagged += 1;
            }
        }
        assert!(trials >= 10);
        assert!(
            flagged * 10 >= trials * 8,
            "only {flagged}/{trials} faults flagged by signature"
        );
    }

    #[test]
    fn parallel_sessions_match_serial() {
        let core = counter(8);
        let bist = build_stumps(&core, 2, 16, 0xB1);
        let universe = universe_stuck_at(&core);
        let faults: Vec<Option<_>> = universe
            .iter()
            .filter(|f| f.site.pin.is_none())
            .take(12)
            .map(|&f| Some(f))
            .chain(std::iter::once(None))
            .collect();
        let serial: Vec<_> = faults.iter().map(|&f| bist.run_session(8, f)).collect();
        for threads in [1usize, 3, 8] {
            let exec = Executor::with_threads(threads);
            assert_eq!(
                bist.run_sessions(8, &faults, &exec),
                serial,
                "threads={threads}"
            );
        }
        // Coverage helper agrees with a hand count.
        let stems: Vec<_> = universe
            .iter()
            .filter(|f| f.site.pin.is_none())
            .take(12)
            .copied()
            .collect();
        let golden = bist.run_session(8, None);
        let by_hand = stems
            .iter()
            .filter(|&&f| bist.run_session(8, Some(f)) != golden)
            .count();
        let cov = bist.signature_coverage(8, &stems, &Executor::with_threads(4));
        assert!((cov - by_hand as f64 / stems.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn prpg_actually_toggles_the_chains() {
        // After a session, the MISR must have absorbed nonconstant data:
        // two different pattern counts give different signatures.
        let core = counter(4);
        let bist = build_stumps(&core, 1, 16, 0x77);
        let s16 = bist.run_session(16, None);
        let s17 = bist.run_session(17, None);
        assert_ne!(s16, s17);
    }
}
