//! A maximal-length-style LFSR used as the BIST pattern source.

/// A Fibonacci LFSR over up to 64 bits with known-primitive polynomials
/// for common widths (falls back to a dense tap set otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
    width: u32,
    taps: u64,
}

/// Galois feedback masks (maximal-length polynomials from the classic
/// XAPP052 table) for selected widths; a dense fallback otherwise.
fn primitive_taps(width: u32) -> u64 {
    match width {
        4 => 0xC,          // taps 4,3
        8 => 0xB8,         // taps 8,6,5,4
        16 => 0xB400,      // taps 16,15,13,4
        24 => 0xE1_0000,   // taps 24,23,22,17
        32 => 0xA300_0000, // taps 32,30,26,25
        _ => {
            // Dense fallback (not guaranteed maximal, adequate spread).
            let mut t = 1u64 << (width - 1) | 1;
            if width > 2 {
                t |= 1 << (width / 2);
            }
            if width > 3 {
                t |= 1 << (width / 3);
            }
            t
        }
    }
}

impl Lfsr {
    /// Creates an LFSR of `width` bits (1..=64) with the given nonzero
    /// seed (zero seeds are mapped to 1: the all-zero state is a fixed
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn new(width: u32, seed: u64) -> Lfsr {
        assert!((1..=64).contains(&width), "width out of range");
        let mask = if width == 64 { !0 } else { (1u64 << width) - 1 };
        let mut state = seed & mask;
        if state == 0 {
            state = 1;
        }
        Lfsr {
            state,
            width,
            taps: primitive_taps(width) & mask,
        }
    }

    /// LFSR register width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one cycle (Galois right shift) and returns the output bit
    /// (the bit shifted out).
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.taps;
        }
        out
    }

    /// Produces the next `n` output bits.
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.step()).collect()
    }
}

impl Iterator for Lfsr {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr4_has_period_15() {
        let mut l = Lfsr::new(4, 1);
        let start = l.state();
        let mut period = 0usize;
        loop {
            l.step();
            period += 1;
            if l.state() == start || period > 20 {
                break;
            }
        }
        assert_eq!(period, 15);
    }

    #[test]
    fn lfsr8_visits_many_states() {
        let mut l = Lfsr::new(8, 0xA5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..255 {
            seen.insert(l.state());
            l.step();
        }
        assert!(seen.len() >= 200, "only {} states", seen.len());
    }

    #[test]
    fn zero_seed_is_fixed() {
        let l = Lfsr::new(16, 0);
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn bit_stream_is_balanced() {
        let mut l = Lfsr::new(16, 0xBEEF);
        let bits = l.bits(4096);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((1700..=2400).contains(&ones), "{ones} ones");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<bool> = Lfsr::new(16, 7).take(100).collect();
        let b: Vec<bool> = Lfsr::new(16, 7).take(100).collect();
        let c: Vec<bool> = Lfsr::new(16, 8).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
