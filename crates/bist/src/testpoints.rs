//! COP-guided test-point insertion for logic BIST.
//!
//! Control points raise the probability of reaching hard-to-control
//! values; observe points make buried nets directly visible. Both are
//! inserted at the nets with the worst COP detectability, the standard
//! LBIST coverage lever (experiment E5 ablation).

use dft_logicsim::testability::cop;
use dft_netlist::{GateId, GateKind, Netlist};

/// The flavour of an inserted test point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestPointKind {
    /// An extra primary output observing the net.
    Observe,
    /// `OR(net, ctl)` control point: a new input can force the net to 1.
    ControlOne,
    /// `AND(net, !ctl)` control point: a new input can force the net to 0.
    ControlZero,
}

/// One inserted test point.
#[derive(Debug, Clone, Copy)]
pub struct TestPoint {
    /// The net the point was attached to (original netlist id).
    pub net: GateId,
    /// What was inserted.
    pub kind: TestPointKind,
}

/// Summary of a test-point insertion pass.
#[derive(Debug, Clone)]
pub struct TestPointReport {
    /// Points inserted, in selection order (worst detectability first).
    pub points: Vec<TestPoint>,
    /// Gates added to the netlist.
    pub added_gates: usize,
}

/// Inserts up to `budget` test points into a copy of `nl`, selected by
/// ascending COP detectability. Returns the modified netlist and a
/// report.
///
/// Control inputs are new primary inputs named `tp_ctl{i}`; during BIST
/// they are driven by the PRPG like any other input, and during
/// functional mode they are tied inactive (0), which the inserted gate
/// structure makes transparent.
pub fn insert_test_points(nl: &Netlist, budget: usize) -> (Netlist, TestPointReport) {
    let measures = cop(nl);
    // Score every logic net by its worst-case stuck-at detectability.
    let mut scored: Vec<(f64, GateId)> = nl
        .iter()
        .filter(|(_, g)| g.kind.is_logic() || matches!(g.kind, GateKind::Input | GateKind::Dff))
        .map(|(id, _)| {
            let d0 = measures.detectability(id, false);
            let d1 = measures.detectability(id, true);
            (d0.min(d1), id)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut out = nl.clone();
    let before = out.num_gates();
    let mut points = Vec::new();
    for &(_, net) in scored.iter().take(budget) {
        let obs = measures.obs[net.index()];
        // Controllability lever: a control point on a non-PI net lets the
        // PRPG drive the net towards the value its readers need
        // (non-controlling side inputs), which is where random-resistant
        // structures like decoders lose coverage. Polarity follows the
        // majority non-controlling value of the readers.
        let is_pi = matches!(nl.gate(net).kind, GateKind::Input);
        if !is_pi {
            let mut want_one = 0i32;
            for &r in &nl.gate(net).fanouts {
                if let Some(cv) = nl.gate(r).kind.controlling_value() {
                    if cv {
                        want_one -= 1; // OR-family: non-controlling is 0
                    } else {
                        want_one += 1; // AND-family: non-controlling is 1
                    }
                }
            }
            let kind = if want_one >= 0 {
                TestPointKind::ControlOne
            } else {
                TestPointKind::ControlZero
            };
            let ctl = out.add_input(&format!("tp_ctl{}", points.len()));
            let cp = match kind {
                TestPointKind::ControlOne => out.add_gate(
                    GateKind::Or,
                    vec![net, ctl],
                    &format!("tp_or{}", points.len()),
                ),
                _ => {
                    let inv =
                        out.add_gate(GateKind::Not, vec![ctl], &format!("tp_inv{}", points.len()));
                    out.add_gate(
                        GateKind::And,
                        vec![net, inv],
                        &format!("tp_and{}", points.len()),
                    )
                }
            };
            rewire_readers(&mut out, net, cp);
            points.push(TestPoint { net, kind });
        }
        // Observability weakness: make the (raw) net directly visible.
        // Inserted after the control point so the observe marker sees the
        // fault site itself rather than the gated copy.
        if obs < 0.9 {
            out.add_output(net, &format!("tp_obs{}", points.len()));
            points.push(TestPoint {
                net,
                kind: TestPointKind::Observe,
            });
        }
    }
    let added = out.num_gates() - before;
    (
        out,
        TestPointReport {
            points,
            added_gates: added,
        },
    )
}

/// Rewires every reader of `net` (except the new control-point gate
/// itself) to read `replacement`.
fn rewire_readers(nl: &mut Netlist, net: GateId, replacement: GateId) {
    let readers: Vec<GateId> = nl
        .gate(net)
        .fanouts
        .iter()
        .copied()
        .filter(|&r| r != replacement)
        .collect();
    for r in readers {
        let pins: Vec<usize> = nl
            .gate(r)
            .fanins
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f == net)
            .map(|(i, _)| i)
            .collect();
        for pin in pins {
            nl.rewire_fanin(r, pin, replacement);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicBist;
    use dft_netlist::generators::decoder;
    use dft_netlist::Levelization;

    #[test]
    fn insertion_preserves_structure() {
        let nl = decoder(5);
        let (tp, report) = insert_test_points(&nl, 8);
        tp.validate().unwrap();
        Levelization::compute(&tp).unwrap();
        // Up to two physical points (control + observe) per selected net.
        assert!(report.points.len() >= 8 && report.points.len() <= 16);
        assert!(report.added_gates >= 8);
    }

    #[test]
    fn control_points_are_transparent_when_inactive() {
        use dft_logicsim::{GoodSim, PatternSet};
        let nl = decoder(4);
        let (tp, _) = insert_test_points(&nl, 6);
        let sim_orig = GoodSim::new(&nl);
        let sim_tp = GoodSim::new(&tp);
        let ps = PatternSet::random(&nl, 32, 3);
        for p in ps.iter() {
            // Extend the pattern with 0s for the new tp_ctl inputs.
            let mut p2 = p.clone();
            p2.resize(tp.num_inputs() + tp.num_dffs(), false);
            let r1 = sim_orig.simulate(p);
            let r2 = sim_tp.simulate(&p2);
            // Original outputs are a prefix of the test-pointed outputs
            // (observe points appended after).
            assert_eq!(&r2[..r1.len()], &r1[..], "functional change!");
        }
    }

    #[test]
    fn test_points_lift_random_coverage() {
        let nl = decoder(6);
        let base = LogicBist::new(&nl, 32).run(512, 0xE5);
        let (tp, _) = insert_test_points(&nl, 12);
        let boosted = LogicBist::new(&tp, 32).run(512, 0xE5);
        assert!(
            boosted.coverage > base.coverage,
            "base {} boosted {}",
            base.coverage,
            boosted.coverage
        );
    }
}
