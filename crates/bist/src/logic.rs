//! Logic BIST: STUMPS-style self-test session.

use dft_checkpoint::CancelToken;
use dft_fault::{universe_stuck_at, FaultList};
use dft_logicsim::{AnyKernel, Executor, PatternSet, SimKernel};
use dft_metrics::MetricsHandle;
use dft_netlist::Netlist;
use dft_trace::TraceHandle;

use crate::Lfsr;

/// Outcome of a logic-BIST session.
#[derive(Debug, Clone)]
pub struct BistResult {
    /// Patterns applied.
    pub patterns: usize,
    /// Stuck-at fault coverage achieved by the session.
    pub coverage: f64,
    /// The fault-free MISR-style signature (XOR-folded response digest)
    /// that a tester compares against.
    pub signature: u64,
    /// Faults left undetected (random-pattern-resistant residue).
    pub undetected: usize,
    /// `true` when a [`CancelToken`] fired during the session's fault
    /// simulation: the interrupted pass marked no detections, so
    /// `coverage`/`undetected` understate the session and the run must
    /// be repeated, never trusted as a clean result.
    pub interrupted: bool,
}

/// A STUMPS-style logic-BIST controller: an LFSR expands into scan loads,
/// the response digest emulates the MISR.
///
/// The pattern source is modeled at the pattern level (each source bit
/// drawn from the PRPG stream), which is behaviourally equivalent to the
/// hardware PRPG + phase-shifter for coverage purposes.
#[derive(Debug)]
pub struct LogicBist<'a> {
    nl: &'a Netlist,
    prpg_width: u32,
    exec: Executor,
    metrics: MetricsHandle,
    trace: TraceHandle,
    cancel: Option<CancelToken>,
}

impl<'a> LogicBist<'a> {
    /// Creates a controller for `nl` with a `prpg_width`-bit PRPG.
    pub fn new(nl: &'a Netlist, prpg_width: u32) -> LogicBist<'a> {
        LogicBist {
            nl,
            prpg_width,
            exec: Executor::serial(),
            metrics: MetricsHandle::disabled(),
            trace: TraceHandle::disabled(),
            cancel: None,
        }
    }

    /// Attaches a cancellation token: session fault simulation drains at
    /// the next fault boundary once the token fires, and the result is
    /// flagged [`BistResult::interrupted`].
    pub fn cancel(mut self, cancel: CancelToken) -> LogicBist<'a> {
        self.cancel = Some(cancel);
        self
    }

    /// Points session/LFSR/MISR cycle counters (and the fault simulators
    /// underneath) at `metrics`.
    pub fn metrics(mut self, metrics: MetricsHandle) -> LogicBist<'a> {
        self.metrics = metrics;
        self
    }

    /// Points span recording at `trace`: each session records an
    /// `lbist_session` span (`arg` = pattern count) around the
    /// fault-simulation and signature spans underneath.
    pub fn trace(mut self, trace: TraceHandle) -> LogicBist<'a> {
        self.trace = trace;
        self
    }

    /// Sets the fault-simulation worker count (`0` = one per hardware
    /// thread, `1` = serial). Coverage, signatures, and weight sets are
    /// bit-identical for any value.
    pub fn threads(mut self, n: usize) -> LogicBist<'a> {
        self.exec = Executor::with_threads(n);
        self
    }

    /// Generates the first `n` PRPG patterns.
    pub fn patterns(&self, n: usize, seed: u64) -> PatternSet {
        let width = self.nl.num_inputs() + self.nl.num_dffs();
        let mut lfsr = Lfsr::new(self.prpg_width, seed);
        let mut ps = PatternSet::new(width);
        for _ in 0..n {
            ps.push(lfsr.bits(width));
        }
        if let Some(m) = self.metrics.get() {
            m.bist_patterns.add(n as u64);
            // One LFSR shift per drawn bit.
            m.lfsr_cycles.add((n * width) as u64);
        }
        ps
    }

    /// Runs a BIST session of `n` patterns: measures stuck-at coverage and
    /// computes the fault-free signature.
    pub fn run(&self, n: usize, seed: u64) -> BistResult {
        let _session = self.trace.span_arg("lbist_session", n as u64);
        if let Some(m) = self.metrics.get() {
            m.bist_sessions.inc();
        }
        let ps = self.patterns(n, seed);
        let mut sim = AnyKernel::compile(self.nl)
            .with_metrics(self.metrics.clone())
            .with_trace(self.trace.clone());
        if let Some(tok) = &self.cancel {
            sim = sim.with_cancel(tok.clone());
        }
        let mut list = FaultList::new(universe_stuck_at(self.nl));
        let stats = sim.fault_batch(&ps, &mut list, &self.exec);
        let signature = self.signature(&ps);
        BistResult {
            patterns: n,
            coverage: list.fault_coverage(),
            signature,
            undetected: list.len() - list.num_detected(),
            interrupted: stats.interrupted,
        }
    }

    /// Computes the response digest of a pattern set (the fault-free
    /// signature): a rotating XOR fold of all response bits, equivalent in
    /// detection behaviour to a MISR for fully-specified responses.
    pub fn signature(&self, ps: &PatternSet) -> u64 {
        let _span = self.trace.span_arg("misr_signature", ps.len() as u64);
        let sim = AnyKernel::compile(self.nl).with_metrics(self.metrics.clone());
        if let Some(m) = self.metrics.get() {
            // One MISR absorb cycle per response shifted out.
            m.misr_cycles.add(ps.len() as u64);
        }
        let mut sig = 0u64;
        for resp in sim.eval_batch(ps) {
            for (i, bit) in resp.iter().enumerate() {
                sig = sig.rotate_left(1) ^ ((*bit as u64) << (i % 7));
            }
            sig = sig.rotate_left(11);
        }
        sig
    }

    /// Derives a weighted-random *weight set* from the residual faults of
    /// a `base_patterns`-long unweighted session: the still-undetected
    /// faults are targeted with PODEM and each source's weight is the
    /// (Laplace-smoothed) fraction of 1s among the resulting cube care
    /// bits — the industrial "cube-profiling" recipe for weighted LBIST.
    pub fn weight_set_from_residual(
        &self,
        base_patterns: usize,
        seed: u64,
        backtrack_limit: u32,
    ) -> Vec<f64> {
        use dft_atpg::{AtpgResult, Podem};
        let ps = self.patterns(base_patterns, seed);
        let sim = AnyKernel::compile(self.nl).with_metrics(self.metrics.clone());
        let mut list = FaultList::new(universe_stuck_at(self.nl));
        sim.fault_batch(&ps, &mut list, &self.exec);
        let mut podem = Podem::new(self.nl);
        podem.set_metrics(self.metrics.clone());
        let width = self.nl.num_inputs() + self.nl.num_dffs();
        let mut ones = vec![0u32; width];
        let mut cares = vec![0u32; width];
        for idx in list.undetected() {
            let fault = list.faults()[idx];
            if let (AtpgResult::Test(cube), _) = podem.generate(fault, backtrack_limit) {
                for (s, bit) in cube.bits().iter().enumerate() {
                    if let Some(v) = bit {
                        cares[s] += 1;
                        if *v {
                            ones[s] += 1;
                        }
                    }
                }
            }
        }
        ones.iter()
            .zip(&cares)
            .map(|(&o, &c)| (o as f64 + 1.0) / (c as f64 + 2.0))
            .collect()
    }

    /// Generates `n` weighted-random patterns (behavioural model of a
    /// weighted PRPG: bit `s` is 1 with probability `weights[s]`).
    pub fn weighted_patterns(&self, n: usize, seed: u64, weights: &[f64]) -> PatternSet {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let width = self.nl.num_inputs() + self.nl.num_dffs();
        assert_eq!(weights.len(), width, "weight set width");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = PatternSet::new(width);
        for _ in 0..n {
            ps.push(
                weights
                    .iter()
                    .map(|&w| rng.gen_bool(w.clamp(0.02, 0.98)))
                    .collect(),
            );
        }
        ps
    }

    /// Runs a weighted BIST session (same accounting as [`LogicBist::run`]).
    pub fn run_weighted(&self, n: usize, seed: u64, weights: &[f64]) -> BistResult {
        let _session = self.trace.span_arg("lbist_weighted_session", n as u64);
        if let Some(m) = self.metrics.get() {
            m.bist_sessions.inc();
            m.bist_patterns.add(n as u64);
        }
        let ps = self.weighted_patterns(n, seed, weights);
        let mut sim = AnyKernel::compile(self.nl)
            .with_metrics(self.metrics.clone())
            .with_trace(self.trace.clone());
        if let Some(tok) = &self.cancel {
            sim = sim.with_cancel(tok.clone());
        }
        let mut list = FaultList::new(universe_stuck_at(self.nl));
        let stats = sim.fault_batch(&ps, &mut list, &self.exec);
        BistResult {
            patterns: n,
            coverage: list.fault_coverage(),
            signature: self.signature(&ps),
            undetected: list.len() - list.num_detected(),
            interrupted: stats.interrupted,
        }
    }

    /// Coverage as a function of pattern count, evaluated at the given
    /// checkpoints (shares fault-dropping work across checkpoints).
    pub fn coverage_curve(&self, checkpoints: &[usize], seed: u64) -> Vec<(usize, f64)> {
        let max = checkpoints.iter().copied().max().unwrap_or(0);
        let ps = self.patterns(max, seed);
        let sim = AnyKernel::compile(self.nl).with_metrics(self.metrics.clone());
        let mut list = FaultList::new(universe_stuck_at(self.nl));
        sim.fault_batch(&ps, &mut list, &self.exec);
        // First-detection indices give the whole curve in one pass.
        checkpoints
            .iter()
            .map(|&n| {
                let detected = (0..list.len())
                    .filter(|&i| match list.status(i) {
                        dft_fault::FaultStatus::Detected(p) => (p as usize) < n,
                        _ => false,
                    })
                    .count();
                (n, detected as f64 / list.len().max(1) as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_fault::{universe_stuck_at, FaultList};
    use dft_netlist::generators::{decoder, parity_tree};
    use dft_netlist::GateKind;

    #[test]
    fn parity_tree_reaches_high_coverage_fast() {
        let nl = parity_tree(16);
        let bist = LogicBist::new(&nl, 32);
        let r = bist.run(128, 0xB00);
        assert!(r.coverage > 0.95, "coverage {}", r.coverage);
    }

    #[test]
    fn decoder_is_random_resistant() {
        let nl = decoder(6);
        let bist = LogicBist::new(&nl, 32);
        let short = bist.run(64, 0xB01);
        let long = bist.run(2048, 0xB01);
        assert!(long.coverage > short.coverage);
        // Even 2k patterns struggle with 1-of-64 decodes plus enable.
        assert!(short.coverage < 0.999);
    }

    #[test]
    fn signature_distinguishes_seeds_and_is_stable() {
        let nl = parity_tree(8);
        let bist = LogicBist::new(&nl, 24);
        let r1 = bist.run(64, 1);
        let r2 = bist.run(64, 1);
        let r3 = bist.run(64, 2);
        assert_eq!(r1.signature, r2.signature);
        assert_ne!(r1.signature, r3.signature);
    }

    #[test]
    fn weighted_session_lifts_residual_coverage_on_decoder() {
        // Industrial usage: a flat session first, then a weighted session
        // aimed at the residue. The two-session coverage must beat an
        // all-flat budget of the same total length. The canonical
        // weighted-random showcase: wide AND/OR gates whose controlling
        // cubes random patterns essentially never hit (p = 2^-24).
        let mut nl = dft_netlist::Netlist::new("wide");
        let ins: Vec<_> = (0..24).map(|i| nl.add_input(&format!("x{i}"))).collect();
        let and = nl.add_gate(GateKind::And, ins.clone(), "wide_and");
        let or = nl.add_gate(GateKind::Or, ins, "wide_or");
        nl.add_output(and, "po_and");
        nl.add_output(or, "po_or");
        let bist = LogicBist::new(&nl, 32);
        let sim = AnyKernel::compile(&nl);
        let exec = Executor::serial();

        let all_flat = {
            let ps = bist.patterns(512, 0xAA);
            let mut list = FaultList::new(universe_stuck_at(&nl));
            sim.fault_batch(&ps, &mut list, &exec);
            list.fault_coverage()
        };
        let mixed = {
            let mut list = FaultList::new(universe_stuck_at(&nl));
            sim.fault_batch(&bist.patterns(256, 0xAA), &mut list, &exec);
            let weights = bist.weight_set_from_residual(256, 0xAA, 64);
            sim.fault_batch(
                &bist.weighted_patterns(256, 0xAB, &weights),
                &mut list,
                &exec,
            );
            list.fault_coverage()
        };
        assert!(
            mixed >= all_flat,
            "all-flat {all_flat} vs flat+weighted {mixed}"
        );
    }

    #[test]
    fn weight_set_shape_matches_structure() {
        // The decoder's enable input should get a high weight (every
        // residual cube wants en=1).
        let nl = decoder(6);
        let bist = LogicBist::new(&nl, 32);
        let weights = bist.weight_set_from_residual(64, 0x5, 64);
        let en_idx = nl
            .combinational_sources()
            .iter()
            .position(|&s| s == nl.find("en").unwrap())
            .unwrap();
        assert!(weights[en_idx] > 0.6, "en weight {}", weights[en_idx]);
    }

    #[test]
    fn cancelled_session_is_flagged_and_claims_no_coverage() {
        let nl = parity_tree(16);
        let tok = CancelToken::new();
        tok.cancel();
        let bist = LogicBist::new(&nl, 32).cancel(tok);
        let r = bist.run(128, 0xB00);
        assert!(r.interrupted);
        assert_eq!(r.coverage, 0.0, "interrupted session must mark nothing");
        let clean = LogicBist::new(&nl, 32).run(128, 0xB00);
        assert!(!clean.interrupted);
        assert!(clean.coverage > 0.95);
    }

    #[test]
    fn coverage_curve_is_monotonic() {
        let nl = decoder(4);
        let bist = LogicBist::new(&nl, 32);
        let curve = bist.coverage_curve(&[16, 64, 256, 1024], 5);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve must not decrease: {curve:?}");
        }
        assert!(curve.last().unwrap().1 > curve[0].1);
    }
}
