//! Behavioural SRAM with injectable memory-fault models.
//!
//! Bit-oriented (one bit per address), the standard abstraction of the
//! memory-test literature. Supported fault classes:
//!
//! | Class | Behaviour |
//! |-------|-----------|
//! | SAF   | cell stuck at 0/1 |
//! | TF    | cell cannot make one transition (up or down) |
//! | CFin  | an aggressor write transition inverts the victim |
//! | CFid  | an aggressor write transition forces the victim to a value |
//! | CFst  | while the aggressor holds a value, the victim is stuck |
//! | AF    | two addresses resolve to the same cell |

/// The modeled memory-fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFaultKind {
    /// Stuck-at fault: the cell always reads `value`.
    StuckAt {
        /// The stuck value.
        value: bool,
    },
    /// Transition fault: writes requiring a `rising` (0→1) or falling
    /// (1→0) transition silently fail.
    Transition {
        /// `true` = up-transition fault (cell cannot go 0→1).
        rising: bool,
    },
    /// Inversion coupling fault: when the aggressor cell makes the given
    /// write transition, the victim cell inverts.
    CouplingInversion {
        /// Aggressor address.
        aggressor: usize,
        /// `true` = triggered by the aggressor's 0→1 transition.
        rising: bool,
    },
    /// Idempotent coupling fault: the aggressor transition forces the
    /// victim to `value`.
    CouplingIdempotent {
        /// Aggressor address.
        aggressor: usize,
        /// `true` = triggered by the aggressor's 0→1 transition.
        rising: bool,
        /// Value forced onto the victim.
        value: bool,
    },
    /// State coupling fault: while the aggressor holds `agg_value`, the
    /// victim reads as `value`.
    CouplingState {
        /// Aggressor address.
        aggressor: usize,
        /// Aggressor state that activates the fault.
        agg_value: bool,
        /// Value the victim is forced to while active.
        value: bool,
    },
    /// Address-decoder fault: accesses to this address alias to
    /// `target` instead.
    AddressAlias {
        /// The address actually accessed.
        target: usize,
    },
}

impl MemFaultKind {
    /// Short class label used in the E6 detection-matrix table.
    pub fn class_name(&self) -> &'static str {
        match self {
            MemFaultKind::StuckAt { .. } => "SAF",
            MemFaultKind::Transition { .. } => "TF",
            MemFaultKind::CouplingInversion { .. } => "CFin",
            MemFaultKind::CouplingIdempotent { .. } => "CFid",
            MemFaultKind::CouplingState { .. } => "CFst",
            MemFaultKind::AddressAlias { .. } => "AF",
        }
    }
}

/// One injected fault: a kind attached to a victim cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The victim address.
    pub cell: usize,
    /// The fault behaviour.
    pub kind: MemFaultKind,
}

/// A behavioural bit-oriented SRAM with zero or more injected faults.
///
/// The classic single-fault construction ([`SramModel::with_fault`])
/// matches the memory-test literature; the multi-fault form
/// ([`SramModel::with_faults`]) models the defect clusters that
/// redundancy repair targets. Faults are applied in injection order:
/// the first matching masking fault wins a read, any matching transition
/// fault blocks a write, and every matching coupling trigger fires.
#[derive(Debug, Clone)]
pub struct SramModel {
    cells: Vec<bool>,
    faults: Vec<MemFault>,
}

impl SramModel {
    /// Creates a fault-free memory of `size` bits, initialized to 0.
    pub fn new(size: usize) -> SramModel {
        SramModel {
            cells: vec![false; size],
            faults: Vec::new(),
        }
    }

    /// Creates a memory with `fault` injected.
    ///
    /// # Panics
    ///
    /// Panics if any referenced address is out of range.
    pub fn with_fault(size: usize, fault: MemFault) -> SramModel {
        SramModel::with_faults(size, vec![fault])
    }

    /// Creates a memory with every fault in `faults` injected.
    ///
    /// # Panics
    ///
    /// Panics if any referenced address is out of range.
    pub fn with_faults(size: usize, faults: Vec<MemFault>) -> SramModel {
        for fault in &faults {
            assert!(fault.cell < size, "victim out of range");
            match fault.kind {
                MemFaultKind::CouplingInversion { aggressor, .. }
                | MemFaultKind::CouplingIdempotent { aggressor, .. }
                | MemFaultKind::CouplingState { aggressor, .. } => {
                    assert!(aggressor < size && aggressor != fault.cell);
                }
                MemFaultKind::AddressAlias { target } => {
                    assert!(target < size && target != fault.cell);
                }
                _ => {}
            }
        }
        SramModel {
            cells: vec![false; size],
            faults,
        }
    }

    /// Memory size in bits.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// The first injected fault, if any (the classic single-fault view).
    pub fn fault(&self) -> Option<MemFault> {
        self.faults.first().copied()
    }

    /// All injected faults, in injection order.
    pub fn faults(&self) -> &[MemFault] {
        &self.faults
    }

    fn resolve(&self, addr: usize) -> usize {
        for fault in &self.faults {
            if let MemFault {
                cell,
                kind: MemFaultKind::AddressAlias { target },
            } = *fault
            {
                if addr == cell {
                    return target;
                }
            }
        }
        addr
    }

    /// Reads the bit at `addr` through the fault model.
    pub fn read(&self, addr: usize) -> bool {
        let addr = self.resolve(addr);
        let raw = self.cells[addr];
        for fault in &self.faults {
            match *fault {
                MemFault {
                    cell,
                    kind: MemFaultKind::StuckAt { value },
                } if cell == addr => return value,
                MemFault {
                    cell,
                    kind:
                        MemFaultKind::CouplingState {
                            aggressor,
                            agg_value,
                            value,
                        },
                } if cell == addr && self.cells[aggressor] == agg_value => return value,
                _ => {}
            }
        }
        raw
    }

    /// Writes the bit at `addr` through the fault model.
    pub fn write(&mut self, addr: usize, value: bool) {
        let addr = self.resolve(addr);
        let old = self.cells[addr];
        // Transition faults block the write.
        for fault in &self.faults {
            if let MemFault {
                cell,
                kind: MemFaultKind::Transition { rising },
            } = *fault
            {
                if cell == addr && old != value && (value == rising) {
                    return; // the required transition silently fails
                }
            }
        }
        self.cells[addr] = value;
        // Stuck-at: the stored value is irrelevant (read masks it), but
        // keep the write for aggressor bookkeeping.
        // Coupling faults triggered by this write's transition.
        if old != value {
            for fi in 0..self.faults.len() {
                match self.faults[fi] {
                    MemFault {
                        cell,
                        kind: MemFaultKind::CouplingInversion { aggressor, rising },
                    } if aggressor == addr && value == rising => {
                        self.cells[cell] = !self.cells[cell];
                    }
                    MemFault {
                        cell,
                        kind:
                            MemFaultKind::CouplingIdempotent {
                                aggressor,
                                rising,
                                value: forced,
                            },
                    } if aggressor == addr && value == rising => {
                        self.cells[cell] = forced;
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_read_write() {
        let mut m = SramModel::new(16);
        m.write(3, true);
        assert!(m.read(3));
        assert!(!m.read(4));
        m.write(3, false);
        assert!(!m.read(3));
    }

    #[test]
    fn stuck_at_reads_constant() {
        let mut m = SramModel::with_fault(
            8,
            MemFault {
                cell: 2,
                kind: MemFaultKind::StuckAt { value: true },
            },
        );
        assert!(m.read(2));
        m.write(2, false);
        assert!(m.read(2));
    }

    #[test]
    fn transition_fault_blocks_one_direction() {
        let mut m = SramModel::with_fault(
            8,
            MemFault {
                cell: 5,
                kind: MemFaultKind::Transition { rising: true },
            },
        );
        m.write(5, true); // 0 -> 1 blocked
        assert!(!m.read(5));
        // Force the cell to 1 via... it cannot be forced; falling works
        // from the (never-reached) 1 state. Write 0 is fine.
        m.write(5, false);
        assert!(!m.read(5));
    }

    #[test]
    fn coupling_inversion_flips_victim() {
        let mut m = SramModel::with_fault(
            8,
            MemFault {
                cell: 1,
                kind: MemFaultKind::CouplingInversion {
                    aggressor: 6,
                    rising: true,
                },
            },
        );
        m.write(1, true);
        m.write(6, true); // aggressor rises -> victim inverts
        assert!(!m.read(1));
        m.write(6, false); // falling: no effect
        assert!(!m.read(1));
    }

    #[test]
    fn coupling_idempotent_forces_value() {
        let mut m = SramModel::with_fault(
            8,
            MemFault {
                cell: 0,
                kind: MemFaultKind::CouplingIdempotent {
                    aggressor: 7,
                    rising: false,
                    value: true,
                },
            },
        );
        m.write(7, true);
        m.write(0, false);
        m.write(7, false); // falling aggressor forces victim to 1
        assert!(m.read(0));
    }

    #[test]
    fn coupling_state_masks_reads() {
        let mut m = SramModel::with_fault(
            8,
            MemFault {
                cell: 3,
                kind: MemFaultKind::CouplingState {
                    aggressor: 4,
                    agg_value: true,
                    value: false,
                },
            },
        );
        m.write(3, true);
        assert!(m.read(3));
        m.write(4, true);
        assert!(!m.read(3)); // masked while aggressor holds 1
        m.write(4, false);
        assert!(m.read(3)); // back to the stored value
    }

    #[test]
    fn address_alias_maps_accesses() {
        let mut m = SramModel::with_fault(
            8,
            MemFault {
                cell: 2,
                kind: MemFaultKind::AddressAlias { target: 5 },
            },
        );
        m.write(2, true); // actually writes cell 5
        assert!(m.read(5));
        assert!(m.read(2)); // reads cell 5
        m.write(5, false);
        assert!(!m.read(2));
    }

    #[test]
    fn multiple_faults_apply_independently() {
        let mut m = SramModel::with_faults(
            16,
            vec![
                MemFault {
                    cell: 2,
                    kind: MemFaultKind::StuckAt { value: true },
                },
                MemFault {
                    cell: 9,
                    kind: MemFaultKind::Transition { rising: true },
                },
            ],
        );
        assert_eq!(m.faults().len(), 2);
        // Stuck-at victim reads 1 regardless of writes.
        m.write(2, false);
        assert!(m.read(2));
        // Transition victim cannot rise.
        m.write(9, true);
        assert!(!m.read(9));
        // Untouched cells behave normally.
        m.write(5, true);
        assert!(m.read(5));
    }

    #[test]
    fn class_names() {
        assert_eq!(MemFaultKind::StuckAt { value: true }.class_name(), "SAF");
        assert_eq!(MemFaultKind::AddressAlias { target: 1 }.class_name(), "AF");
    }
}
