//! March-test algorithms and the BIST run engine.

use dft_checkpoint::CancelToken;

use crate::SramModel;

/// The memory interface a March engine drives: anything addressable
/// bit-wise. Implemented by [`SramModel`] and by repaired views layered
/// on top of it (spare rows/columns remap addresses before they reach
/// the underlying array).
pub trait MemoryModel {
    /// Memory size in bits.
    fn size(&self) -> usize;
    /// Reads the bit at `addr`.
    fn read(&self, addr: usize) -> bool;
    /// Writes the bit at `addr`.
    fn write(&mut self, addr: usize, value: bool);
}

impl MemoryModel for SramModel {
    fn size(&self) -> usize {
        SramModel::size(self)
    }
    fn read(&self, addr: usize) -> bool {
        SramModel::read(self, addr)
    }
    fn write(&mut self, addr: usize, value: bool) {
        SramModel::write(self, addr, value)
    }
}

/// A single March operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarchOp {
    /// Read, expecting 0.
    R0,
    /// Read, expecting 1.
    R1,
    /// Write 0.
    W0,
    /// Write 1.
    W1,
}

/// Address sweep direction of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarchOrder {
    /// Ascending addresses (⇑).
    Up,
    /// Descending addresses (⇓).
    Down,
    /// Direction irrelevant (⇕) — run ascending.
    Any,
}

/// One March element: an ordered op sequence applied per address in the
/// given sweep order.
#[derive(Debug, Clone)]
pub struct MarchElement {
    /// Sweep direction.
    pub order: MarchOrder,
    /// Operations applied at each address before moving on.
    pub ops: Vec<MarchOp>,
}

/// A complete March algorithm.
#[derive(Debug, Clone)]
pub struct MarchAlgorithm {
    /// Algorithm name as used in the literature (e.g. `"March C-"`).
    pub name: &'static str,
    /// The element sequence.
    pub elements: Vec<MarchElement>,
}

impl MarchAlgorithm {
    /// Total operations per memory bit (the complexity figure, e.g. 10n
    /// for March C-).
    pub fn ops_per_bit(&self) -> usize {
        self.elements.iter().map(|e| e.ops.len()).sum()
    }
}

fn el(order: MarchOrder, ops: &[MarchOp]) -> MarchElement {
    MarchElement {
        order,
        ops: ops.to_vec(),
    }
}

/// MATS+ (5n): `⇕(w0); ⇑(r0,w1); ⇓(r1,w0)`.
pub fn mats_plus() -> MarchAlgorithm {
    use MarchOp::*;
    MarchAlgorithm {
        name: "MATS+",
        elements: vec![
            el(MarchOrder::Any, &[W0]),
            el(MarchOrder::Up, &[R0, W1]),
            el(MarchOrder::Down, &[R1, W0]),
        ],
    }
}

/// March X (6n): `⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)`.
pub fn march_x() -> MarchAlgorithm {
    use MarchOp::*;
    MarchAlgorithm {
        name: "March X",
        elements: vec![
            el(MarchOrder::Any, &[W0]),
            el(MarchOrder::Up, &[R0, W1]),
            el(MarchOrder::Down, &[R1, W0]),
            el(MarchOrder::Any, &[R0]),
        ],
    }
}

/// March C- (10n): `⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)`.
pub fn march_c_minus() -> MarchAlgorithm {
    use MarchOp::*;
    MarchAlgorithm {
        name: "March C-",
        elements: vec![
            el(MarchOrder::Any, &[W0]),
            el(MarchOrder::Up, &[R0, W1]),
            el(MarchOrder::Up, &[R1, W0]),
            el(MarchOrder::Down, &[R0, W1]),
            el(MarchOrder::Down, &[R1, W0]),
            el(MarchOrder::Any, &[R0]),
        ],
    }
}

/// March SS (22n): the simple static March test covering all static
/// single-cell and coupling faults.
/// `⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1);
///  ⇓(r1,r1,w1,r1,w0); ⇕(r0)`.
pub fn march_ss() -> MarchAlgorithm {
    use MarchOp::*;
    MarchAlgorithm {
        name: "March SS",
        elements: vec![
            el(MarchOrder::Any, &[W0]),
            el(MarchOrder::Up, &[R0, R0, W0, R0, W1]),
            el(MarchOrder::Up, &[R1, R1, W1, R1, W0]),
            el(MarchOrder::Down, &[R0, R0, W0, R0, W1]),
            el(MarchOrder::Down, &[R1, R1, W1, R1, W0]),
            el(MarchOrder::Any, &[R0]),
        ],
    }
}

/// March A (15n): `⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r0,w1,w0);
/// ⇓(r1,w0,w1)` — covers linked idempotent coupling faults.
pub fn march_a() -> MarchAlgorithm {
    use MarchOp::*;
    MarchAlgorithm {
        name: "March A",
        elements: vec![
            el(MarchOrder::Any, &[W0]),
            el(MarchOrder::Up, &[R0, W1, W0, W1]),
            el(MarchOrder::Up, &[R1, W0, W1]),
            el(MarchOrder::Down, &[R0, W1, W0]),
            el(MarchOrder::Down, &[R1, W0, W1, W0]),
        ],
    }
}

/// March B (17n): March A's first element extended with read-verify
/// pairs, covering TFs linked with CFs.
pub fn march_b() -> MarchAlgorithm {
    use MarchOp::*;
    MarchAlgorithm {
        name: "March B",
        elements: vec![
            el(MarchOrder::Any, &[W0]),
            el(MarchOrder::Up, &[R0, W1, R1, W0, R0, W1]),
            el(MarchOrder::Up, &[R1, W0, W1]),
            el(MarchOrder::Down, &[R0, W1, W0]),
            el(MarchOrder::Down, &[R1, W0, W1, W0]),
        ],
    }
}

/// The outcome of one March run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarchResult {
    /// Whether any read miscompared.
    pub detected: bool,
    /// First miscompare: `(element index, address, op index)`.
    pub first_fail: Option<(usize, usize, usize)>,
    /// Total memory operations performed.
    pub operations: u64,
    /// `true` when a [`CancelToken`] fired mid-run: the march stopped at
    /// an address boundary, so `detected`/`first_fail` only reflect the
    /// operations actually performed. An interrupted pass must be rerun,
    /// never trusted as a clean result.
    pub interrupted: bool,
}

/// Runs `algo` against `mem`, comparing every read with its expectation.
pub fn run_march<M: MemoryModel>(algo: &MarchAlgorithm, mem: &mut M) -> MarchResult {
    run_march_with_map(algo, mem).0
}

/// [`run_march`] with cooperative cancellation: the token is checked at
/// every address boundary and a fired token drains the march with
/// [`MarchResult::interrupted`] set.
pub fn run_march_cancellable<M: MemoryModel>(
    algo: &MarchAlgorithm,
    mem: &mut M,
    cancel: &CancelToken,
) -> MarchResult {
    march_inner(algo, mem, Some(cancel)).0
}

/// Runs `algo` against `mem` and also returns the per-address failure
/// bitmap: `map[addr]` is `true` when at least one read at `addr`
/// miscompared. This is the MBIST fail log redundancy analysis consumes
/// — addresses are the *logical* addresses the test issued, so decoder
/// (alias) faults mark the address that observed the miscompare.
pub fn run_march_with_map<M: MemoryModel>(
    algo: &MarchAlgorithm,
    mem: &mut M,
) -> (MarchResult, Vec<bool>) {
    march_inner(algo, mem, None)
}

/// [`run_march_with_map`] with cooperative cancellation. An interrupted
/// pass returns a partial failure map that must not be trusted for
/// redundancy analysis — check [`MarchResult::interrupted`] first.
pub fn run_march_with_map_cancellable<M: MemoryModel>(
    algo: &MarchAlgorithm,
    mem: &mut M,
    cancel: &CancelToken,
) -> (MarchResult, Vec<bool>) {
    march_inner(algo, mem, Some(cancel))
}

fn march_inner<M: MemoryModel>(
    algo: &MarchAlgorithm,
    mem: &mut M,
    cancel: Option<&CancelToken>,
) -> (MarchResult, Vec<bool>) {
    let n = mem.size();
    let mut result = MarchResult {
        detected: false,
        first_fail: None,
        operations: 0,
        interrupted: false,
    };
    let mut map = vec![false; n];
    'elements: for (ei, element) in algo.elements.iter().enumerate() {
        let addrs: Vec<usize> = match element.order {
            MarchOrder::Up | MarchOrder::Any => (0..n).collect(),
            MarchOrder::Down => (0..n).rev().collect(),
        };
        for addr in addrs {
            if cancel.is_some_and(|tok| tok.is_cancelled()) {
                result.interrupted = true;
                break 'elements;
            }
            for (oi, op) in element.ops.iter().enumerate() {
                result.operations += 1;
                match op {
                    MarchOp::W0 => mem.write(addr, false),
                    MarchOp::W1 => mem.write(addr, true),
                    MarchOp::R0 | MarchOp::R1 => {
                        let expect = matches!(op, MarchOp::R1);
                        if mem.read(addr) != expect {
                            map[addr] = true;
                            if !result.detected {
                                result.detected = true;
                                result.first_fail = Some((ei, addr, oi));
                            }
                        }
                    }
                }
            }
        }
    }
    (result, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemFault, MemFaultKind};

    fn detect(algo: &MarchAlgorithm, size: usize, fault: MemFault) -> bool {
        let mut mem = SramModel::with_fault(size, fault);
        run_march(algo, &mut mem).detected
    }

    #[test]
    fn fault_free_memory_passes_all_algorithms() {
        for algo in [mats_plus(), march_x(), march_c_minus(), march_ss()] {
            let mut mem = SramModel::new(64);
            let r = run_march(&algo, &mut mem);
            assert!(!r.detected, "{} false alarm", algo.name);
            assert_eq!(r.operations, (algo.ops_per_bit() * 64) as u64);
        }
    }

    #[test]
    fn cancelled_march_drains_and_flags_interrupted() {
        let mut mem = SramModel::new(64);
        let tok = CancelToken::new();
        tok.cancel();
        let r = run_march_cancellable(&march_c_minus(), &mut mem, &tok);
        assert!(r.interrupted);
        assert_eq!(r.operations, 0);
        // An un-fired token changes nothing about a clean run.
        let clean = run_march_cancellable(&march_c_minus(), &mut mem, &CancelToken::new());
        assert!(!clean.interrupted);
        assert_eq!(clean, run_march(&march_c_minus(), &mut mem));
    }

    #[test]
    fn complexity_figures_match_literature() {
        assert_eq!(mats_plus().ops_per_bit(), 5);
        assert_eq!(march_x().ops_per_bit(), 6);
        assert_eq!(march_c_minus().ops_per_bit(), 10);
        assert_eq!(march_a().ops_per_bit(), 15);
        assert_eq!(march_b().ops_per_bit(), 17);
        assert_eq!(march_ss().ops_per_bit(), 22);
    }

    #[test]
    fn march_a_and_b_detect_base_classes() {
        for algo in [march_a(), march_b()] {
            for value in [false, true] {
                assert!(detect(
                    &algo,
                    16,
                    MemFault {
                        cell: 6,
                        kind: MemFaultKind::StuckAt { value },
                    }
                ));
            }
            for rising in [false, true] {
                assert!(detect(
                    &algo,
                    16,
                    MemFault {
                        cell: 6,
                        kind: MemFaultKind::Transition { rising },
                    }
                ));
                assert!(detect(
                    &algo,
                    16,
                    MemFault {
                        cell: 6,
                        kind: MemFaultKind::CouplingInversion {
                            aggressor: 11,
                            rising,
                        },
                    }
                ));
            }
        }
    }

    #[test]
    fn every_algorithm_detects_all_stuck_at() {
        for algo in [mats_plus(), march_x(), march_c_minus(), march_ss()] {
            for cell in [0, 7, 31] {
                for value in [false, true] {
                    assert!(
                        detect(
                            &algo,
                            32,
                            MemFault {
                                cell,
                                kind: MemFaultKind::StuckAt { value },
                            }
                        ),
                        "{} missed SAF({value}) at {cell}",
                        algo.name
                    );
                }
            }
        }
    }

    #[test]
    fn transition_faults_detected_by_marches_with_both_transitions() {
        // March C- and March SS read after both up and down transitions.
        for algo in [march_c_minus(), march_ss(), march_x()] {
            for rising in [false, true] {
                assert!(
                    detect(
                        &algo,
                        16,
                        MemFault {
                            cell: 5,
                            kind: MemFaultKind::Transition { rising },
                        }
                    ),
                    "{} missed TF(rising={rising})",
                    algo.name
                );
            }
        }
    }

    #[test]
    fn address_faults_detected_by_all() {
        for algo in [mats_plus(), march_x(), march_c_minus(), march_ss()] {
            assert!(
                detect(
                    &algo,
                    16,
                    MemFault {
                        cell: 3,
                        kind: MemFaultKind::AddressAlias { target: 9 },
                    }
                ),
                "{} missed AF",
                algo.name
            );
        }
    }

    #[test]
    fn march_c_minus_detects_coupling_inversion_both_directions() {
        for (agg, vic) in [(2usize, 9usize), (9, 2)] {
            for rising in [false, true] {
                assert!(
                    detect(
                        &march_c_minus(),
                        16,
                        MemFault {
                            cell: vic,
                            kind: MemFaultKind::CouplingInversion {
                                aggressor: agg,
                                rising,
                            },
                        }
                    ),
                    "March C- missed CFin agg={agg} vic={vic} rising={rising}"
                );
            }
        }
    }

    #[test]
    fn mats_plus_misses_some_coupling_faults() {
        // The classic limitation: MATS+ does not cover all CFs. Find at
        // least one coupling fault it misses but March C- catches.
        let mut missed_by_mats = 0;
        let mut caught_by_cminus = 0;
        for (agg, vic) in [(1usize, 5usize), (5, 1), (0, 15), (15, 0)] {
            for rising in [false, true] {
                for value in [false, true] {
                    let f = MemFault {
                        cell: vic,
                        kind: MemFaultKind::CouplingIdempotent {
                            aggressor: agg,
                            rising,
                            value,
                        },
                    };
                    let mats = detect(&mats_plus(), 16, f);
                    let cm = detect(&march_c_minus(), 16, f);
                    if !mats {
                        missed_by_mats += 1;
                        if cm {
                            caught_by_cminus += 1;
                        }
                    }
                }
            }
        }
        assert!(missed_by_mats > 0, "MATS+ unexpectedly caught every CFid");
        assert!(
            caught_by_cminus > 0,
            "March C- should catch what MATS+ misses"
        );
    }

    #[test]
    fn first_fail_reports_location() {
        let r = {
            let mut mem = SramModel::with_fault(
                8,
                MemFault {
                    cell: 4,
                    kind: MemFaultKind::StuckAt { value: true },
                },
            );
            run_march(&march_c_minus(), &mut mem)
        };
        assert!(r.detected);
        let (elem, addr, _) = r.first_fail.unwrap();
        assert_eq!(addr, 4);
        assert_eq!(elem, 1); // first reading element
    }
}
