//! Built-in self-test: logic BIST (STUMPS) and memory BIST (March tests).
//!
//! AI chips are dominated by two structures the tutorial's DFT section
//! singles out: huge arrays of identical MAC logic (tested by logic BIST
//! or compressed ATPG) and megabytes of on-chip SRAM (tested by memory
//! BIST). This crate implements both self-test styles from scratch:
//!
//! * **Logic BIST** — a PRPG (LFSR) drives the scan chains, a MISR
//!   compacts responses; random-pattern-resistant logic is helped by
//!   COP-guided control/observe test-point insertion.
//! * **Memory BIST** — a March-test engine over a behavioural SRAM with
//!   injectable fault classes (SAF, TF, CFin, CFid, CFst, AF), the
//!   standard validation vehicle for March algorithm coverage claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lfsr;
mod logic;
mod march;
mod memory;
mod stumps;
mod testpoints;

pub use lfsr::Lfsr;
pub use logic::{BistResult, LogicBist};
pub use march::{
    march_a, march_b, march_c_minus, march_ss, march_x, mats_plus, run_march,
    run_march_cancellable, run_march_with_map, run_march_with_map_cancellable, MarchAlgorithm,
    MarchElement, MarchOp, MarchOrder, MarchResult, MemoryModel,
};
pub use memory::{MemFault, MemFaultKind, SramModel};
pub use stumps::{build_stumps, StumpsBist};
pub use testpoints::{insert_test_points, TestPoint, TestPointKind, TestPointReport};
