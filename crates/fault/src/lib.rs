//! Fault models, fault universes and fault-list management.
//!
//! Implements the single stuck-at and transition-delay fault models the
//! tutorial's DFT section is built on, plus structural fault collapsing
//! (equivalence and dominance) and the bookkeeping types shared by the fault
//! simulator, ATPG, BIST and diagnosis crates.
//!
//! # Example
//!
//! ```
//! use dft_netlist::generators::c17;
//! use dft_fault::{universe_stuck_at, collapse_equivalent};
//!
//! let nl = c17();
//! let faults = universe_stuck_at(&nl);
//! let collapsed = collapse_equivalent(&nl, &faults);
//! assert!(collapsed.representatives().len() < faults.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod collapse;
mod fault;
mod list;
mod universe;

pub use bridge::{bridge_universe, BridgeFault, BridgeKind};
pub use collapse::{collapse_dominance, collapse_equivalent, CollapsedFaults};
pub use fault::{Fault, FaultKind, FaultSite};
pub use list::{FaultList, FaultStatus};
pub use universe::{universe_stuck_at, universe_stuck_at_checkpoints, universe_transition};
