//! Structural fault collapsing (equivalence and dominance).
//!
//! Equivalence rules (two faults are equivalent when every test for one
//! detects the other, in both directions):
//!
//! * A branch fault on a pin whose driver has a single fanout is equivalent
//!   to the driver's output fault.
//! * `AND`: any input SA0 ≡ output SA0. `OR`: input SA1 ≡ output SA1.
//!   `NAND`: input SA0 ≡ output SA1. `NOR`: input SA1 ≡ output SA0.
//! * `NOT`/`BUF`/`DFF`/PO-marker: input SA-v ≡ output SA-v (inverted for
//!   NOT).
//!
//! Dominance rules (fault `f` dominates `g` when every test for `g` also
//!   detects `f`; the dominating fault can be dropped):
//!
//! * `AND`: output SA1 dominates each input SA1. `OR`: output SA0 dominates
//!   input SA0. `NAND`: output SA0 dominates input SA1. `NOR`: output SA1
//!   dominates input SA0.

use std::collections::HashMap;

use dft_netlist::{GateKind, Netlist};

use crate::{Fault, FaultKind, FaultSite};

/// Result of fault collapsing: representative faults plus the mapping from
/// every original fault to its representative.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    reps: Vec<Fault>,
    class_of: HashMap<Fault, Fault>,
}

impl CollapsedFaults {
    /// The collapsed fault list (one representative per equivalence class).
    pub fn representatives(&self) -> &[Fault] {
        &self.reps
    }

    /// Maps a fault from the original universe to its representative.
    /// Returns the fault itself if it was not part of the collapsed
    /// universe.
    pub fn representative(&self, f: Fault) -> Fault {
        self.class_of.get(&f).copied().unwrap_or(f)
    }

    /// Collapse ratio: `representatives / original`, e.g. `0.55` means the
    /// collapsed list is 55% of the original.
    pub fn ratio(&self, original_len: usize) -> f64 {
        if original_len == 0 {
            return 1.0;
        }
        self.reps.len() as f64 / original_len as f64
    }

    /// All faults that collapse onto `rep` (including `rep` itself if
    /// present in the original universe).
    pub fn class_members(&self, rep: Fault) -> Vec<Fault> {
        self.class_of
            .iter()
            .filter(|&(_, r)| *r == rep)
            .map(|(f, _)| *f)
            .collect()
    }
}

/// Union-find over faults.
struct Dsu {
    parent: HashMap<Fault, Fault>,
}

impl Dsu {
    fn new(faults: &[Fault]) -> Dsu {
        Dsu {
            parent: faults.iter().map(|&f| (f, f)).collect(),
        }
    }

    fn find(&mut self, f: Fault) -> Fault {
        let p = match self.parent.get(&f) {
            Some(&p) => p,
            None => return f,
        };
        if p == f {
            return f;
        }
        let root = self.find(p);
        self.parent.insert(f, root);
        root
    }

    fn union(&mut self, a: Fault, b: Fault) {
        if !self.parent.contains_key(&a) || !self.parent.contains_key(&b) {
            return; // only collapse faults present in the universe
        }
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Prefer output-site, lower-id representatives for stable,
            // human-friendly collapsed lists.
            let (keep, drop) =
                if (ra.site.pin.is_none(), ra.site) <= (rb.site.pin.is_none(), rb.site) {
                    (rb, ra)
                } else {
                    (ra, rb)
                };
            self.parent.insert(drop, keep);
        }
    }
}

/// Equivalence-collapses a stuck-at fault universe.
///
/// Only stuck-at faults participate; transition faults are returned
/// unchanged (their standard universe is already stem-only).
pub fn collapse_equivalent(nl: &Netlist, faults: &[Fault]) -> CollapsedFaults {
    let mut dsu = Dsu::new(faults);
    for (id, g) in nl.iter() {
        // Rule 1: single-fanout branch ≡ stem.
        for (pin, &drv) in g.fanins.iter().enumerate() {
            if nl.gate(drv).num_fanouts() == 1 {
                for value in [false, true] {
                    dsu.union(
                        Fault::stuck_at_input(id, pin as u8, value),
                        Fault::stuck_at_output(drv, value),
                    );
                }
            }
        }
        // Rule 2: gate-local equivalences.
        let (in_val, out_val) = match g.kind {
            GateKind::And => (false, false),
            GateKind::Or => (true, true),
            GateKind::Nand => (false, true),
            GateKind::Nor => (true, false),
            GateKind::Buf | GateKind::Dff => {
                for v in [false, true] {
                    dsu.union(
                        Fault::stuck_at_input(id, 0, v),
                        Fault::stuck_at_output(id, v),
                    );
                }
                continue;
            }
            GateKind::Not => {
                for v in [false, true] {
                    dsu.union(
                        Fault::stuck_at_input(id, 0, v),
                        Fault::stuck_at_output(id, !v),
                    );
                }
                continue;
            }
            _ => continue,
        };
        for pin in 0..g.fanins.len() {
            dsu.union(
                Fault::stuck_at_input(id, pin as u8, in_val),
                Fault::stuck_at_output(id, out_val),
            );
        }
    }

    let mut class_of = HashMap::with_capacity(faults.len());
    let mut reps = Vec::new();
    let mut seen: HashMap<Fault, ()> = HashMap::new();
    for &f in faults {
        let r = dsu.find(f);
        class_of.insert(f, r);
        if seen.insert(r, ()).is_none() {
            reps.push(r);
        }
    }
    CollapsedFaults { reps, class_of }
}

/// Applies dominance collapsing on top of an equivalence-collapsed list:
/// removes output faults dominated by (i.e. detected by every test of) an
/// input fault of the same gate, per the rules in the module docs.
///
/// The returned list is suitable for test generation (a test set detecting
/// it detects the full universe) but **not** for coverage reporting —
/// report coverage on the equivalence classes instead.
pub fn collapse_dominance(nl: &Netlist, collapsed: &CollapsedFaults) -> Vec<Fault> {
    let mut drop: HashMap<Fault, ()> = HashMap::new();
    for (id, g) in nl.iter() {
        if g.fanins.is_empty() {
            continue;
        }
        let out_kind = match g.kind {
            GateKind::And => FaultKind::StuckAt1,
            GateKind::Or => FaultKind::StuckAt0,
            GateKind::Nand => FaultKind::StuckAt0,
            GateKind::Nor => FaultKind::StuckAt1,
            _ => continue,
        };
        // The dominating output fault may be dropped only if at least one
        // dominated input fault remains in the collapsed list.
        let out_fault = Fault {
            site: FaultSite::output(id),
            kind: out_kind,
        };
        let rep = collapsed.representative(out_fault);
        let in_val = !g.kind.controlling_value().expect("gate has cv");
        let any_input_kept = (0..g.fanins.len()).any(|pin| {
            let f = Fault::stuck_at_input(id, pin as u8, in_val);
            let r = collapsed.representative(f);
            r != rep && !drop.contains_key(&r)
        });
        if any_input_kept {
            drop.insert(rep, ());
        }
    }
    collapsed
        .representatives()
        .iter()
        .copied()
        .filter(|f| !drop.contains_key(f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe_stuck_at;
    use dft_netlist::generators::{benchmark_suite, c17};
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn c17_collapse_matches_textbook() {
        // The classic result: c17's 46-fault universe equivalence-collapses
        // to 22 faults.
        let nl = c17();
        let faults = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &faults);
        assert_eq!(col.representatives().len(), 22);
    }

    #[test]
    fn single_fanout_branch_collapses_to_stem() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv = nl.add_gate(GateKind::Not, vec![a], "inv");
        nl.add_output(inv, "po");
        let faults = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &faults);
        // a-SA0 ≡ inv.in0-SA0 ≡ inv-SA1; a-SA1 ≡ inv.in0-SA1 ≡ inv-SA0.
        assert_eq!(col.representatives().len(), 2);
        let r1 = col.representative(Fault::stuck_at_output(a, false));
        let r2 = col.representative(Fault::stuck_at_input(inv, 0, false));
        let r3 = col.representative(Fault::stuck_at_output(inv, true));
        assert_eq!(r1, r2);
        assert_eq!(r2, r3);
    }

    #[test]
    fn and_gate_equivalence() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, vec![a, b], "g");
        nl.add_output(g, "po");
        let faults = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &faults);
        // Full universe: a(2) b(2) g out(2) g.in0(2) g.in1(2) = 10.
        // a-SA0 ≡ g.in0-SA0 ≡ g-SA0 ≡ g.in1-SA0 ≡ b-SA0. Classes:
        // {all SA0 on the cone + g SA0} (1), a-SA1≡in0-SA1 (1),
        // b-SA1≡in1-SA1 (1), g-SA1 (1) -> 4.
        assert_eq!(col.representatives().len(), 4);
    }

    #[test]
    fn dominance_drops_and_output_sa1() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, vec![a, b], "g");
        nl.add_output(g, "po");
        let faults = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &faults);
        let dom = collapse_dominance(&nl, &col);
        assert_eq!(dom.len(), 3);
        // The dropped fault must be the class containing g-SA1.
        let g_sa1_rep = col.representative(Fault::stuck_at_output(g, true));
        assert!(!dom.contains(&g_sa1_rep));
    }

    #[test]
    fn every_fault_maps_to_a_representative_in_the_list() {
        let nl = c17();
        let faults = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &faults);
        for &f in &faults {
            let r = col.representative(f);
            assert!(col.representatives().contains(&r), "{f}");
        }
    }

    #[test]
    fn ratio_is_sane_on_the_whole_suite() {
        for c in benchmark_suite() {
            let faults = universe_stuck_at(&c.netlist);
            let col = collapse_equivalent(&c.netlist, &faults);
            let ratio = col.ratio(faults.len());
            assert!(
                ratio > 0.2 && ratio <= 1.0,
                "{}: suspicious collapse ratio {ratio}",
                c.name
            );
        }
    }

    #[test]
    fn class_members_partition_the_universe() {
        let nl = c17();
        let faults = universe_stuck_at(&nl);
        let col = collapse_equivalent(&nl, &faults);
        let total: usize = col
            .representatives()
            .iter()
            .map(|&r| col.class_members(r).len())
            .sum();
        assert_eq!(total, faults.len());
    }
}
