//! Bridging (short) fault model.
//!
//! A bridge electrically ties two nets together. The standard logical
//! abstractions: wired-AND, wired-OR, and the dominant-driver models
//! (`A dominates B`: net B reads A's value, A unaffected). Bridges matter
//! for AI chips because dense, regular MAC arrays are dominated by
//! inter-cell shorts rather than opens.

use dft_netlist::{GateId, GateKind, Netlist};

/// Logical behaviour of a two-net short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeKind {
    /// Both nets read `a AND b`.
    WiredAnd,
    /// Both nets read `a OR b`.
    WiredOr,
    /// Net `b` reads `a`; `a` unaffected.
    ADominates,
    /// Net `a` reads `b`; `b` unaffected.
    BDominates,
}

impl BridgeKind {
    /// All four kinds.
    pub const ALL: [BridgeKind; 4] = [
        BridgeKind::WiredAnd,
        BridgeKind::WiredOr,
        BridgeKind::ADominates,
        BridgeKind::BDominates,
    ];
}

/// A bridging fault between two distinct nets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BridgeFault {
    /// First net.
    pub a: GateId,
    /// Second net.
    pub b: GateId,
    /// Short behaviour.
    pub kind: BridgeKind,
}

impl BridgeFault {
    /// Faulty values `(a', b')` of the bridged nets given good values
    /// (bit-parallel words).
    #[inline]
    pub fn faulty_words(&self, va: u64, vb: u64) -> (u64, u64) {
        match self.kind {
            BridgeKind::WiredAnd => (va & vb, va & vb),
            BridgeKind::WiredOr => (va | vb, va | vb),
            BridgeKind::ADominates => (va, va),
            BridgeKind::BDominates => (vb, vb),
        }
    }
}

impl std::fmt::Display for BridgeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = match self.kind {
            BridgeKind::WiredAnd => "AND",
            BridgeKind::WiredOr => "OR",
            BridgeKind::ADominates => "A>B",
            BridgeKind::BDominates => "B>A",
        };
        write!(f, "bridge({},{}) {k}", self.a, self.b)
    }
}

/// Enumerates a synthetic bridge universe: each logic net paired with its
/// `neighborhood` successors by gate id. Gate-id proximity stands in for
/// layout adjacency, which the netlist does not carry (see DESIGN.md
/// substitutions) — generator ids follow structural placement order, so
/// nearby ids are usually physically related logic.
pub fn bridge_universe(nl: &Netlist, neighborhood: usize) -> Vec<BridgeFault> {
    let nets: Vec<GateId> = nl
        .iter()
        .filter(|(_, g)| g.kind.is_logic() || matches!(g.kind, GateKind::Input | GateKind::Dff))
        .map(|(id, _)| id)
        .collect();
    let mut out = Vec::new();
    for (i, &a) in nets.iter().enumerate() {
        for &b in nets.iter().skip(i + 1).take(neighborhood) {
            // Skip directly connected nets (a feeding b or vice versa):
            // those shorts behave as cell-internal defects.
            if nl.gate(b).fanins.contains(&a) || nl.gate(a).fanins.contains(&b) {
                continue;
            }
            for kind in BridgeKind::ALL {
                out.push(BridgeFault { a, b, kind });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_word_semantics() {
        let b = |kind| BridgeFault {
            a: GateId(0),
            b: GateId(1),
            kind,
        };
        assert_eq!(
            b(BridgeKind::WiredAnd).faulty_words(0b1100, 0b1010),
            (0b1000, 0b1000)
        );
        assert_eq!(
            b(BridgeKind::WiredOr).faulty_words(0b1100, 0b1010),
            (0b1110, 0b1110)
        );
        assert_eq!(
            b(BridgeKind::ADominates).faulty_words(0b1100, 0b1010),
            (0b1100, 0b1100)
        );
        assert_eq!(
            b(BridgeKind::BDominates).faulty_words(0b1100, 0b1010),
            (0b1010, 0b1010)
        );
    }

    #[test]
    fn universe_skips_connected_pairs() {
        use dft_netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, vec![a, b], "g");
        nl.add_output(g, "po");
        let u = bridge_universe(&nl, 4);
        assert!(u.iter().all(|f| !(f.a == a && f.b == g)));
        // a-b bridge exists (not connected).
        assert!(u.iter().any(|f| f.a == a && f.b == b));
    }

    #[test]
    fn universe_size_scales_with_neighborhood() {
        use dft_netlist::generators::c17;
        let nl = c17();
        let u1 = bridge_universe(&nl, 1);
        let u3 = bridge_universe(&nl, 3);
        assert!(u3.len() > u1.len());
        assert_eq!(u1.len() % 4, 0); // four kinds per pair
    }
}
