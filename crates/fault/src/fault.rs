//! The [`Fault`] type: a fault model instance at a pin-level site.

use std::fmt;

use dft_netlist::{GateId, Netlist};

/// A pin-level fault location.
///
/// `pin == None` places the fault on the gate's output net (the stem);
/// `pin == Some(i)` places it on the branch feeding input pin `i` of the
/// gate, affecting only what that pin sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultSite {
    /// The gate the fault is attached to.
    pub gate: GateId,
    /// Input pin index, or `None` for the gate output.
    pub pin: Option<u8>,
}

impl FaultSite {
    /// A fault on the output net of `gate`.
    pub fn output(gate: GateId) -> FaultSite {
        FaultSite { gate, pin: None }
    }

    /// A fault on input pin `pin` of `gate`.
    pub fn input(gate: GateId, pin: u8) -> FaultSite {
        FaultSite {
            gate,
            pin: Some(pin),
        }
    }

    /// The net this site reads or drives: the gate itself for an output
    /// site, the driver of the pin for an input site.
    pub fn net(&self, nl: &Netlist) -> GateId {
        match self.pin {
            None => self.gate,
            Some(p) => nl.gate(self.gate).fanins[p as usize],
        }
    }
}

/// The modeled defect behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Net permanently at logic 0.
    StuckAt0,
    /// Net permanently at logic 1.
    StuckAt1,
    /// Transition fault: the net's rising transition is too slow. Detected
    /// by a launch 0 followed by a captured 1 (behaves as stuck-at-0 on the
    /// capture cycle).
    SlowToRise,
    /// Transition fault: falling transition too slow (stuck-at-1 on
    /// capture).
    SlowToFall,
}

impl FaultKind {
    /// The stuck value forced at the site during the detecting (capture)
    /// cycle.
    #[inline]
    pub fn stuck_value(self) -> bool {
        matches!(self, FaultKind::StuckAt1 | FaultKind::SlowToFall)
    }

    /// `true` for the two-pattern transition-delay kinds.
    #[inline]
    pub fn is_transition(self) -> bool {
        matches!(self, FaultKind::SlowToRise | FaultKind::SlowToFall)
    }

    /// The value the site must hold on the launch cycle for a transition
    /// fault to be excited (the pre-transition value), or `None` for
    /// stuck-at kinds.
    #[inline]
    pub fn launch_value(self) -> Option<bool> {
        match self {
            FaultKind::SlowToRise => Some(false),
            FaultKind::SlowToFall => Some(true),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::StuckAt0 => "SA0",
            FaultKind::StuckAt1 => "SA1",
            FaultKind::SlowToRise => "STR",
            FaultKind::SlowToFall => "STF",
        };
        f.write_str(s)
    }
}

/// A single fault: a model instance at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// What the defect does.
    pub kind: FaultKind,
}

impl Fault {
    /// Stuck-at fault on the output of `gate`.
    pub fn stuck_at_output(gate: GateId, value: bool) -> Fault {
        Fault {
            site: FaultSite::output(gate),
            kind: if value {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
        }
    }

    /// Stuck-at fault on input pin `pin` of `gate`.
    pub fn stuck_at_input(gate: GateId, pin: u8, value: bool) -> Fault {
        Fault {
            site: FaultSite::input(gate, pin),
            kind: if value {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
        }
    }

    /// Renders the fault with human-readable net names, e.g.
    /// `"G16.in0 SA1"` or `"G22 SA0"`.
    pub fn describe(&self, nl: &Netlist) -> String {
        let gname = &nl.gate(self.site.gate).name;
        match self.site.pin {
            None => format!("{gname} {}", self.kind),
            Some(p) => format!("{gname}.in{p} {}", self.kind),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site.pin {
            None => write!(f, "{} {}", self.site.gate, self.kind),
            Some(p) => write!(f, "{}.in{} {}", self.site.gate, p, self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn site_net_resolution() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, vec![a, b], "g");
        assert_eq!(FaultSite::output(g).net(&nl), g);
        assert_eq!(FaultSite::input(g, 0).net(&nl), a);
        assert_eq!(FaultSite::input(g, 1).net(&nl), b);
    }

    #[test]
    fn kind_properties() {
        assert!(!FaultKind::StuckAt0.stuck_value());
        assert!(FaultKind::StuckAt1.stuck_value());
        assert!(!FaultKind::SlowToRise.stuck_value());
        assert!(FaultKind::SlowToFall.stuck_value());
        assert_eq!(FaultKind::SlowToRise.launch_value(), Some(false));
        assert_eq!(FaultKind::StuckAt0.launch_value(), None);
        assert!(FaultKind::SlowToFall.is_transition());
        assert!(!FaultKind::StuckAt1.is_transition());
    }

    #[test]
    fn display_and_describe() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, vec![a], "inv");
        let f = Fault::stuck_at_input(g, 0, true);
        assert_eq!(f.describe(&nl), "inv.in0 SA1");
        let f = Fault::stuck_at_output(a, false);
        assert_eq!(f.describe(&nl), "a SA0");
        assert!(f.to_string().contains("SA0"));
    }

    #[test]
    fn fault_ordering_is_total_and_stable() {
        let f1 = Fault::stuck_at_output(GateId(1), false);
        let f2 = Fault::stuck_at_output(GateId(1), true);
        let f3 = Fault::stuck_at_input(GateId(1), 0, false);
        let mut v = [f3, f2, f1];
        v.sort();
        assert_eq!(v[0], f1);
    }
}
