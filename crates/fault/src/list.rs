//! Fault-list bookkeeping shared by fault simulation, ATPG and BIST.

use std::collections::HashMap;

use crate::Fault;

/// Lifecycle status of a fault during test generation / simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultStatus {
    /// Not yet detected by any pattern.
    #[default]
    Undetected,
    /// Detected; the payload is the index of the first detecting pattern.
    Detected(u32),
    /// Proven untestable (redundant) by exhaustive ATPG search.
    Untestable,
    /// ATPG gave up within its backtrack limit; testability unknown.
    Aborted,
}

impl FaultStatus {
    /// `true` for `Detected`.
    #[inline]
    pub fn is_detected(self) -> bool {
        matches!(self, FaultStatus::Detected(_))
    }
}

/// A fault list with per-fault status and coverage accounting.
///
/// Coverage definitions follow industry convention:
/// * **fault coverage** = detected / total
/// * **test coverage** = detected / (total - untestable)
#[derive(Debug, Clone)]
pub struct FaultList {
    faults: Vec<Fault>,
    status: Vec<FaultStatus>,
    index: HashMap<Fault, usize>,
}

impl FaultList {
    /// Builds a list with every fault `Undetected`.
    pub fn new(faults: Vec<Fault>) -> FaultList {
        let index = faults.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let status = vec![FaultStatus::Undetected; faults.len()];
        FaultList {
            faults,
            status,
            index,
        }
    }

    /// Number of faults.
    #[inline]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults, in list order.
    #[inline]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Status of the fault at `idx`.
    #[inline]
    pub fn status(&self, idx: usize) -> FaultStatus {
        self.status[idx]
    }

    /// Status of `f`, or `None` if `f` is not in the list.
    pub fn status_of(&self, f: Fault) -> Option<FaultStatus> {
        self.index.get(&f).map(|&i| self.status[i])
    }

    /// Index of `f` in the list.
    pub fn index_of(&self, f: Fault) -> Option<usize> {
        self.index.get(&f).copied()
    }

    /// Sets the status of the fault at `idx`. Detected faults are never
    /// downgraded (first detection wins).
    pub fn set_status(&mut self, idx: usize, status: FaultStatus) {
        if self.status[idx].is_detected() {
            return;
        }
        self.status[idx] = status;
    }

    /// Marks the fault at `idx` detected by `pattern` unless already
    /// detected.
    pub fn mark_detected(&mut self, idx: usize, pattern: u32) {
        if !self.status[idx].is_detected() {
            self.status[idx] = FaultStatus::Detected(pattern);
        }
    }

    /// Iterates over indices of still-undetected (and non-untestable,
    /// non-aborted) faults.
    pub fn undetected(&self) -> impl Iterator<Item = usize> + '_ {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, FaultStatus::Undetected))
            .map(|(i, _)| i)
    }

    /// Count of detected faults.
    pub fn num_detected(&self) -> usize {
        self.status.iter().filter(|s| s.is_detected()).count()
    }

    /// Count of untestable faults.
    pub fn num_untestable(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Untestable))
            .count()
    }

    /// Count of aborted faults.
    pub fn num_aborted(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Aborted))
            .count()
    }

    /// Fault coverage: detected / total (0.0 for an empty list).
    pub fn fault_coverage(&self) -> f64 {
        if self.faults.is_empty() {
            return 0.0;
        }
        self.num_detected() as f64 / self.faults.len() as f64
    }

    /// Test coverage: detected / (total - untestable).
    pub fn test_coverage(&self) -> f64 {
        let denom = self.faults.len() - self.num_untestable();
        if denom == 0 {
            return 0.0;
        }
        self.num_detected() as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::GateId;

    fn mk(n: u32) -> FaultList {
        FaultList::new(
            (0..n)
                .flat_map(|i| {
                    [
                        Fault::stuck_at_output(GateId(i), false),
                        Fault::stuck_at_output(GateId(i), true),
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn coverage_accounting() {
        let mut fl = mk(5); // 10 faults
        assert_eq!(fl.fault_coverage(), 0.0);
        fl.mark_detected(0, 7);
        fl.mark_detected(1, 9);
        fl.set_status(2, FaultStatus::Untestable);
        assert_eq!(fl.num_detected(), 2);
        assert!((fl.fault_coverage() - 0.2).abs() < 1e-12);
        assert!((fl.test_coverage() - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn first_detection_wins() {
        let mut fl = mk(1);
        fl.mark_detected(0, 3);
        fl.mark_detected(0, 9);
        assert_eq!(fl.status(0), FaultStatus::Detected(3));
        // set_status cannot downgrade a detection.
        fl.set_status(0, FaultStatus::Aborted);
        assert_eq!(fl.status(0), FaultStatus::Detected(3));
    }

    #[test]
    fn undetected_iterator_skips_resolved() {
        let mut fl = mk(3); // 6 faults
        fl.mark_detected(0, 0);
        fl.set_status(1, FaultStatus::Untestable);
        fl.set_status(2, FaultStatus::Aborted);
        let und: Vec<usize> = fl.undetected().collect();
        assert_eq!(und, vec![3, 4, 5]);
    }

    #[test]
    fn lookup_by_fault() {
        let fl = mk(2);
        let f = Fault::stuck_at_output(GateId(1), true);
        assert_eq!(fl.index_of(f), Some(3));
        assert_eq!(fl.status_of(f), Some(FaultStatus::Undetected));
        assert_eq!(fl.status_of(Fault::stuck_at_output(GateId(9), true)), None);
    }
}
