//! Fault-universe enumeration.

use dft_netlist::{GateKind, Netlist};

use crate::{Fault, FaultKind, FaultSite};

/// Enumerates the full single stuck-at universe: SA0 and SA1 on every gate
/// output net (except primary-output markers, whose net is the driver's)
/// and on every input pin of every logic gate and flip-flop.
///
/// Input-pin faults are only distinct from the driver's output fault when
/// the driver fans out to more than one reader; they are enumerated
/// unconditionally here so that collapsing statistics (experiment E2) match
/// the textbook definition, and [`collapse_equivalent`] removes the
/// redundancy.
///
/// [`collapse_equivalent`]: crate::collapse_equivalent
pub fn universe_stuck_at(nl: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, g) in nl.iter() {
        match g.kind {
            GateKind::Output => continue,
            GateKind::Const0 | GateKind::Const1 => continue,
            _ => {}
        }
        faults.push(Fault::stuck_at_output(id, false));
        faults.push(Fault::stuck_at_output(id, true));
        if !matches!(g.kind, GateKind::Input) {
            for pin in 0..g.fanins.len() {
                // Pins fed by constants are untestable by construction;
                // exclude them from the universe like commercial tools do.
                let driver = nl.gate(g.fanins[pin]);
                if matches!(driver.kind, GateKind::Const0 | GateKind::Const1) {
                    continue;
                }
                faults.push(Fault::stuck_at_input(id, pin as u8, false));
                faults.push(Fault::stuck_at_input(id, pin as u8, true));
            }
        }
    }
    faults
}

/// Enumerates the checkpoint stuck-at universe: faults on primary inputs
/// and on fanout branches only. By the checkpoint theorem, a test set
/// detecting all checkpoint faults detects all stuck-at faults in a
/// fanout-free-region decomposition of the circuit.
pub fn universe_stuck_at_checkpoints(nl: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, g) in nl.iter() {
        if matches!(g.kind, GateKind::Input | GateKind::Dff) {
            faults.push(Fault::stuck_at_output(id, false));
            faults.push(Fault::stuck_at_output(id, true));
        }
        if matches!(
            g.kind,
            GateKind::Output | GateKind::Const0 | GateKind::Const1
        ) {
            continue;
        }
        for pin in 0..g.fanins.len() {
            let driver = nl.gate(g.fanins[pin]);
            if matches!(driver.kind, GateKind::Const0 | GateKind::Const1) {
                continue;
            }
            if driver.num_fanouts() > 1 {
                faults.push(Fault::stuck_at_input(id, pin as u8, false));
                faults.push(Fault::stuck_at_input(id, pin as u8, true));
            }
        }
    }
    faults
}

/// Enumerates the transition-delay universe: slow-to-rise and slow-to-fall
/// on every gate output net (the standard "launch/capture on stems" model).
pub fn universe_transition(nl: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, g) in nl.iter() {
        match g.kind {
            GateKind::Output | GateKind::Const0 | GateKind::Const1 => continue,
            _ => {}
        }
        faults.push(Fault {
            site: FaultSite::output(id),
            kind: FaultKind::SlowToRise,
        });
        faults.push(Fault {
            site: FaultSite::output(id),
            kind: FaultKind::SlowToFall,
        });
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_netlist::generators::c17;
    use dft_netlist::{GateKind, Netlist};

    #[test]
    fn c17_full_universe_size() {
        let nl = c17();
        let faults = universe_stuck_at(&nl);
        // c17: 5 PI + 6 NAND with 2 pins each.
        // Outputs: 11 nets x 2 = 22; input pins: 12 x 2 = 24. Total 46.
        assert_eq!(faults.len(), 46);
    }

    #[test]
    fn checkpoint_universe_is_smaller() {
        let nl = c17();
        let full = universe_stuck_at(&nl);
        let cp = universe_stuck_at_checkpoints(&nl);
        assert!(cp.len() < full.len());
        // c17 checkpoints: 5 PIs + branches of stems G1? G3(2), G11(2),
        // G16(2), G10? ... compute: stems are nets with >1 fanout.
        let stems = nl.iter().filter(|(_, g)| g.num_fanouts() > 1).count();
        assert!(cp.len() >= 2 * (nl.num_inputs() + stems));
    }

    #[test]
    fn constants_and_po_markers_excluded() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let c0 = nl.add_gate(GateKind::Const0, vec![], "c0");
        let g = nl.add_gate(GateKind::Or, vec![a, c0], "g");
        nl.add_output(g, "po");
        let faults = universe_stuck_at(&nl);
        // a out (2), g out (2), g.in0 (2). No c0 faults, no g.in1 faults,
        // no PO marker faults.
        assert_eq!(faults.len(), 6);
    }

    #[test]
    fn transition_universe_covers_stems() {
        let nl = c17();
        let tf = universe_transition(&nl);
        assert_eq!(tf.len(), 22); // 11 nets x 2 kinds
        assert!(tf.iter().all(|f| f.kind.is_transition()));
    }

    #[test]
    fn dff_pins_are_fault_sites() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_dff(a, "q");
        nl.add_output(q, "po");
        let faults = universe_stuck_at(&nl);
        // a out, q out, q.in(D pin) -> 6 faults.
        assert_eq!(faults.len(), 6);
    }
}
