//! Ring generator (LFSR with channel injection) and phase shifter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Fibonacci-style LFSR with external channel injection: every shift
/// cycle, the state advances and each input channel XORs its bit into a
/// fixed state position. All operations are GF(2)-linear in the injected
/// bits (the state starts at zero before each pattern), which is what the
/// EDT encoder exploits.
#[derive(Debug, Clone)]
pub struct RingGenerator {
    length: usize,
    /// Feedback tap positions (bit fed into position 0 is the XOR of the
    /// state bits at these positions).
    taps: Vec<usize>,
    /// Injection position of each input channel.
    injectors: Vec<usize>,
}

impl RingGenerator {
    /// Creates a ring generator of `length` bits with `channels` injectors.
    /// The feedback polynomial and injector placement are derived
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `length < 4` or `channels == 0` or `channels > length`.
    pub fn new(length: usize, channels: usize, seed: u64) -> RingGenerator {
        assert!(length >= 4, "ring too short");
        assert!(channels >= 1 && channels <= length, "bad channel count");
        let mut rng = StdRng::seed_from_u64(seed);
        // Always tap the last bit (guarantees full shift), plus 1-3 others.
        let mut taps = vec![length - 1];
        for _ in 0..rng.gen_range(1..=3) {
            let t = rng.gen_range(0..length - 1);
            if !taps.contains(&t) {
                taps.push(t);
            }
        }
        // Spread injectors across the ring.
        let injectors = (0..channels)
            .map(|c| (c * length / channels + rng.gen_range(0..length / channels.max(1))) % length)
            .collect();
        RingGenerator {
            length,
            taps,
            injectors,
        }
    }

    /// State width in bits.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Number of input channels.
    pub fn channels(&self) -> usize {
        self.injectors.len()
    }

    /// Advances `state` one cycle, injecting `inputs` (one bit per
    /// channel). `state[0]` receives the feedback.
    pub fn step(&self, state: &mut [bool], inputs: &[bool]) {
        debug_assert_eq!(state.len(), self.length);
        debug_assert_eq!(inputs.len(), self.injectors.len());
        let fb = self.taps.iter().fold(false, |acc, &t| acc ^ state[t]);
        state.rotate_right(1);
        state[0] = fb;
        for (c, &pos) in self.injectors.iter().enumerate() {
            state[pos] ^= inputs[c];
        }
    }

    /// Symbolic step: each state bit is a GF(2) linear combination of the
    /// injected variables, represented as a bit-packed vector of
    /// `var_words` words. `var_of(cycle, channel)` is provided by the
    /// caller via pre-assigned indices.
    pub fn step_symbolic(&self, state: &mut [Vec<u64>], injected_vars: &[usize], var_words: usize) {
        debug_assert_eq!(state.len(), self.length);
        let mut fb = vec![0u64; var_words];
        for &t in &self.taps {
            for w in 0..var_words {
                fb[w] ^= state[t][w];
            }
        }
        state.rotate_right(1);
        state[0] = fb;
        for (c, &pos) in self.injectors.iter().enumerate() {
            let v = injected_vars[c];
            state[pos][v / 64] ^= 1 << (v % 64);
        }
    }
}

/// A phase shifter: each output (scan-chain input) is the XOR of a small
/// set of ring-generator state bits, decorrelating adjacent chains.
#[derive(Debug, Clone)]
pub struct PhaseShifter {
    /// Tap positions per output.
    taps: Vec<Vec<usize>>,
}

impl PhaseShifter {
    /// Creates a phase shifter from `ring_length` bits to `outputs`
    /// chains, three taps per output, seeded deterministically.
    pub fn new(ring_length: usize, outputs: usize, seed: u64) -> PhaseShifter {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
        let taps = (0..outputs)
            .map(|_| {
                let mut t: Vec<usize> = Vec::with_capacity(3);
                while t.len() < 3.min(ring_length) {
                    let x = rng.gen_range(0..ring_length);
                    if !t.contains(&x) {
                        t.push(x);
                    }
                }
                t
            })
            .collect();
        PhaseShifter { taps }
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.taps.len()
    }

    /// Concrete output bits for a concrete ring state.
    pub fn output(&self, state: &[bool]) -> Vec<bool> {
        self.taps
            .iter()
            .map(|t| t.iter().fold(false, |acc, &p| acc ^ state[p]))
            .collect()
    }

    /// Symbolic output: linear combinations over the injected variables.
    pub fn output_symbolic(&self, state: &[Vec<u64>], var_words: usize) -> Vec<Vec<u64>> {
        self.taps
            .iter()
            .map(|t| {
                let mut v = vec![0u64; var_words];
                for &p in t {
                    for w in 0..var_words {
                        v[w] ^= state[p][w];
                    }
                }
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_per_seed() {
        let r1 = RingGenerator::new(32, 2, 7);
        let r2 = RingGenerator::new(32, 2, 7);
        let mut s1 = vec![false; 32];
        let mut s2 = vec![false; 32];
        for i in 0..100 {
            let ins = [i % 3 == 0, i % 5 == 0];
            r1.step(&mut s1, &ins);
            r2.step(&mut s2, &ins);
        }
        assert_eq!(s1, s2);
    }

    #[test]
    fn injection_perturbs_state() {
        let r = RingGenerator::new(16, 1, 3);
        let mut a = vec![false; 16];
        let mut b = vec![false; 16];
        r.step(&mut a, &[false]);
        r.step(&mut b, &[true]);
        assert_ne!(a, b);
    }

    #[test]
    fn symbolic_model_matches_concrete() {
        // The heart of EDT: the symbolic linear model must exactly predict
        // the concrete hardware for arbitrary injected bits.
        let ring = RingGenerator::new(24, 3, 11);
        let ps = PhaseShifter::new(24, 10, 11);
        let cycles = 20usize;
        let vars = 3 * cycles;
        let var_words = vars.div_ceil(64);

        // Symbolic pass.
        let mut sym_state = vec![vec![0u64; var_words]; 24];
        let mut sym_outputs: Vec<Vec<Vec<u64>>> = Vec::new();
        for k in 0..cycles {
            let injected: Vec<usize> = (0..3).map(|c| k * 3 + c).collect();
            ring.step_symbolic(&mut sym_state, &injected, var_words);
            sym_outputs.push(ps.output_symbolic(&sym_state, var_words));
        }

        // Concrete passes with random inputs.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let inputs: Vec<bool> = (0..vars).map(|_| rng.gen_bool(0.5)).collect();
            let mut state = vec![false; 24];
            for k in 0..cycles {
                let ins: Vec<bool> = (0..3).map(|c| inputs[k * 3 + c]).collect();
                ring.step(&mut state, &ins);
                let out = ps.output(&state);
                let predicted: Vec<bool> = sym_outputs[k]
                    .iter()
                    .map(|c| crate::gf2::dot(c, &inputs))
                    .collect();
                assert_eq!(out, predicted, "cycle {k}");
            }
        }
    }

    #[test]
    fn phase_shifter_outputs_differ() {
        let ps = PhaseShifter::new(32, 16, 1);
        // Distinct tap sets for at least most outputs (decorrelation).
        let mut sets: Vec<Vec<usize>> = ps.taps.to_vec();
        for s in &mut sets {
            s.sort_unstable();
        }
        sets.sort();
        sets.dedup();
        assert!(sets.len() >= 12);
    }
}
