//! Illinois (broadcast) scan: the classic low-cost compression baseline.
//!
//! In broadcast mode one tester channel feeds every chain the *same*
//! data; a cube is applicable iff its care bits agree across chains at
//! every shift position. Incompatible cubes fall back to serial mode
//! (all chains concatenated behind the single pin). EDT's ring generator
//! removes exactly this compatibility restriction — comparing the two is
//! the point of the E4 extension table.

use dft_logicsim::TestCube;

/// An Illinois-scan configuration: `chains` chains of `chain_len` cells
/// behind a single scan-in pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllinoisScan {
    /// Number of chains fed in parallel in broadcast mode.
    pub chains: usize,
    /// Cells per chain.
    pub chain_len: usize,
}

/// Per-cube application cost under Illinois scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IllinoisMode {
    /// All chains loaded with one `chain_len` stream.
    Broadcast,
    /// Chains loaded serially: `chains * chain_len` cycles.
    Serial,
}

impl IllinoisScan {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(chains: usize, chain_len: usize) -> IllinoisScan {
        assert!(chains > 0 && chain_len > 0);
        IllinoisScan { chains, chain_len }
    }

    /// Flat cells per pattern.
    pub fn flat_bits(&self) -> usize {
        self.chains * self.chain_len
    }

    /// Tries to broadcast-encode a cube (flat cell indexing: chain `c`,
    /// position `p` = index `c * chain_len + p`). Returns the shared load
    /// (position-indexed) or `None` on a care-bit conflict.
    pub fn encode_broadcast(&self, cube: &TestCube) -> Option<Vec<bool>> {
        assert_eq!(cube.width(), self.flat_bits(), "cube width");
        let mut shared: Vec<Option<bool>> = vec![None; self.chain_len];
        for c in 0..self.chains {
            for (p, slot) in shared.iter_mut().enumerate() {
                if let Some(v) = cube.get(c * self.chain_len + p) {
                    match *slot {
                        None => *slot = Some(v),
                        Some(existing) if existing == v => {}
                        Some(_) => return None,
                    }
                }
            }
        }
        Some(shared.into_iter().map(|b| b.unwrap_or(false)).collect())
    }

    /// Chooses the mode for a cube and returns `(mode, load cycles)`.
    pub fn apply(&self, cube: &TestCube) -> (IllinoisMode, usize) {
        match self.encode_broadcast(cube) {
            Some(_) => (IllinoisMode::Broadcast, self.chain_len),
            None => (IllinoisMode::Serial, self.flat_bits()),
        }
    }

    /// Aggregate stimulus cycles for a cube set, plus the broadcast rate.
    pub fn total_cycles(&self, cubes: &[TestCube]) -> (u64, f64) {
        let mut cycles = 0u64;
        let mut broadcast = 0usize;
        for cube in cubes {
            let (mode, c) = self.apply(cube);
            cycles += c as u64;
            if mode == IllinoisMode::Broadcast {
                broadcast += 1;
            }
        }
        let rate = if cubes.is_empty() {
            1.0
        } else {
            broadcast as f64 / cubes.len() as f64
        };
        (cycles, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatible_cube_broadcasts() {
        let il = IllinoisScan::new(4, 8);
        let mut cube = TestCube::all_x(32);
        cube.set(3, true); // chain 0 pos 3
        cube.set(8 + 3, true); // chain 1 pos 3 agrees
        cube.set(2 * 8 + 5, false);
        let load = il.encode_broadcast(&cube).expect("compatible");
        assert!(load[3]);
        assert!(!load[5]);
        assert_eq!(il.apply(&cube), (IllinoisMode::Broadcast, 8));
    }

    #[test]
    fn conflicting_cube_falls_back_to_serial() {
        let il = IllinoisScan::new(2, 4);
        let mut cube = TestCube::all_x(8);
        cube.set(1, true); // chain 0 pos 1
        cube.set(4 + 1, false); // chain 1 pos 1 conflicts
        assert!(il.encode_broadcast(&cube).is_none());
        assert_eq!(il.apply(&cube), (IllinoisMode::Serial, 8));
    }

    #[test]
    fn aggregate_accounting() {
        let il = IllinoisScan::new(2, 4);
        let mut ok = TestCube::all_x(8);
        ok.set(0, true);
        let mut bad = TestCube::all_x(8);
        bad.set(1, true);
        bad.set(5, false);
        let (cycles, rate) = il.total_cycles(&[ok, bad]);
        assert_eq!(cycles, 4 + 8);
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_cubes_usually_broadcast_dense_ones_do_not() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let il = IllinoisScan::new(8, 16);
        let mut rng = StdRng::seed_from_u64(4);
        let gen = |care: usize, rng: &mut StdRng| {
            let mut c = TestCube::all_x(il.flat_bits());
            for _ in 0..care {
                let i = rng.gen_range(0..il.flat_bits());
                c.set(i, rng.gen_bool(0.5));
            }
            c
        };
        let sparse: Vec<TestCube> = (0..40).map(|_| gen(3, &mut rng)).collect();
        let dense: Vec<TestCube> = (0..40).map(|_| gen(60, &mut rng)).collect();
        let (_, sparse_rate) = il.total_cycles(&sparse);
        let (_, dense_rate) = il.total_cycles(&dense);
        assert!(sparse_rate > dense_rate);
    }
}
