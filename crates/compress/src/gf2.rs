//! Dense GF(2) linear-system solver (Gaussian elimination with partial
//! pivoting over bit-packed rows).

/// A linear system `A x = b` over GF(2), built row by row.
///
/// Rows are bit-packed into `u64` words; the solver performs in-place
/// forward elimination and back-substitution. Free variables are set to 0.
#[derive(Debug, Clone)]
pub struct Gf2System {
    vars: usize,
    words: usize,
    /// Each row: coefficient words followed by the RHS bit stored
    /// separately.
    rows: Vec<(Vec<u64>, bool)>,
}

impl Gf2System {
    /// Creates an empty system over `vars` variables.
    pub fn new(vars: usize) -> Gf2System {
        Gf2System {
            vars,
            words: vars.div_ceil(64),
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars
    }

    /// Number of equations added.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds the equation `sum(coeffs) = rhs`, where `coeffs` is the
    /// bit-packed coefficient vector (`num_vars().div_ceil(64)` words).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` has the wrong length.
    pub fn add_equation(&mut self, coeffs: Vec<u64>, rhs: bool) {
        assert_eq!(coeffs.len(), self.words, "coefficient width");
        self.rows.push((coeffs, rhs));
    }

    /// Convenience: adds an equation from variable indices.
    pub fn add_equation_vars(&mut self, vars: &[usize], rhs: bool) {
        let mut coeffs = vec![0u64; self.words];
        for &v in vars {
            assert!(v < self.vars);
            coeffs[v / 64] ^= 1 << (v % 64);
        }
        self.rows.push((coeffs, rhs));
    }

    /// Solves the system. Returns `None` when inconsistent; otherwise one
    /// solution (free variables 0).
    pub fn solve(self) -> Option<Vec<bool>> {
        self.solve_counted().0
    }

    /// Like [`Gf2System::solve`], also returning the number of row-XOR
    /// elimination operations performed (the solver's work measure).
    pub fn solve_counted(mut self) -> (Option<Vec<bool>>, u64) {
        let mut eliminations = 0u64;
        let mut pivot_of_col: Vec<Option<usize>> = vec![None; self.vars];
        let mut rank = 0usize;
        let nrows = self.rows.len();
        for (col, pivot_slot) in pivot_of_col.iter_mut().enumerate() {
            let (w, b) = (col / 64, col % 64);
            // Find a pivot row at or below `rank`.
            let mut pivot = None;
            for r in rank..nrows {
                if (self.rows[r].0[w] >> b) & 1 == 1 {
                    pivot = Some(r);
                    break;
                }
            }
            let Some(p) = pivot else { continue };
            self.rows.swap(rank, p);
            // Eliminate this column from every other row.
            let (pivot_coeffs, pivot_rhs) = self.rows[rank].clone();
            for (r, row) in self.rows.iter_mut().enumerate() {
                if r != rank && (row.0[w] >> b) & 1 == 1 {
                    for (dst, &pc) in row.0.iter_mut().zip(&pivot_coeffs) {
                        *dst ^= pc;
                    }
                    row.1 ^= pivot_rhs;
                    eliminations += 1;
                }
            }
            *pivot_slot = Some(rank);
            rank += 1;
            if rank == nrows {
                break;
            }
        }
        // Inconsistency: a zero row with RHS 1.
        for (coeffs, rhs) in &self.rows[rank..] {
            if *rhs && coeffs.iter().all(|&w| w == 0) {
                return (None, eliminations);
            }
        }
        // Read off the solution (rows are fully reduced).
        let mut x = vec![false; self.vars];
        for (col, p) in pivot_of_col.iter().enumerate() {
            if let Some(r) = p {
                x[col] = self.rows[*r].1;
            }
        }
        (Some(x), eliminations)
    }
}

/// Evaluates a bit-packed coefficient vector against an assignment
/// (dot product over GF(2)).
#[allow(dead_code)] // exercised by unit and property tests
pub(crate) fn dot(coeffs: &[u64], x: &[bool]) -> bool {
    let mut acc = false;
    for (i, &xi) in x.iter().enumerate() {
        if xi && (coeffs[i / 64] >> (i % 64)) & 1 == 1 {
            acc = !acc;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // x0 ^ x1 = 1; x1 = 1  => x0 = 0, x1 = 1.
        let mut sys = Gf2System::new(2);
        sys.add_equation_vars(&[0, 1], true);
        sys.add_equation_vars(&[1], true);
        let x = sys.solve().unwrap();
        assert_eq!(x, vec![false, true]);
    }

    #[test]
    fn detects_inconsistency() {
        // x0 = 0; x0 = 1.
        let mut sys = Gf2System::new(1);
        sys.add_equation_vars(&[0], false);
        sys.add_equation_vars(&[0], true);
        assert!(sys.solve().is_none());
    }

    #[test]
    fn underdetermined_free_vars_zero() {
        let mut sys = Gf2System::new(4);
        sys.add_equation_vars(&[0, 2], true);
        let x = sys.solve().unwrap();
        assert!(x[0] ^ x[2]);
        assert!(!x[1] && !x[3]);
    }

    #[test]
    fn redundant_consistent_rows_ok() {
        let mut sys = Gf2System::new(3);
        sys.add_equation_vars(&[0, 1], true);
        sys.add_equation_vars(&[1, 2], false);
        sys.add_equation_vars(&[0, 2], true); // sum of the first two
        let x = sys.solve().unwrap();
        assert!(x[0] ^ x[1]);
        assert!(!(x[1] ^ x[2]));
    }

    #[test]
    fn random_systems_round_trip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..50 {
            let vars = rng.gen_range(1..100);
            let planted: Vec<bool> = (0..vars).map(|_| rng.gen_bool(0.5)).collect();
            let mut sys = Gf2System::new(vars);
            let mut saved_rows: Vec<(Vec<u64>, bool)> = Vec::new();
            for _ in 0..rng.gen_range(1..2 * vars + 1) {
                let mut coeffs = vec![0u64; vars.div_ceil(64)];
                for v in 0..vars {
                    if rng.gen_bool(0.3) {
                        coeffs[v / 64] ^= 1 << (v % 64);
                    }
                }
                let rhs = dot(&coeffs, &planted);
                saved_rows.push((coeffs.clone(), rhs));
                sys.add_equation(coeffs, rhs);
            }
            let x = sys
                .solve()
                .unwrap_or_else(|| panic!("trial {trial}: consistent system reported unsolvable"));
            for (coeffs, rhs) in &saved_rows {
                assert_eq!(dot(coeffs, &x), *rhs, "trial {trial}");
            }
        }
    }

    #[test]
    fn wide_systems_cross_word_boundaries() {
        let mut sys = Gf2System::new(130);
        sys.add_equation_vars(&[0, 64, 129], true);
        sys.add_equation_vars(&[64], true);
        sys.add_equation_vars(&[129], false);
        let x = sys.solve().unwrap();
        // x0 = 1 ^ x64 ^ x129 = 1 ^ 1 ^ 0 = 0.
        assert!(!x[0]);
        assert!(x[64]);
        assert!(!x[129]);
    }
}
