//! EDT-style test compression (embedded deterministic test).
//!
//! Implements the published architecture of commercial scan compression
//! (Rajski et al., "Embedded deterministic test", ITC 2002): a small ring
//! generator (LFSR) is fed a few *channel* bits per shift cycle and, through
//! a phase shifter, drives many internal scan chains. Because every scan
//! cell is a GF(2)-linear function of the injected channel bits, a test
//! cube's care bits become a linear system; solving it yields the
//! compressed stimulus. Responses are compacted by a MISR with optional
//! X-masking.
//!
//! # Example
//!
//! ```
//! use dft_compress::EdtCodec;
//! use dft_logicsim::TestCube;
//!
//! // 8 chains x 16 cells fed by 2 channels.
//! let codec = EdtCodec::new(8, 16, 2, 32, 0xC0DE);
//! let mut cube = TestCube::all_x(8 * 16);
//! cube.set(5, true);
//! cube.set(77, false);
//! let compressed = codec.encode(&cube).expect("low care density encodes");
//! let loads = codec.expand(&compressed);
//! assert!(loads[5 / 16][5 % 16]);
//! assert!(!loads[77 / 16][77 % 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broadcast;
mod edt;
mod gf2;
mod misr;
mod pack;
mod ring;

pub use broadcast::{IllinoisMode, IllinoisScan};
pub use edt::{CompressionStats, EdtCodec, ScanEdt};
pub use gf2::Gf2System;
pub use misr::{signature_with_mask, Misr, XMask};
pub use pack::{pack_bits, unpack_bits};
pub use ring::{PhaseShifter, RingGenerator};
