//! Bit-vector packing for wire formats and signature hashing.
//!
//! Scan stimulus, MISR signatures, and channel streams all travel as
//! `Vec<bool>` inside the toolkit but must cross process boundaries
//! (the serve framing protocol, checkpoint journals) as bytes. These
//! helpers define the one canonical packing — LSB-first within each
//! byte, zero-padded to the byte boundary — so every layer that hashes
//! or frames bits agrees on the encoding.

/// Packs `bits` LSB-first into bytes (bit `i` lands in byte `i / 8`,
/// position `i % 8`). The final byte is zero-padded.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Unpacks `count` bits from `bytes`, inverting [`pack_bits`]. Returns
/// `None` when `bytes` is too short for `count` bits or padding bits
/// past `count` are set (a torn or corrupt encoding, never a panic).
pub fn unpack_bits(bytes: &[u8], count: usize) -> Option<Vec<bool>> {
    if bytes.len() != count.div_ceil(8) {
        return None;
    }
    let mut bits = Vec::with_capacity(count);
    for i in 0..count {
        bits.push(bytes[i / 8] & (1 << (i % 8)) != 0);
    }
    // Reject set padding bits so every bit vector has one encoding.
    if !count.is_multiple_of(8) && bytes[count / 8] >> (count % 8) != 0 {
        return None;
    }
    Some(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..40usize {
            let bits: Vec<bool> = (0..len).map(|i| (i * 7 + 3) % 5 < 2).collect();
            let bytes = pack_bits(&bits);
            assert_eq!(bytes.len(), len.div_ceil(8));
            assert_eq!(unpack_bits(&bytes, len).as_deref(), Some(&bits[..]));
        }
    }

    #[test]
    fn rejects_bad_lengths_and_padding() {
        assert!(unpack_bits(&[0xFF], 4).is_none()); // padding bits set
        assert!(unpack_bits(&[0x0F], 4).is_some());
        assert!(unpack_bits(&[0x00], 9).is_none()); // too short
        assert!(unpack_bits(&[0x00, 0x00], 8).is_none()); // too long
        assert_eq!(unpack_bits(&[], 0).as_deref(), Some(&[][..]));
    }
}
