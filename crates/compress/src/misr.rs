//! Response compaction: MISR signatures and X-masking.

/// A multiple-input signature register.
///
/// Each cycle the register shifts (with feedback) and XORs one parallel
/// input word — the per-chain scan-out bits. After all unload cycles the
/// state is the *signature*; comparing it against the fault-free signature
/// replaces per-cycle comparison. A single unknown (X) response bit
/// corrupts the signature, which is why X-masking exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    state: Vec<bool>,
    taps: Vec<usize>,
}

impl Misr {
    /// Creates a `width`-bit MISR (one input per scan chain) with a fixed
    /// characteristic polynomial derived from the width.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Misr {
        assert!(width >= 2, "MISR needs at least 2 bits");
        // Taps: last bit plus a small spread — primitive-ish; exactness is
        // not required for aliasing statistics at these widths.
        let mut taps = vec![width - 1];
        if width > 3 {
            taps.push(width / 2);
        }
        if width > 5 {
            taps.push(width / 3);
        }
        Misr {
            state: vec![false; width],
            taps,
        }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.state.len()
    }

    /// Resets the signature to zero.
    pub fn reset(&mut self) {
        self.state.fill(false);
    }

    /// Absorbs one cycle of parallel response bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width`.
    pub fn absorb(&mut self, inputs: &[bool]) {
        assert_eq!(inputs.len(), self.state.len(), "input width");
        // Galois-free shift: feedback (which taps the last bit) replaces
        // the wrapped-around element, making the transition nonsingular.
        let fb = self.taps.iter().fold(false, |acc, &t| acc ^ self.state[t]);
        self.state.rotate_right(1);
        self.state[0] = fb;
        for (s, &i) in self.state.iter_mut().zip(inputs) {
            *s ^= i;
        }
    }

    /// Absorbs a whole unload (one word per cycle).
    pub fn absorb_all<'a, I: IntoIterator<Item = &'a [bool]>>(&mut self, cycles: I) {
        for c in cycles {
            self.absorb(c);
        }
    }

    /// The current signature.
    pub fn signature(&self) -> &[bool] {
        &self.state
    }

    /// Signature as a hex string (MSB first) for logs and tables.
    pub fn signature_hex(&self) -> String {
        let mut out = String::new();
        for chunk in self.state.chunks(4) {
            let mut v = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                if b {
                    v |= 1 << (3 - i);
                }
            }
            out.push(char::from_digit(v as u32, 16).unwrap());
        }
        out
    }
}

/// A per-cycle X-masking controller: masked (chain, cycle) positions are
/// forced to 0 before entering the MISR so unknown response bits cannot
/// corrupt the signature.
#[derive(Debug, Clone, Default)]
pub struct XMask {
    /// `masked[cycle]` is the set of chain indices to suppress.
    masked: Vec<Vec<usize>>,
}

impl XMask {
    /// Creates an empty mask over `cycles` unload cycles.
    pub fn new(cycles: usize) -> XMask {
        XMask {
            masked: vec![Vec::new(); cycles],
        }
    }

    /// Masks chain `chain` during `cycle`.
    pub fn mask(&mut self, cycle: usize, chain: usize) {
        if !self.masked[cycle].contains(&chain) {
            self.masked[cycle].push(chain);
        }
    }

    /// Number of masked positions.
    pub fn count(&self) -> usize {
        self.masked.iter().map(|m| m.len()).sum()
    }

    /// Applies the mask to one cycle of response bits (in place).
    pub fn apply(&self, cycle: usize, bits: &mut [bool]) {
        if let Some(m) = self.masked.get(cycle) {
            for &c in m {
                bits[c] = false;
            }
        }
    }
}

/// Runs a full signature computation over per-cycle responses with
/// optional masking. `responses[cycle][chain]`; `None` bits model X values
/// (unknown): unmasked X bits corrupt the signature pseudo-randomly, which
/// the return value reports.
///
/// Returns `(signature_hex, x_corrupted)`.
pub fn signature_with_mask(
    width: usize,
    responses: &[Vec<Option<bool>>],
    mask: Option<&XMask>,
) -> (String, bool) {
    let mut misr = Misr::new(width);
    let mut corrupted = false;
    for (cycle, resp) in responses.iter().enumerate() {
        let mut bits: Vec<bool> = resp
            .iter()
            .enumerate()
            .map(|(chain, b)| match b {
                Some(v) => *v,
                None => {
                    let is_masked = mask
                        .map(|m| m.masked.get(cycle).is_some_and(|s| s.contains(&chain)))
                        .unwrap_or(false);
                    if !is_masked {
                        corrupted = true;
                    }
                    // Model the unknown as an arbitrary (here: deterministic
                    // pseudo-random) electrical value.
                    (cycle ^ chain) & 1 == 1
                }
            })
            .collect();
        if let Some(m) = mask {
            m.apply(cycle, &mut bits);
        }
        misr.absorb(&bits);
    }
    (misr.signature_hex(), corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64, cycles: usize, width: usize) -> Vec<Vec<bool>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..cycles)
            .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
            .collect()
    }

    #[test]
    fn signature_is_deterministic() {
        let s = stream(3, 50, 8);
        let mut m1 = Misr::new(8);
        let mut m2 = Misr::new(8);
        m1.absorb_all(s.iter().map(|c| c.as_slice()));
        m2.absorb_all(s.iter().map(|c| c.as_slice()));
        assert_eq!(m1.signature(), m2.signature());
    }

    #[test]
    fn misr_is_linear() {
        // sig(a ^ b) == sig(a) ^ sig(b) for zero-initialized MISRs.
        let a = stream(1, 40, 8);
        let b = stream(2, 40, 8);
        let xor: Vec<Vec<bool>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let sig = |s: &[Vec<bool>]| {
            let mut m = Misr::new(8);
            m.absorb_all(s.iter().map(|c| c.as_slice()));
            m.signature().to_vec()
        };
        let sa = sig(&a);
        let sb = sig(&b);
        let sx = sig(&xor);
        let combined: Vec<bool> = sa.iter().zip(&sb).map(|(p, q)| p ^ q).collect();
        assert_eq!(sx, combined);
    }

    #[test]
    fn single_bit_error_changes_signature() {
        let s = stream(7, 30, 8);
        let mut m1 = Misr::new(8);
        m1.absorb_all(s.iter().map(|c| c.as_slice()));
        for cycle in 0..30 {
            for chain in 0..8 {
                let mut bad = s.clone();
                bad[cycle][chain] = !bad[cycle][chain];
                let mut m2 = Misr::new(8);
                m2.absorb_all(bad.iter().map(|c| c.as_slice()));
                assert_ne!(
                    m1.signature(),
                    m2.signature(),
                    "error at ({cycle},{chain}) aliased"
                );
            }
        }
    }

    #[test]
    fn masking_suppresses_x_corruption() {
        let responses: Vec<Vec<Option<bool>>> = vec![
            vec![Some(true), Some(false), None, Some(true)],
            vec![Some(false), Some(false), Some(true), Some(true)],
        ];
        let (_, corrupted) = signature_with_mask(4, &responses, None);
        assert!(corrupted);
        let mut mask = XMask::new(2);
        mask.mask(0, 2);
        let (sig_masked, corrupted) = signature_with_mask(4, &responses, Some(&mask));
        assert!(!corrupted);
        // And the masked signature matches the one where the X was 0.
        let clean: Vec<Vec<Option<bool>>> = vec![
            vec![Some(true), Some(false), Some(false), Some(true)],
            vec![Some(false), Some(false), Some(true), Some(true)],
        ];
        let (sig_clean, _) = signature_with_mask(4, &clean, None);
        assert_eq!(sig_masked, sig_clean);
    }

    #[test]
    fn hex_rendering() {
        let mut m = Misr::new(8);
        m.absorb(&[true, false, true, false, false, false, false, true]);
        assert_eq!(m.signature_hex().len(), 2);
    }
}
