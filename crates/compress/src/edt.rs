//! The EDT codec: cube encoding (GF(2) solve) and stimulus expansion.

use dft_checkpoint::CancelToken;
use dft_logicsim::TestCube;
use dft_metrics::MetricsHandle;
use dft_netlist::Netlist;
use dft_scan::ScanInsertion;
use dft_trace::TraceHandle;

use crate::gf2::Gf2System;
use crate::{PhaseShifter, RingGenerator};

/// An EDT compression codec for a fixed scan geometry.
///
/// Cell indexing: cell `(chain c, position p)` (position 0 nearest
/// scan-in) is flat index `c * chain_len + p`. The bit occupying position
/// `p` after a full load is the phase-shifter output of chain `c` at shift
/// cycle `chain_len - 1 - p`.
#[derive(Debug, Clone)]
pub struct EdtCodec {
    ring: RingGenerator,
    shifter: PhaseShifter,
    chains: usize,
    chain_len: usize,
    /// Decompressor warm-up cycles before the first chain-load cycle.
    /// Without warm-up, cells loaded in the first cycles depend on almost
    /// no variables and over-constrain trivially.
    warmup: usize,
    /// Symbolic linear expression of every (load cycle, chain) output over
    /// the injected variables.
    cell_expr: Vec<Vec<Vec<u64>>>,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl EdtCodec {
    /// Builds a codec: `chains x chain_len` scan cells fed by `channels`
    /// tester channels through a ring generator of `ring_len` bits. The
    /// decompressor is clocked `ring_len` warm-up cycles (with injection)
    /// before the load begins.
    pub fn new(
        chains: usize,
        chain_len: usize,
        channels: usize,
        ring_len: usize,
        seed: u64,
    ) -> EdtCodec {
        let ring = RingGenerator::new(ring_len, channels, seed);
        let shifter = PhaseShifter::new(ring_len, chains, seed);
        let warmup = ring_len;
        let vars = channels * (chain_len + warmup);
        let var_words = vars.div_ceil(64);
        // Symbolic simulation of warm-up plus one full load.
        let mut state = vec![vec![0u64; var_words]; ring_len];
        let mut cell_expr: Vec<Vec<Vec<u64>>> = Vec::with_capacity(chain_len);
        for k in 0..warmup + chain_len {
            let injected: Vec<usize> = (0..channels).map(|c| k * channels + c).collect();
            ring.step_symbolic(&mut state, &injected, var_words);
            if k >= warmup {
                cell_expr.push(shifter.output_symbolic(&state, var_words));
            }
        }
        EdtCodec {
            ring,
            shifter,
            chains,
            chain_len,
            warmup,
            cell_expr,
            metrics: MetricsHandle::disabled(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Points encode/solve counters at `metrics`.
    pub fn set_metrics(&mut self, metrics: MetricsHandle) {
        self.metrics = metrics;
    }

    /// Points span recording at `trace`: each [`EdtCodec::encode`] call
    /// records an `edt_encode` span (`arg` = care bits) wrapping a
    /// `gf2_solve` span around the linear solve.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Number of scan chains driven.
    pub fn chains(&self) -> usize {
        self.chains
    }

    /// Scan cells per chain.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Tester channels (compressed stimulus width per cycle).
    pub fn channels(&self) -> usize {
        self.ring.channels()
    }

    /// Compressed bits per pattern (`channels * (warmup + chain_len)`).
    pub fn compressed_bits(&self) -> usize {
        self.channels() * (self.chain_len + self.warmup)
    }

    /// Uncompressed bits per pattern (`chains * chain_len`).
    pub fn flat_bits(&self) -> usize {
        self.chains * self.chain_len
    }

    /// Encodes a test cube over the flat cell index space. Returns the
    /// per-cycle channel inputs, or `None` when the care bits are not
    /// encodable (over-constrained for this geometry).
    pub fn encode(&self, cube: &TestCube) -> Option<Vec<Vec<bool>>> {
        assert_eq!(cube.width(), self.flat_bits(), "cube width");
        let mut sys = Gf2System::new(self.compressed_bits());
        for c in 0..self.chains {
            for p in 0..self.chain_len {
                if let Some(v) = cube.get(c * self.chain_len + p) {
                    let cycle = self.chain_len - 1 - p;
                    sys.add_equation(self.cell_expr[cycle][c].clone(), v);
                }
            }
        }
        let care_bits = sys.num_rows() as u64;
        let _encode = self.trace.span_arg("edt_encode", care_bits);
        let (solution, eliminations) = {
            let _solve = self.trace.span_arg("gf2_solve", care_bits);
            sys.solve_counted()
        };
        if let Some(m) = self.metrics.get() {
            m.edt_cubes_attempted.inc();
            m.edt_care_bits.add(care_bits);
            m.edt_care_bits_per_cube.record(care_bits);
            m.gf2_solves.inc();
            m.gf2_eliminations.add(eliminations);
            if solution.is_some() {
                m.edt_cubes_encoded.inc();
            } else {
                m.edt_cubes_failed.inc();
            }
        }
        let x = solution?;
        let channels = self.channels();
        Some(
            (0..self.chain_len + self.warmup)
                .map(|k| (0..channels).map(|c| x[k * channels + c]).collect())
                .collect(),
        )
    }

    /// Expands compressed stimulus (warm-up cycles followed by load
    /// cycles) into per-chain load vectors indexed by position
    /// (`loads[c][p]` is the final value of cell `p` of chain `c`).
    pub fn expand(&self, inputs: &[Vec<bool>]) -> Vec<Vec<bool>> {
        assert_eq!(inputs.len(), self.chain_len + self.warmup, "cycles");
        let mut state = vec![false; self.ring.length()];
        let mut loads = vec![vec![false; self.chain_len]; self.chains];
        for (k, ins) in inputs.iter().enumerate() {
            self.ring.step(&mut state, ins);
            if k < self.warmup {
                continue;
            }
            let out = self.shifter.output(&state);
            let pos = self.chain_len - 1 - (k - self.warmup);
            for (c, &bit) in out.iter().enumerate() {
                loads[c][pos] = bit;
            }
        }
        loads
    }

    /// Checks a cube's care bits against expanded loads (test helper and
    /// sign-off utility).
    pub fn satisfies(&self, cube: &TestCube, loads: &[Vec<bool>]) -> bool {
        for (c, load) in loads.iter().enumerate().take(self.chains) {
            for (p, &bit) in load.iter().enumerate().take(self.chain_len) {
                if let Some(v) = cube.get(c * self.chain_len + p) {
                    if bit != v {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Probability-free capacity heuristic: cubes with up to roughly
    /// `compressed_bits - ring_len` care bits usually encode.
    pub fn capacity_hint(&self) -> usize {
        self.compressed_bits().saturating_sub(self.ring.length())
    }
}

/// Aggregate compression statistics for a pattern set (experiment E4).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressionStats {
    /// Patterns successfully encoded.
    pub encoded: usize,
    /// Patterns that failed encoding (must be applied uncompressed or
    /// re-generated with fewer care bits).
    pub failed: usize,
    /// Total compressed stimulus bits.
    pub compressed_bits: u64,
    /// Total flat stimulus bits for the same patterns.
    pub flat_bits: u64,
    /// Cubes skipped because a [`CancelToken`] fired mid-pass (see
    /// [`ScanEdt::compress_all_cancellable`]). Non-zero means the stats
    /// cover only a prefix of the cube set.
    pub skipped: usize,
}

impl CompressionStats {
    /// Stimulus compression ratio (`flat / compressed`), counting failed
    /// cubes at flat cost.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bits == 0 {
            return 1.0;
        }
        self.flat_bits as f64 / self.compressed_bits as f64
    }

    /// Encoding success rate.
    pub fn encode_rate(&self) -> f64 {
        let total = self.encoded + self.failed;
        if total == 0 {
            return 1.0;
        }
        self.encoded as f64 / total as f64
    }
}

/// Binds an [`EdtCodec`] to a real scan architecture: maps ATPG cubes
/// (netlist source order) onto scan cells and accounts compression for a
/// whole cube set.
#[derive(Debug)]
pub struct ScanEdt<'a> {
    nl: &'a Netlist,
    scan: &'a ScanInsertion,
    codec: EdtCodec,
    /// For each flop (by netlist dff order), its flat cell index.
    cell_of_ff: Vec<usize>,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl<'a> ScanEdt<'a> {
    /// Builds the binding. The codec geometry is taken from the scan
    /// architecture (chains padded to the longest chain length).
    pub fn new(
        nl: &'a Netlist,
        scan: &'a ScanInsertion,
        channels: usize,
        ring_len: usize,
        seed: u64,
    ) -> ScanEdt<'a> {
        let chain_len = scan.shift_cycles();
        let codec = EdtCodec::new(scan.chains.len(), chain_len, channels, ring_len, seed);
        let ffs = nl.dffs();
        let mut cell_of_ff = vec![usize::MAX; ffs.len()];
        for (ci, chain) in scan.chains.iter().enumerate() {
            for (pos, ff) in chain.iter().enumerate() {
                // Scan chains index flops of the *scan netlist*, which
                // shares gate ids with the original for pre-existing gates.
                let ff_idx = ffs
                    .iter()
                    .position(|&f| f == *ff)
                    .expect("chain flop in original dff list");
                cell_of_ff[ff_idx] = ci * chain_len + pos;
            }
        }
        ScanEdt {
            nl,
            scan,
            codec,
            cell_of_ff,
            metrics: MetricsHandle::disabled(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Points the binding (and its codec) at `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> ScanEdt<'a> {
        self.codec.set_metrics(metrics.clone());
        self.metrics = metrics;
        self
    }

    /// Points the binding (and its codec) at `trace`:
    /// [`ScanEdt::compress_all`] records a `compress_all` span (`arg` =
    /// cube count) around per-cube `edt_encode`/`gf2_solve` spans.
    pub fn with_trace(mut self, trace: TraceHandle) -> ScanEdt<'a> {
        self.codec.set_trace(trace.clone());
        self.trace = trace;
        self
    }

    /// The underlying codec.
    pub fn codec(&self) -> &EdtCodec {
        &self.codec
    }

    /// Converts an ATPG cube (netlist source order: PIs then flops) into a
    /// scan-cell cube for the codec. PI care bits are not compressed
    /// (driven directly) and are ignored here.
    pub fn to_cell_cube(&self, cube: &TestCube) -> TestCube {
        let num_pi = self.nl.num_inputs();
        let mut cells = TestCube::all_x(self.codec.flat_bits());
        for (ff_idx, &cell) in self.cell_of_ff.iter().enumerate() {
            if cell == usize::MAX {
                continue;
            }
            if let Some(v) = cube.get(num_pi + ff_idx) {
                cells.set(cell, v);
            }
        }
        cells
    }

    /// The inverse of [`ScanEdt::to_cell_cube`] composed with
    /// [`EdtCodec::expand`]: reassembles a full simulation pattern
    /// (netlist source order: PIs then flops) from directly-driven PI
    /// bits and the per-chain scan loads the decompressor shifts in.
    /// Cells the scan architecture padded past the real flops are
    /// ignored; an unmapped flop loads `false`. Both the tester and the
    /// die derive patterns through this one function, so a cube that
    /// round-trips the codec yields bit-identical stimulus on each side.
    pub fn to_pattern(&self, pi_bits: &[bool], loads: &[Vec<bool>]) -> Vec<bool> {
        let num_pi = self.nl.num_inputs();
        assert_eq!(pi_bits.len(), num_pi, "PI bit count mismatch");
        let chain_len = self.scan.shift_cycles();
        let mut pattern = vec![false; num_pi + self.cell_of_ff.len()];
        pattern[..num_pi].copy_from_slice(pi_bits);
        for (ff_idx, &cell) in self.cell_of_ff.iter().enumerate() {
            if cell == usize::MAX {
                continue;
            }
            pattern[num_pi + ff_idx] = loads[cell / chain_len][cell % chain_len];
        }
        pattern
    }

    /// Encodes every cube, returning aggregate statistics.
    pub fn compress_all(&self, cubes: &[TestCube]) -> CompressionStats {
        self.compress_inner(cubes, None)
    }

    /// [`ScanEdt::compress_all`] with cooperative cancellation: the token
    /// is checked at every cube boundary and a fired token drains the
    /// pass, counting the unprocessed tail in
    /// [`CompressionStats::skipped`]. Compression is a pure accounting
    /// pass (nothing downstream consumes its intermediate state), so a
    /// drained pass is simply rerun after resume.
    pub fn compress_all_cancellable(
        &self,
        cubes: &[TestCube],
        cancel: &CancelToken,
    ) -> CompressionStats {
        self.compress_inner(cubes, Some(cancel))
    }

    fn compress_inner(&self, cubes: &[TestCube], cancel: Option<&CancelToken>) -> CompressionStats {
        let _span = self.trace.span_arg("compress_all", cubes.len() as u64);
        let mut stats = CompressionStats::default();
        for (i, cube) in cubes.iter().enumerate() {
            if cancel.is_some_and(|tok| tok.is_cancelled()) {
                stats.skipped = cubes.len() - i;
                break;
            }
            let cells = self.to_cell_cube(cube);
            stats.flat_bits += self.codec.flat_bits() as u64;
            match self.codec.encode(&cells) {
                Some(_) => {
                    stats.encoded += 1;
                    stats.compressed_bits += self.codec.compressed_bits() as u64;
                }
                None => {
                    stats.failed += 1;
                    // Bypass mode: failed cubes ship flat.
                    stats.compressed_bits += self.codec.flat_bits() as u64;
                }
            }
        }
        if let Some(m) = self.metrics.get() {
            m.edt_compressed_bits.add(stats.compressed_bits);
            m.edt_flat_bits.add(stats.flat_bits);
        }
        stats
    }

    /// The scan architecture this binding uses.
    pub fn scan(&self) -> &ScanInsertion {
        self.scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dft_scan::{insert_scan, ScanConfig};

    #[test]
    fn encode_expand_round_trip() {
        let codec = EdtCodec::new(16, 32, 2, 32, 0xE0);
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..30 {
            let mut cube = TestCube::all_x(codec.flat_bits());
            // ~5% care density, well within capacity.
            for _ in 0..codec.capacity_hint() / 2 {
                let i = rng.gen_range(0..codec.flat_bits());
                cube.set(i, rng.gen_bool(0.5));
            }
            let Some(compressed) = codec.encode(&cube) else {
                panic!("trial {trial}: encode failed below capacity");
            };
            let loads = codec.expand(&compressed);
            assert!(codec.satisfies(&cube, &loads), "trial {trial}");
        }
    }

    #[test]
    fn overconstrained_cube_fails_gracefully() {
        // More care bits than free variables cannot encode (except by
        // luck); a fully-specified random cube must fail.
        let codec = EdtCodec::new(16, 16, 1, 16, 0x5);
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let mut cube = TestCube::all_x(codec.flat_bits());
        for i in 0..codec.flat_bits() {
            cube.set(i, rng.gen_bool(0.5));
        }
        assert!(codec.encode(&cube).is_none());
    }

    #[test]
    fn compression_ratio_accounting() {
        let stats = CompressionStats {
            encoded: 90,
            failed: 10,
            compressed_bits: 90 * 64 + 10 * 1024,
            flat_bits: 100 * 1024,
            skipped: 0,
        };
        assert!(stats.ratio() > 6.0);
        assert!((stats.encode_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cancelled_compression_counts_the_skipped_tail() {
        use dft_netlist::generators::counter;
        let nl = counter(8);
        let scan = insert_scan(&nl, &ScanConfig { num_chains: 2 });
        let edt = ScanEdt::new(&nl, &scan, 1, 16, 9);
        let cubes = vec![TestCube::all_x(1 + 8); 5];
        let tok = CancelToken::new();
        tok.cancel();
        let stats = edt.compress_all_cancellable(&cubes, &tok);
        assert_eq!(stats.skipped, 5);
        assert_eq!(stats.encoded + stats.failed, 0);
        // An un-fired token leaves the pass identical to the plain one.
        let clean = edt.compress_all_cancellable(&cubes, &CancelToken::new());
        assert_eq!(clean, edt.compress_all(&cubes));
        assert_eq!(clean.skipped, 0);
    }

    #[test]
    fn scan_binding_maps_ppi_bits() {
        use dft_netlist::generators::counter;
        let nl = counter(8);
        let scan = insert_scan(&nl, &ScanConfig { num_chains: 2 });
        let edt = ScanEdt::new(&nl, &scan, 1, 16, 9);
        // Cube setting flop 5 (source index 1 PI + 5).
        let mut cube = TestCube::all_x(1 + 8);
        cube.set(1 + 5, true);
        cube.set(0, false); // PI bit: ignored by the cell cube
        let cells = edt.to_cell_cube(&cube);
        assert_eq!(cells.care_bits(), 1);
        // Flop 5 sits in chain 1 position 1 -> cell 1*4+1 = 5.
        assert_eq!(cells.get(5), Some(true));
    }

    #[test]
    fn real_atpg_cubes_compress_well() {
        use dft_atpg::{Atpg, AtpgConfig, CompactionMode};
        use dft_netlist::generators::mac_pe;
        let nl = mac_pe(4);
        let run = Atpg::new(&nl).run(&AtpgConfig {
            random_patterns: 0,
            compaction: CompactionMode::None,
            ..AtpgConfig::default()
        });
        let scan = insert_scan(&nl, &ScanConfig { num_chains: 4 });
        let edt = ScanEdt::new(&nl, &scan, 1, 24, 0xAB);
        let stats = edt.compress_all(&run.cubes);
        assert!(stats.encoded > 0);
        assert!(
            stats.encode_rate() > 0.5,
            "encode rate {}",
            stats.encode_rate()
        );
    }
}
