//! Property test: EDT compress -> decompress round trip. Any cube whose
//! care bits the GF(2) solver can encode must be reproduced exactly by
//! expanding the compressed stimulus through the real ring-generator /
//! phase-shifter datapath (every care bit satisfied).

use dft_compress::EdtCodec;
use dft_logicsim::TestCube;
use dft_metrics::MetricsHandle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random geometry + random care bits: whenever encode succeeds, the
    /// expanded loads satisfy the cube; metric counters agree with the
    /// outcome.
    #[test]
    fn encode_expand_satisfies_cube(
        chains in 2usize..12,
        chain_len in 4usize..40,
        channels in 1usize..4,
        ring_len in 16usize..48,
        seed in 0u64..10_000,
        care_seed in 0u64..10_000,
        density_pct in 1u64..30,
    ) {
        let metrics = MetricsHandle::enabled();
        let mut codec = EdtCodec::new(chains, chain_len, channels, ring_len, seed);
        codec.set_metrics(metrics.clone());

        // Derive care bits from a seeded LCG (the vendored proptest has no
        // collection strategies).
        let flat = codec.flat_bits();
        let mut cube = TestCube::all_x(flat);
        let mut s = care_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
        let mut care = 0u64;
        for i in 0..flat {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (s >> 33) % 100 < density_pct {
                cube.set(i, (s >> 13) & 1 == 1);
                care += 1;
            }
        }

        match codec.encode(&cube) {
            Some(compressed) => {
                prop_assert_eq!(compressed.len(), codec.compressed_bits() / channels);
                let loads = codec.expand(&compressed);
                prop_assert!(codec.satisfies(&cube, &loads),
                    "decompressed loads violate a care bit");
                let snap = metrics.snapshot().unwrap();
                prop_assert_eq!(snap.counter("edt_cubes_encoded"), 1);
                prop_assert_eq!(snap.counter("edt_cubes_failed"), 0);
                prop_assert_eq!(snap.counter("edt_care_bits"), care);
            }
            None => {
                let snap = metrics.snapshot().unwrap();
                prop_assert_eq!(snap.counter("edt_cubes_encoded"), 0);
                prop_assert_eq!(snap.counter("edt_cubes_failed"), 1);
            }
        }
        let snap = metrics.snapshot().unwrap();
        prop_assert_eq!(snap.counter("edt_cubes_attempted"), 1);
        prop_assert_eq!(snap.counter("gf2_solves"), 1);
    }

    /// Cubes within the capacity hint nearly always encode; this pins the
    /// contract that sparse cubes round-trip rather than silently failing.
    #[test]
    fn sparse_cubes_encode_and_round_trip(
        seed in 0u64..10_000,
        care_seed in 0u64..10_000,
    ) {
        let codec = EdtCodec::new(8, 32, 2, 32, seed);
        let flat = codec.flat_bits();
        let budget = codec.capacity_hint() / 3;
        let mut cube = TestCube::all_x(flat);
        let mut s = care_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        for _ in 0..budget {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cube.set(((s >> 24) as usize) % flat, (s >> 7) & 1 == 1);
        }
        let compressed = codec.encode(&cube);
        prop_assert!(compressed.is_some(), "sparse cube failed to encode");
        let loads = codec.expand(&compressed.unwrap());
        prop_assert!(codec.satisfies(&cube, &loads));
    }
}
