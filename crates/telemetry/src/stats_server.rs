//! The scrape endpoint: a minimal HTTP/1.0 listener serving the
//! published [`crate::TelemetrySample`].
//!
//! Routes: `/metrics` returns Prometheus text exposition,
//! `/stats.json` (or `/`) returns the stable-ordered JSON payload.
//! The server reads only the already-published sample behind an
//! `RwLock` — a scrape never touches fleet state, so scraping at any
//! rate cannot perturb the run. One handler thread, short per-connection
//! timeouts, `Connection: close`: this is an operator endpoint for
//! `curl`, Prometheus, and `aidft top`, not a general web server.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::Inner;

/// Per-connection read/write timeout.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// The running scrape listener; dropped (or stopped) when the
/// telemetry session finishes.
#[derive(Debug)]
pub(crate) struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop.
    pub(crate) fn bind(addr: &str, inner: Arc<Inner>) -> io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("aidft-stats".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => handle_conn(stream, &inner),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => thread::sleep(ACCEPT_POLL),
                    }
                }
            })
            .expect("spawn stats server");
        Ok(StatsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the resolved port).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Serves one request. Any I/O failure just drops the connection —
/// a scraper's problem is never the fleet's problem.
fn handle_conn(stream: TcpStream, inner: &Inner) {
    let _ = serve_one(stream, inner);
}

fn serve_one(mut stream: TcpStream, inner: &Inner) -> io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    // Nonblocking is inherited from the listener on some platforms;
    // switch the accepted socket back to blocking so the timeouts rule.
    stream.set_nonblocking(false)?;
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() >= 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&req);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("GET "))
        .and_then(|l| l.split_whitespace().next())
        .unwrap_or("")
        .to_owned();

    inner.count_scrape();
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            inner.published_sample().to_prometheus(),
        ),
        "/" | "/stats.json" | "/json" => (
            "200 OK",
            "application/json",
            inner.published_sample().to_json(),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            "not found; try /metrics or /stats.json\n".to_owned(),
        ),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// One-shot scrape client: fetches `path` from a stats endpoint and
/// returns the response body. Used by `aidft top`, `aidft fleet-stats`,
/// and the integration suites.
pub fn scrape(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(body.to_owned())
}
