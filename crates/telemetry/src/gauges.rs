//! Live fleet gauges: the instantaneous, wall-clock-flavored half of
//! telemetry.
//!
//! The [`dft_metrics`] registry is deliberately deterministic — its
//! counters are pure functions of the work performed, compared
//! bit-for-bit by the determinism suites. Live operator questions
//! ("how many sessions are open *right now*? what's the p99 window
//! latency?") are inherently timing-dependent, so they live here, in a
//! separate [`FleetGauges`] block that is never part of
//! [`dft_metrics::MetricsSnapshot::deterministic_eq`]. Latency
//! histograms reuse the metrics crate's log2 [`Histogram`] and its
//! [`dft_metrics::histogram_quantile`] estimator; they just never enter
//! the deterministic registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dft_metrics::Histogram;

/// The circuit-breaker states a die walks (mirrors the resilience
/// layer's Closed → Backoff → Quarantined progression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// A live session is streaming (or about to connect).
    Closed,
    /// The die is sleeping a reconnect backoff delay.
    Backoff,
    /// The breaker tripped; the die is `Untestable`.
    Quarantined,
}

impl SessionState {
    /// Stable lowercase label used in events and scrape payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Closed => "closed",
            SessionState::Backoff => "backoff",
            SessionState::Quarantined => "quarantined",
        }
    }
}

/// Saturating gauge decrement: a mispaired dec clamps at zero instead
/// of wrapping to 2^64 and poisoning every later readout.
fn dec(g: &AtomicU64) {
    let _ = g.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(1))
    });
}

/// Shared live-state gauges for one fleet run. All methods are lock-free
/// except the design name; serve-side hooks update them and the sampler
/// reads them, so every access is a relaxed atomic — telemetry must
/// never contend with the fleet's own locks.
#[derive(Debug, Default)]
pub struct FleetGauges {
    design: Mutex<String>,
    dies_total: AtomicU64,
    dies_done: AtomicU64,
    windows_per_die: AtomicU64,
    sessions_active: AtomicU64,
    windows_in_flight: AtomicU64,
    closed: AtomicU64,
    backoff: AtomicU64,
    quarantined: AtomicU64,
    /// Window round-trip latency (stream write → matching signature
    /// verified), microseconds, log2 buckets.
    pub window_latency_us: Histogram,
    /// Signature service latency (upload read → verify done),
    /// microseconds, log2 buckets.
    pub signature_latency_us: Histogram,
}

impl FleetGauges {
    /// Installs the fleet shape at run start.
    pub fn set_fleet(&self, design: &str, dies: u64, windows_per_die: u64) {
        *self.design.lock().unwrap() = design.to_owned();
        self.dies_total.store(dies, Ordering::Relaxed);
        self.windows_per_die
            .store(windows_per_die, Ordering::Relaxed);
        self.dies_done.store(0, Ordering::Relaxed);
    }

    /// The design name installed by [`FleetGauges::set_fleet`].
    pub fn design(&self) -> String {
        self.design.lock().unwrap().clone()
    }

    /// Fleet size.
    pub fn dies_total(&self) -> u64 {
        self.dies_total.load(Ordering::Relaxed)
    }

    /// Dies with a recorded verdict.
    pub fn dies_done(&self) -> u64 {
        self.dies_done.load(Ordering::Relaxed)
    }

    /// Updates the recorded-verdict count (monotone in practice; the
    /// server stores the authoritative value after each record).
    pub fn set_dies_done(&self, n: u64) {
        self.dies_done.store(n, Ordering::Relaxed);
    }

    /// Windows per die in the broadcast.
    pub fn windows_per_die(&self) -> u64 {
        self.windows_per_die.load(Ordering::Relaxed)
    }

    /// Sessions currently open on the server.
    pub fn sessions_active(&self) -> u64 {
        self.sessions_active.load(Ordering::Relaxed)
    }

    pub(crate) fn session_opened(&self) {
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn session_closed(&self) {
        dec(&self.sessions_active);
    }

    /// Windows streamed but not yet signature-verified, fleet-wide.
    pub fn windows_in_flight(&self) -> u64 {
        self.windows_in_flight.load(Ordering::Relaxed)
    }

    /// One window entered the pipeline.
    pub fn window_sent(&self) {
        self.windows_in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` windows left the pipeline (verified, or abandoned with a
    /// dying session).
    pub fn windows_settled(&self, n: u64) {
        let _ = self
            .windows_in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Dies currently in `state`.
    pub fn state_count(&self, state: SessionState) -> u64 {
        self.state_gauge(state).load(Ordering::Relaxed)
    }

    fn state_gauge(&self, state: SessionState) -> &AtomicU64 {
        match state {
            SessionState::Closed => &self.closed,
            SessionState::Backoff => &self.backoff,
            SessionState::Quarantined => &self.quarantined,
        }
    }

    pub(crate) fn state_enter(&self, state: SessionState) {
        self.state_gauge(state).fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn state_leave(&self, state: SessionState) {
        dec(self.state_gauge(state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_saturate_and_track_states() {
        let g = FleetGauges::default();
        g.set_fleet("mac4", 8, 2);
        assert_eq!(g.design(), "mac4");
        assert_eq!((g.dies_total(), g.windows_per_die()), (8, 2));
        g.window_sent();
        g.window_sent();
        g.windows_settled(5); // over-settle clamps at zero
        assert_eq!(g.windows_in_flight(), 0);
        g.session_closed(); // mispaired dec clamps too
        assert_eq!(g.sessions_active(), 0);
        g.state_enter(SessionState::Backoff);
        assert_eq!(g.state_count(SessionState::Backoff), 1);
        g.state_leave(SessionState::Backoff);
        g.state_leave(SessionState::Backoff);
        assert_eq!(g.state_count(SessionState::Backoff), 0);
        assert_eq!(SessionState::Quarantined.as_str(), "quarantined");
    }
}
