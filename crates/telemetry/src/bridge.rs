//! Span→event bridge: one call site marks a fleet milestone in *both*
//! observability systems.
//!
//! The trace timeline ([`dft_trace`]) and the telemetry event stream
//! answer different questions about the same moment — "where in the
//! timeline did die 7 get quarantined?" versus "stream me every
//! quarantine verdict as it happens". Rather than sprinkle paired calls
//! through the serve crate (and inevitably let them drift), the bridge
//! owns the pairing: each marker emits a trace instant and the matching
//! [`TelemetryEvent`], each half independently gated on its handle
//! being enabled.

use dft_trace::TraceHandle;

use crate::events::TelemetryEvent;
use crate::TelemetryHandle;

/// Marks a quarantine verdict: trace instant `quarantine` (arg = die
/// id) plus a [`TelemetryEvent::Quarantine`].
pub fn mark_quarantine(
    trace: &TraceHandle,
    telemetry: &TelemetryHandle,
    die: u32,
    defective: bool,
    attempts: u32,
) {
    trace.instant("quarantine", die as u64);
    telemetry.emit(TelemetryEvent::Quarantine {
        die,
        defective,
        attempts,
    });
}

/// Marks a retest grant: trace instant `retest` (arg = die id) plus a
/// [`TelemetryEvent::Retest`].
pub fn mark_retest(trace: &TraceHandle, telemetry: &TelemetryHandle, die: u32, windows: u64) {
    trace.instant("retest", die as u64);
    telemetry.emit(TelemetryEvent::Retest { die, windows });
}

/// Marks a chaos injection: trace instant `chaos` (arg = ordinal) plus
/// a [`TelemetryEvent::Chaos`] naming the site.
pub fn mark_chaos(
    trace: &TraceHandle,
    telemetry: &TelemetryHandle,
    site: &'static str,
    die: u32,
    ordinal: u64,
) {
    trace.instant("chaos", ordinal);
    telemetry.emit(TelemetryEvent::Chaos { site, die, ordinal });
}
