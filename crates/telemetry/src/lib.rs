//! Live fleet telemetry for the `aidft serve` test floor: a sampler
//! thread, a scrapeable stats endpoint, and an append-only event
//! stream.
//!
//! The serve fleet's determinism contract is sacred: the final
//! `FleetState` is a pure function of (design, config, chaos plan),
//! bit-identical across client thread counts, kernels, and kill/resume
//! cycles. Telemetry therefore follows one rule — **it only ever
//! reads**. Fleet threads update lock-free [`FleetGauges`] and queue
//! event lines; the sampler thread periodically snapshots the
//! deterministic [`dft_metrics`] registry, deltas it
//! ([`dft_metrics::MetricsSnapshot::delta`]) for rolling rates, and
//! publishes a [`TelemetrySample`] that the stats listener serves as
//! Prometheus text or stable-ordered JSON. No fleet thread ever blocks
//! on telemetry, so enabling it cannot change a single verdict — a
//! property the integration suites prove by byte-comparing summaries
//! with the sampler on and off, under chaos, across thread counts.
//!
//! Layout mirrors the handle discipline of [`dft_metrics`] and
//! [`dft_trace`]: a cheap, cloneable [`TelemetryHandle`] that is a
//! no-op when disabled (the default), and a [`TelemetrySession`] owning
//! the threads for the duration of one fleet run.
//!
//! | Piece | Role |
//! |---|---|
//! | [`FleetGauges`] | lock-free live state (sessions, breaker counts, in-flight, latency histograms) |
//! | [`sampler`](crate) | periodic snapshot→delta→publish loop |
//! | [`TelemetrySample`] | one published scrape payload (`aidft-stats-v1`) |
//! | stats listener | `/metrics` Prometheus, `/stats.json` JSON |
//! | [`TelemetryEvent`] stream | `aidft-telemetry-v1` framed JSONL journal |
//! | [`bridge`] | paired trace-instant + event markers |

mod gauges;
mod sample;
mod sampler;
mod stats_server;

pub mod bridge;
pub mod events;

pub use events::{
    read_events, validate_events, EventLog, EventStreamStats, TelemetryEvent, EVENTS_FORMAT,
};
pub use gauges::{FleetGauges, SessionState};
pub use sample::{
    escape_label, format_value, json_escape, pair_value, parse_prometheus, TelemetrySample,
    STATS_SCHEMA,
};
pub use stats_server::scrape;

use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use dft_metrics::MetricsHandle;

use sampler::Sampler;
use stats_server::StatsServer;

/// Shared state behind a telemetry session: gauges the fleet writes,
/// the published sample the endpoint reads, and the optional event log.
#[derive(Debug)]
pub(crate) struct Inner {
    start: Instant,
    pub(crate) gauges: FleetGauges,
    events: Option<EventLog>,
    published: RwLock<TelemetrySample>,
    scrapes: AtomicU64,
    samples: AtomicU64,
    peak_bits: AtomicU64,
}

impl Inner {
    pub(crate) fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    pub(crate) fn events(&self) -> Option<&EventLog> {
        self.events.as_ref()
    }

    pub(crate) fn publish(&self, sample: TelemetrySample) {
        *self.published.write().unwrap() = sample;
    }

    pub(crate) fn published_sample(&self) -> TelemetrySample {
        self.published.read().unwrap().clone()
    }

    pub(crate) fn count_scrape(&self) {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    pub(crate) fn next_sample_seq(&self) -> u64 {
        self.samples.fetch_add(1, Ordering::Relaxed)
    }

    /// Folds `rate` into the peak-dies/sec high-water mark and returns
    /// the (possibly updated) peak.
    pub(crate) fn update_peak(&self, rate: f64) -> f64 {
        let mut peak = f64::from_bits(self.peak_bits.load(Ordering::Relaxed));
        if rate > peak {
            self.peak_bits.store(rate.to_bits(), Ordering::Relaxed);
            peak = rate;
        }
        peak
    }
}

/// Cheap, cloneable entry point the serve crate threads telemetry
/// through — same discipline as [`dft_metrics::MetricsHandle`]. The
/// default handle is disabled and every hook is a no-op, so the fleet's
/// hot paths pay one branch when telemetry is off.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle(Option<Arc<Inner>>);

impl TelemetryHandle {
    /// The disabled handle (all hooks no-op).
    pub fn disabled() -> TelemetryHandle {
        TelemetryHandle(None)
    }

    /// `true` when a live session backs this handle.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The live gauges, when enabled.
    pub fn gauges(&self) -> Option<&FleetGauges> {
        self.0.as_deref().map(|i| &i.gauges)
    }

    /// Installs the fleet shape at run start.
    pub fn begin_fleet(&self, design: &str, dies: u64, windows_per_die: u64) {
        if let Some(g) = self.gauges() {
            g.set_fleet(design, dies, windows_per_die);
        }
    }

    /// Publishes the authoritative recorded-verdict count.
    pub fn set_dies_done(&self, n: u64) {
        if let Some(g) = self.gauges() {
            g.set_dies_done(n);
        }
    }

    /// One window entered the verify pipeline.
    pub fn window_sent(&self) {
        if let Some(g) = self.gauges() {
            g.window_sent();
        }
    }

    /// `n` windows left the verify pipeline.
    pub fn windows_settled(&self, n: u64) {
        if let Some(g) = self.gauges() {
            g.windows_settled(n);
        }
    }

    /// Records one window round-trip latency, microseconds.
    pub fn record_window_latency_us(&self, us: u64) {
        if let Some(g) = self.gauges() {
            g.window_latency_us.record(us);
        }
    }

    /// Records one signature service latency, microseconds.
    pub fn record_signature_latency_us(&self, us: u64) {
        if let Some(g) = self.gauges() {
            g.signature_latency_us.record(us);
        }
    }

    /// Queues an event for the stream (dropped when events are off).
    pub fn emit(&self, event: TelemetryEvent) {
        if let Some(inner) = &self.0 {
            if let Some(log) = inner.events() {
                log.emit(&event, inner.uptime_ms());
            }
        }
    }

    /// Durably flushes any buffered event lines to the journal *now*.
    /// The SIGTERM/cancel path calls this before unwinding so an
    /// interrupted fleet's final batch of events is not lost waiting
    /// for a sampler tick that will never come.
    pub fn flush_events(&self) {
        if let Some(inner) = &self.0 {
            if let Some(log) = inner.events() {
                log.flush();
            }
        }
    }

    /// RAII guard bumping the active-session gauge for one server-side
    /// session.
    pub fn session_scope(&self) -> SessionScope {
        if let Some(g) = self.gauges() {
            g.session_opened();
        }
        SessionScope {
            handle: self.clone(),
        }
    }

    /// RAII breaker-state tracker for one die's client lifetime.
    pub fn breaker(&self, die: u32) -> BreakerGauge {
        BreakerGauge {
            handle: self.clone(),
            die,
            state: None,
        }
    }
}

/// Guard from [`TelemetryHandle::session_scope`]; decrements the
/// active-session gauge on drop.
#[derive(Debug)]
pub struct SessionScope {
    handle: TelemetryHandle,
}

impl Drop for SessionScope {
    fn drop(&mut self) {
        if let Some(g) = self.handle.gauges() {
            g.session_closed();
        }
    }
}

/// Tracks one die's circuit-breaker state in the fleet gauges and emits
/// a [`TelemetryEvent::Session`] per transition. Quarantine is sticky:
/// the quarantined count survives the guard (and the run), matching the
/// fleet's own verdicts. Any other state is released on drop.
#[derive(Debug)]
pub struct BreakerGauge {
    handle: TelemetryHandle,
    die: u32,
    state: Option<SessionState>,
}

impl BreakerGauge {
    /// Moves the die to `to` (no-op if already there). The first call
    /// arms the gauge without emitting an event — only real transitions
    /// make the stream.
    pub fn set(&mut self, to: SessionState, attempt: u64) {
        let Some(g) = self.handle.gauges() else {
            return;
        };
        if self.state == Some(to) {
            return;
        }
        if let Some(from) = self.state {
            g.state_leave(from);
            self.handle.emit(TelemetryEvent::Session {
                die: self.die,
                from,
                to,
                attempt,
            });
        }
        g.state_enter(to);
        self.state = Some(to);
    }
}

impl Drop for BreakerGauge {
    fn drop(&mut self) {
        if let (Some(g), Some(state)) = (self.handle.gauges(), self.state) {
            if state != SessionState::Quarantined {
                g.state_leave(state);
            }
        }
    }
}

/// Configuration for one telemetry session.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Bind address for the scrape endpoint (`127.0.0.1:0` picks an
    /// ephemeral port); `None` disables the listener.
    pub stats_addr: Option<String>,
    /// Path for the `aidft-telemetry-v1` event journal; `None`
    /// disables the stream.
    pub events_path: Option<PathBuf>,
    /// Sampler tick period (clamped to ≥ 5 ms).
    pub period: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            stats_addr: None,
            events_path: None,
            period: Duration::from_millis(100),
        }
    }
}

/// Final accounting returned by [`TelemetrySession::finish`].
#[derive(Debug, Clone)]
pub struct TelemetryFinal {
    /// Samples taken (including the startup and final samples).
    pub samples: u64,
    /// Scrapes served.
    pub scrapes: u64,
    /// Events emitted to the stream.
    pub events: u64,
    /// High-water rolling dies/sec (0 when the run outpaced the
    /// sampler).
    pub peak_dies_per_sec: f64,
    /// Final p99 window latency estimate, microseconds (NaN when no
    /// windows were timed).
    pub p99_window_latency_us: f64,
    /// The last published sample, in full.
    pub final_sample: TelemetrySample,
}

/// One live telemetry session: owns the sampler thread, the optional
/// stats listener, and the optional event log for the duration of a
/// fleet run.
#[derive(Debug)]
pub struct TelemetrySession {
    inner: Arc<Inner>,
    sampler: Option<Sampler>,
    server: Option<StatsServer>,
}

impl TelemetrySession {
    /// Starts the session: publishes a synchronous startup sample (the
    /// endpoint is never empty), binds the listener if configured, and
    /// spawns the sampler.
    pub fn start(cfg: TelemetryConfig, metrics: MetricsHandle) -> io::Result<TelemetrySession> {
        let inner = Arc::new(Inner {
            start: Instant::now(),
            gauges: FleetGauges::default(),
            events: cfg.events_path.map(EventLog::new),
            published: RwLock::new(TelemetrySample::default()),
            scrapes: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            peak_bits: AtomicU64::new(0f64.to_bits()),
        });
        sampler::take_sample(&inner, &metrics, &mut VecDeque::new());
        let server = match &cfg.stats_addr {
            Some(addr) => Some(StatsServer::bind(addr, Arc::clone(&inner))?),
            None => None,
        };
        let sampler = Sampler::spawn(
            Arc::clone(&inner),
            metrics,
            cfg.period.max(Duration::from_millis(5)),
        );
        Ok(TelemetrySession {
            inner,
            sampler: Some(sampler),
            server,
        })
    }

    /// A handle for the fleet to thread through its hooks.
    pub fn handle(&self) -> TelemetryHandle {
        TelemetryHandle(Some(Arc::clone(&self.inner)))
    }

    /// The bound scrape address (resolved port), when the listener is
    /// up.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// Takes a final sample, flushes the event stream, stops both
    /// threads, and returns the session accounting.
    pub fn finish(mut self) -> TelemetryFinal {
        if let Some(s) = self.sampler.take() {
            s.stop();
        }
        if let Some(s) = self.server.take() {
            s.stop();
        }
        let final_sample = self.inner.published_sample();
        TelemetryFinal {
            samples: self.inner.samples.load(Ordering::Relaxed),
            scrapes: self.inner.scrapes(),
            events: self.inner.events().map(EventLog::emitted).unwrap_or(0),
            peak_dies_per_sec: final_sample.peak_dies_per_sec,
            p99_window_latency_us: final_sample.window_p99_us,
            final_sample,
        }
    }
}

/// A session dropped without [`TelemetrySession::finish`] (an error
/// unwind or interrupted run) still stops its threads cleanly — and
/// the sampler's final tick flushes the event stream, so the journal
/// keeps everything emitted before the unwind.
impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if let Some(s) = self.sampler.take() {
            s.stop();
        }
        if let Some(s) = self.server.take() {
            s.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_total_no_op() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        h.begin_fleet("mac4", 4, 2);
        h.window_sent();
        h.windows_settled(1);
        h.record_window_latency_us(10);
        h.emit(TelemetryEvent::Retest { die: 0, windows: 1 });
        let _scope = h.session_scope();
        let mut b = h.breaker(0);
        b.set(SessionState::Closed, 0);
        b.set(SessionState::Quarantined, 1);
        assert!(h.gauges().is_none());
    }

    #[test]
    fn breaker_guard_tracks_transitions_and_sticks_quarantine() {
        let dir = std::env::temp_dir().join(format!("aidft-tele-lib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("breaker-events.jsonl");
        let _ = std::fs::remove_file(&events);
        let session = TelemetrySession::start(
            TelemetryConfig {
                events_path: Some(events.clone()),
                period: Duration::from_millis(5),
                ..TelemetryConfig::default()
            },
            MetricsHandle::disabled(),
        )
        .unwrap();
        let h = session.handle();
        let g = h.gauges().unwrap();
        {
            let mut ok = h.breaker(1);
            ok.set(SessionState::Closed, 0); // arm: no event
            assert_eq!(g.state_count(SessionState::Closed), 1);
        }
        assert_eq!(g.state_count(SessionState::Closed), 0);
        {
            let mut bad = h.breaker(2);
            bad.set(SessionState::Closed, 0);
            bad.set(SessionState::Backoff, 1); // event
            bad.set(SessionState::Closed, 1); // event
            bad.set(SessionState::Quarantined, 2); // event, sticky
        }
        assert_eq!(g.state_count(SessionState::Quarantined), 1);
        assert_eq!(g.state_count(SessionState::Closed), 0);
        let fin = session.finish();
        assert_eq!(fin.events, 3);
        let stats = validate_events(&events).unwrap();
        assert_eq!(stats.events, 3);
        std::fs::remove_file(&events).unwrap();
    }

    #[test]
    fn interrupted_session_keeps_its_events() {
        let dir = std::env::temp_dir().join(format!("aidft-tele-lib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("interrupted-events.jsonl");
        let _ = std::fs::remove_file(&events);
        let session = TelemetrySession::start(
            TelemetryConfig {
                events_path: Some(events.clone()),
                // A period far longer than the test: without the
                // explicit flush / final-tick-on-drop, these events
                // would still be buffered when the session dies.
                period: Duration::from_secs(3600),
                ..TelemetryConfig::default()
            },
            MetricsHandle::disabled(),
        )
        .unwrap();
        let h = session.handle();
        h.emit(TelemetryEvent::Retest { die: 1, windows: 2 });
        h.flush_events();
        assert_eq!(read_events(&events).unwrap().len(), 1);

        // Events emitted after the flush survive a drop-without-finish
        // (the cancel/SIGTERM unwind path).
        h.emit(TelemetryEvent::Storage {
            op: "recover",
            damaged: 1,
            replica: 1,
        });
        drop(session);
        let lines = read_events(&events).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"kind\":\"storage\""));
        assert!(lines[1].contains("\"damaged\":1"));
        validate_events(&events).unwrap();
        std::fs::remove_file(&events).unwrap();
    }

    #[test]
    fn session_serves_scrapes_that_roundtrip() {
        let session = TelemetrySession::start(
            TelemetryConfig {
                stats_addr: Some("127.0.0.1:0".into()),
                period: Duration::from_millis(5),
                ..TelemetryConfig::default()
            },
            MetricsHandle::disabled(),
        )
        .unwrap();
        let h = session.handle();
        h.begin_fleet("mac4", 4, 2);
        h.set_dies_done(3);
        h.record_window_latency_us(100);
        h.record_window_latency_us(900);
        let addr = session.stats_addr().unwrap();

        let prom = scrape(addr, "/metrics").unwrap();
        let pairs = parse_prometheus(&prom);
        assert_eq!(pair_value(&pairs, "aidft_fleet_dies"), Some(4.0));
        let json = scrape(addr, "/stats.json").unwrap();
        assert!(json.starts_with("{\"schema\":\"aidft-stats-v1\""));
        assert!(json.contains("\"design\":\"mac4\""));
        assert!(scrape(addr, "/nope").is_err());

        // The sampler publishes the gauge updates within a few ticks.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let pairs = parse_prometheus(&scrape(addr, "/metrics").unwrap());
            if pair_value(&pairs, "aidft_fleet_dies_done") == Some(3.0)
                && pair_value(&pairs, "aidft_window_latency_us_count") == Some(2.0)
            {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never caught up");
            std::thread::sleep(Duration::from_millis(5));
        }
        let fin = session.finish();
        assert!(fin.scrapes >= 3);
        assert!(fin.samples >= 2);
        assert!(fin.p99_window_latency_us > 100.0);
        // Endpoint is down after finish.
        assert!(scrape(addr, "/metrics").is_err());
    }
}
