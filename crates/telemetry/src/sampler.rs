//! The sampler thread: periodic, strictly read-only observation.
//!
//! Every tick the sampler takes a [`dft_metrics::MetricsHandle`]
//! snapshot, deltas it against the oldest capture inside a ~2 s sliding
//! window ([`dft_metrics::MetricsSnapshot::delta`]) to derive rolling
//! dies/sec and signatures/sec, estimates latency quantiles from the
//! gauge histograms, publishes the assembled [`TelemetrySample`] for
//! the stats endpoint, and flushes the event-stream batch. It only ever
//! *reads* fleet state — no fleet thread ever waits on the sampler, so
//! the final `FleetState` is bit-identical with the sampler on or off.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dft_metrics::{histogram_quantile, MetricsHandle, MetricsSnapshot};

use crate::gauges::SessionState;
use crate::sample::TelemetrySample;
use crate::Inner;

/// Sliding window the rolling rates are computed over.
const RATE_WINDOW: Duration = Duration::from_secs(2);

/// Counter names the rate window watches (from the serve registry).
const SIGNATURE_COUNTER: &str = "serve_signatures";

/// History entry: capture time, dies-done gauge, metrics snapshot.
type Capture = (Instant, u64, MetricsSnapshot);

/// Builds one sample from the current gauge + metrics state and
/// publishes it. `history` is the sampler's private sliding window of
/// prior captures; the newest capture is appended before rates are
/// derived, so even the startup sample (empty history) is well-formed
/// with zero rates.
pub(crate) fn take_sample(inner: &Inner, metrics: &MetricsHandle, history: &mut VecDeque<Capture>) {
    let now = Instant::now();
    let snap = metrics.snapshot().unwrap_or(MetricsSnapshot {
        counters: Vec::new(),
        histograms: Vec::new(),
        timers: Vec::new(),
    });
    let g = &inner.gauges;
    let dies_done = g.dies_done();
    history.push_back((now, dies_done, snap.clone()));
    while history.len() > 2 && now.duration_since(history[1].0) >= RATE_WINDOW {
        history.pop_front();
    }

    let (t0, done0, snap0) = history.front().expect("history never empty");
    let dt = now.duration_since(*t0).as_secs_f64();
    let (dies_per_sec, signatures_per_sec) = if history.len() > 1 && dt > 0.0 {
        let window = snap.delta(snap0);
        (
            dies_done.saturating_sub(*done0) as f64 / dt,
            window.counter(SIGNATURE_COUNTER) as f64 / dt,
        )
    } else {
        (0.0, 0.0)
    };
    let peak = inner.update_peak(dies_per_sec);

    let window_buckets = g.window_latency_us.buckets();
    let signature_buckets = g.signature_latency_us.buckets();
    let q = |b: &[u64; dft_metrics::HISTOGRAM_BUCKETS], p: f64| {
        histogram_quantile(b, p).unwrap_or(f64::NAN)
    };

    let sample = TelemetrySample {
        seq: inner.next_sample_seq(),
        uptime_ms: inner.uptime_ms(),
        design: g.design(),
        dies: g.dies_total(),
        dies_done,
        windows_per_die: g.windows_per_die(),
        sessions_active: g.sessions_active(),
        windows_in_flight: g.windows_in_flight(),
        closed: g.state_count(SessionState::Closed),
        backoff: g.state_count(SessionState::Backoff),
        quarantined: g.state_count(SessionState::Quarantined),
        dies_per_sec,
        signatures_per_sec,
        peak_dies_per_sec: peak,
        window_p50_us: q(&window_buckets, 0.50),
        window_p99_us: q(&window_buckets, 0.99),
        signature_p50_us: q(&signature_buckets, 0.50),
        signature_p99_us: q(&signature_buckets, 0.99),
        window_buckets,
        signature_buckets,
        scrapes: inner.scrapes(),
        counters: snap
            .counters
            .iter()
            .map(|(n, v)| ((*n).to_owned(), *v))
            .collect(),
    };
    inner.publish(sample);
}

/// Handle to the running sampler thread; `stop` takes a final sample,
/// flushes the event log, and joins. The inter-tick wait is a condvar
/// timeout, not a plain sleep, so a stop request (fleet done, error
/// unwind, SIGTERM) wakes the thread immediately instead of waiting
/// out the remainder of a tick period.
#[derive(Debug)]
pub(crate) struct Sampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl Sampler {
    pub(crate) fn spawn(inner: Arc<Inner>, metrics: MetricsHandle, period: Duration) -> Sampler {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("aidft-telemetry".into())
            .spawn(move || {
                let mut history: VecDeque<Capture> = VecDeque::new();
                loop {
                    let last = *flag.0.lock().unwrap();
                    take_sample(&inner, &metrics, &mut history);
                    if let Some(log) = inner.events() {
                        log.flush();
                    }
                    if last {
                        break;
                    }
                    let guard = flag.0.lock().unwrap();
                    if !*guard {
                        let _ = flag.1.wait_timeout(guard, period).unwrap();
                    }
                }
            })
            .expect("spawn telemetry sampler");
        Sampler {
            stop,
            thread: Some(thread),
        }
    }

    /// Requests the final tick, wakes the thread if it is mid-wait,
    /// and joins.
    pub(crate) fn stop(mut self) {
        *self.stop.0.lock().unwrap() = true;
        self.stop.1.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
