//! Scrape payloads: one published [`TelemetrySample`] rendered as
//! Prometheus text exposition or stable-ordered JSON.
//!
//! Both renderings are built from the same canonical ordered pair list
//! ([`TelemetrySample::expo_pairs`]), so the two formats can never
//! disagree about a value and the exposition order is deterministic —
//! scraping twice and diffing shows only the numbers that moved. Label
//! values are escaped at pair-construction time (`\\`, `\"`, `\n`), so
//! every pair renders as exactly one line and
//! [`parse_prometheus`]`(`[`TelemetrySample::to_prometheus`]`(s))`
//! round-trips the pair list exactly (f64 `Display` is shortest
//! round-trip in Rust).

use dft_metrics::{bucket_bounds, HISTOGRAM_BUCKETS};

/// Schema id carried by the JSON scrape payload.
pub const STATS_SCHEMA: &str = "aidft-stats-v1";

/// One published snapshot of the live fleet, assembled by the sampler
/// thread and served verbatim by the stats endpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySample {
    /// Sampler tick ordinal (0 is the synchronous startup sample).
    pub seq: u64,
    /// Milliseconds since the telemetry session started.
    pub uptime_ms: u64,
    /// Design name from the fleet gauges.
    pub design: String,
    /// Fleet shape and progress.
    pub dies: u64,
    pub dies_done: u64,
    pub windows_per_die: u64,
    pub sessions_active: u64,
    pub windows_in_flight: u64,
    /// Breaker-state population.
    pub closed: u64,
    pub backoff: u64,
    pub quarantined: u64,
    /// Rolling rates over the sampler's sliding window.
    pub dies_per_sec: f64,
    pub signatures_per_sec: f64,
    pub peak_dies_per_sec: f64,
    /// Latency quantile estimates (microseconds), derived from the log2
    /// bucket histograms below via [`dft_metrics::histogram_quantile`].
    pub window_p50_us: f64,
    pub window_p99_us: f64,
    pub signature_p50_us: f64,
    pub signature_p99_us: f64,
    /// Raw log2 latency buckets (non-cumulative).
    pub window_buckets: [u64; HISTOGRAM_BUCKETS],
    pub signature_buckets: [u64; HISTOGRAM_BUCKETS],
    /// Scrapes served so far.
    pub scrapes: u64,
    /// Full deterministic counter set from the metrics registry,
    /// registration order.
    pub counters: Vec<(String, u64)>,
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n`. Applied when the pair *name* is built, so pairs and rendered
/// lines agree byte-for-byte.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn bucket_pairs(family: &str, buckets: &[u64; HISTOGRAM_BUCKETS], out: &mut Vec<(String, f64)>) {
    let mut cumulative = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        cumulative += count;
        let le = if i == HISTOGRAM_BUCKETS - 1 {
            "+Inf".to_owned()
        } else {
            bucket_bounds(i).1.to_string()
        };
        out.push((format!("{family}_bucket{{le=\"{le}\"}}"), cumulative as f64));
    }
    out.push((format!("{family}_count"), cumulative as f64));
}

impl TelemetrySample {
    /// The canonical ordered (metric-id, value) list behind both scrape
    /// formats. Metric ids include labels; order is fixed, never
    /// hash-dependent.
    pub fn expo_pairs(&self) -> Vec<(String, f64)> {
        let mut p: Vec<(String, f64)> = Vec::with_capacity(64 + self.counters.len());
        p.push((
            format!(
                "aidft_fleet_info{{design=\"{}\"}}",
                escape_label(&self.design)
            ),
            1.0,
        ));
        p.push(("aidft_sample_seq".into(), self.seq as f64));
        p.push(("aidft_uptime_ms".into(), self.uptime_ms as f64));
        p.push(("aidft_fleet_dies".into(), self.dies as f64));
        p.push(("aidft_fleet_dies_done".into(), self.dies_done as f64));
        p.push((
            "aidft_fleet_windows_per_die".into(),
            self.windows_per_die as f64,
        ));
        p.push(("aidft_sessions_active".into(), self.sessions_active as f64));
        p.push((
            "aidft_windows_in_flight".into(),
            self.windows_in_flight as f64,
        ));
        p.push(("aidft_breaker_closed".into(), self.closed as f64));
        p.push(("aidft_breaker_backoff".into(), self.backoff as f64));
        p.push(("aidft_breaker_quarantined".into(), self.quarantined as f64));
        p.push(("aidft_dies_per_sec".into(), self.dies_per_sec));
        p.push(("aidft_signatures_per_sec".into(), self.signatures_per_sec));
        p.push(("aidft_peak_dies_per_sec".into(), self.peak_dies_per_sec));
        p.push(("aidft_window_latency_us_p50".into(), self.window_p50_us));
        p.push(("aidft_window_latency_us_p99".into(), self.window_p99_us));
        p.push((
            "aidft_signature_latency_us_p50".into(),
            self.signature_p50_us,
        ));
        p.push((
            "aidft_signature_latency_us_p99".into(),
            self.signature_p99_us,
        ));
        bucket_pairs("aidft_window_latency_us", &self.window_buckets, &mut p);
        bucket_pairs(
            "aidft_signature_latency_us",
            &self.signature_buckets,
            &mut p,
        );
        p.push(("aidft_scrapes_total".into(), self.scrapes as f64));
        for (name, value) in &self.counters {
            p.push((format!("aidft_{name}_total"), *value as f64));
        }
        p
    }

    /// Prometheus text exposition (format 0.0.4): a short HELP/TYPE
    /// preamble, then one line per [`TelemetrySample::expo_pairs`] pair
    /// in canonical order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP aidft_fleet_info Fleet identity (design label).\n");
        out.push_str("# TYPE aidft_fleet_info gauge\n");
        out.push_str("# HELP aidft_window_latency_us Window round-trip latency, microseconds.\n");
        out.push_str("# TYPE aidft_window_latency_us histogram\n");
        out.push_str(
            "# HELP aidft_signature_latency_us Signature service latency, microseconds.\n",
        );
        out.push_str("# TYPE aidft_signature_latency_us histogram\n");
        for (name, value) in self.expo_pairs() {
            out.push_str(&name);
            out.push(' ');
            out.push_str(&format_value(value));
            out.push('\n');
        }
        out
    }

    /// Stable-ordered JSON scrape payload (`aidft-stats-v1`). Key order
    /// is fixed by construction; no map types are involved. Quantiles
    /// of an empty histogram are `null` here (JSON has no NaN; the
    /// Prometheus exposition renders the same value as `NaN`).
    pub fn to_json(&self) -> String {
        let jv = |v: f64| {
            if v.is_nan() {
                "null".to_owned()
            } else {
                format_value(v)
            }
        };
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"schema\":\"{STATS_SCHEMA}\",\"seq\":{},\"uptime_ms\":{},\"design\":\"{}\",",
            self.seq,
            self.uptime_ms,
            json_escape(&self.design)
        ));
        s.push_str(&format!(
            "\"fleet\":{{\"dies\":{},\"dies_done\":{},\"windows_per_die\":{},\
             \"sessions_active\":{},\"windows_in_flight\":{}}},",
            self.dies,
            self.dies_done,
            self.windows_per_die,
            self.sessions_active,
            self.windows_in_flight
        ));
        s.push_str(&format!(
            "\"breaker\":{{\"closed\":{},\"backoff\":{},\"quarantined\":{}}},",
            self.closed, self.backoff, self.quarantined
        ));
        s.push_str(&format!(
            "\"rates\":{{\"dies_per_sec\":{},\"signatures_per_sec\":{},\"peak_dies_per_sec\":{}}},",
            jv(self.dies_per_sec),
            jv(self.signatures_per_sec),
            jv(self.peak_dies_per_sec)
        ));
        s.push_str(&format!(
            "\"latency_us\":{{\"window_p50\":{},\"window_p99\":{},\
             \"signature_p50\":{},\"signature_p99\":{},",
            jv(self.window_p50_us),
            jv(self.window_p99_us),
            jv(self.signature_p50_us),
            jv(self.signature_p99_us)
        ));
        let join = |b: &[u64; HISTOGRAM_BUCKETS]| {
            b.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        };
        s.push_str(&format!(
            "\"window_buckets\":[{}],\"signature_buckets\":[{}]}},",
            join(&self.window_buckets),
            join(&self.signature_buckets)
        ));
        s.push_str(&format!("\"scrapes\":{},", self.scrapes));
        s.push_str("\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{value}", json_escape(name)));
        }
        s.push_str("}}");
        s
    }
}

/// Renders an f64 the way both scrape formats expect: integral values
/// without a fraction, everything else via shortest-round-trip
/// `Display`. NaN (an empty histogram has no quantile) renders as
/// Prometheus `NaN`.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            _ => out.push(c),
        }
    }
    out
}

/// Parses Prometheus text exposition back into (metric-id, value)
/// pairs, preserving order and skipping comment lines. The inverse of
/// [`TelemetrySample::to_prometheus`] over its own output; also the
/// parser behind `aidft top`.
pub fn parse_prometheus(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            let v = if value == "NaN" {
                f64::NAN
            } else {
                value.parse().ok()?
            };
            Some((name.to_owned(), v))
        })
        .collect()
}

/// Looks up a metric id in a parsed pair list (exact match on the full
/// id, labels included).
pub fn pair_value(pairs: &[(String, f64)], name: &str) -> Option<f64> {
    pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySample {
        let mut s = TelemetrySample {
            seq: 4,
            uptime_ms: 1250,
            design: "mac4".into(),
            dies: 16,
            dies_done: 9,
            windows_per_die: 2,
            sessions_active: 3,
            windows_in_flight: 7,
            closed: 3,
            backoff: 1,
            quarantined: 2,
            dies_per_sec: 12.5,
            signatures_per_sec: 110.25,
            peak_dies_per_sec: 14.0,
            window_p50_us: 80.0,
            window_p99_us: 900.5,
            signature_p50_us: 40.0,
            signature_p99_us: 300.0,
            scrapes: 6,
            counters: vec![
                ("serve_signatures".into(), 123),
                ("serve_retries".into(), 4),
            ],
            ..TelemetrySample::default()
        };
        s.window_buckets[5] = 10;
        s.window_buckets[9] = 2;
        s.signature_buckets[4] = 12;
        s
    }

    #[test]
    fn prometheus_roundtrips_and_orders_stably() {
        let s = sample();
        let text = s.to_prometheus();
        let parsed = parse_prometheus(&text);
        assert_eq!(parsed, s.expo_pairs());
        assert_eq!(pair_value(&parsed, "aidft_fleet_dies_done"), Some(9.0));
        assert_eq!(
            pair_value(&parsed, "aidft_serve_signatures_total"),
            Some(123.0)
        );
        // Cumulative buckets end at the total count.
        assert_eq!(
            pair_value(&parsed, "aidft_window_latency_us_bucket{le=\"+Inf\"}"),
            Some(12.0)
        );
        assert_eq!(
            pair_value(&parsed, "aidft_window_latency_us_count"),
            Some(12.0)
        );
        // Rendering twice is byte-identical (stable order).
        assert_eq!(text, s.to_prometheus());
    }

    #[test]
    fn labels_escape_to_single_lines() {
        let mut s = sample();
        s.design = "we\"ird\\de\nsign".into();
        let text = s.to_prometheus();
        let info = text
            .lines()
            .find(|l| l.starts_with("aidft_fleet_info"))
            .unwrap();
        assert_eq!(
            info,
            "aidft_fleet_info{design=\"we\\\"ird\\\\de\\nsign\"} 1"
        );
        assert_eq!(parse_prometheus(&text), s.expo_pairs());
    }

    #[test]
    fn json_is_stable_ordered_and_schema_tagged() {
        let s = sample();
        let j = s.to_json();
        assert!(j.starts_with("{\"schema\":\"aidft-stats-v1\",\"seq\":4,"));
        assert!(j.contains("\"fleet\":{\"dies\":16,\"dies_done\":9,"));
        assert!(j.contains("\"breaker\":{\"closed\":3,\"backoff\":1,\"quarantined\":2}"));
        assert!(j.contains("\"counters\":{\"serve_signatures\":123,\"serve_retries\":4}"));
        assert_eq!(j, s.to_json());
    }

    #[test]
    fn nan_quantiles_render_as_prometheus_nan() {
        let mut s = sample();
        s.window_p99_us = f64::NAN;
        let parsed = parse_prometheus(&s.to_prometheus());
        assert!(pair_value(&parsed, "aidft_window_latency_us_p99")
            .unwrap()
            .is_nan());
    }
}
