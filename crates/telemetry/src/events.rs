//! The `aidft-telemetry-v1` event stream: an append-only JSONL journal
//! of fleet state transitions.
//!
//! Where the scrape endpoint answers "what does the fleet look like
//! right now", the event stream answers "how did it get there": every
//! breaker transition, quarantine verdict, checkpoint write, retest
//! grant, and chaos injection is one JSON line. Lines are batched in
//! memory and flushed by the sampler tick as framed
//! [`FramedJournal`] records (`ckpt aidft-telemetry-v1 <seq>` … `end
//! <crc>`), so the stream inherits the checkpoint layer's torn-tail
//! discipline: a killed run leaves at worst one damaged record, and
//! [`read_events`] replays everything that survived, oldest-first.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dft_checkpoint::{CkptError, FramedJournal};

use crate::gauges::SessionState;

/// Journal format id for the event stream.
pub const EVENTS_FORMAT: &str = "aidft-telemetry-v1";

/// Event kinds recognised by [`validate_events`], in no particular
/// order. Kept in sync with [`TelemetryEvent::kind`].
pub const EVENT_KINDS: [&str; 6] = [
    "session",
    "quarantine",
    "checkpoint",
    "chaos",
    "retest",
    "storage",
];

/// One fleet state transition, serialised as a single JSON line:
/// `{"v":1,"seq":N,"ms":M,"kind":"...",...}` where `ms` is
/// milliseconds since the telemetry session started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A die's breaker moved between states (attempt is the reconnect
    /// attempt ordinal driving the transition).
    Session {
        die: u32,
        from: SessionState,
        to: SessionState,
        attempt: u64,
    },
    /// The resilience layer issued a quarantine verdict for a die.
    Quarantine {
        die: u32,
        defective: bool,
        attempts: u32,
    },
    /// The server wrote (or failed to write) a fleet checkpoint.
    Checkpoint { seq: u64, bytes: u64, ok: bool },
    /// A chaos fault fired at a named injection site.
    Chaos {
        site: &'static str,
        die: u32,
        ordinal: u64,
    },
    /// A session was granted a retest stream of failing windows.
    Retest { die: u32, windows: u64 },
    /// The storage layer healed a journal load: damaged records were
    /// stepped over and/or the record came from a fallback replica.
    Storage {
        op: &'static str,
        damaged: u64,
        replica: u32,
    },
}

impl TelemetryEvent {
    /// The `kind` discriminator used in the JSON line.
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::Session { .. } => "session",
            TelemetryEvent::Quarantine { .. } => "quarantine",
            TelemetryEvent::Checkpoint { .. } => "checkpoint",
            TelemetryEvent::Chaos { .. } => "chaos",
            TelemetryEvent::Retest { .. } => "retest",
            TelemetryEvent::Storage { .. } => "storage",
        }
    }

    /// Renders the event as one JSON line (no trailing newline), with
    /// keys in stable order.
    pub fn to_json_line(&self, seq: u64, ms: u64) -> String {
        let head = format!(
            "{{\"v\":1,\"seq\":{seq},\"ms\":{ms},\"kind\":\"{}\"",
            self.kind()
        );
        let tail = match self {
            TelemetryEvent::Session {
                die,
                from,
                to,
                attempt,
            } => format!(
                ",\"die\":{die},\"from\":\"{}\",\"to\":\"{}\",\"attempt\":{attempt}}}",
                from.as_str(),
                to.as_str()
            ),
            TelemetryEvent::Quarantine {
                die,
                defective,
                attempts,
            } => format!(",\"die\":{die},\"defective\":{defective},\"attempts\":{attempts}}}"),
            TelemetryEvent::Checkpoint { seq, bytes, ok } => {
                format!(",\"ckpt_seq\":{seq},\"bytes\":{bytes},\"ok\":{ok}}}")
            }
            TelemetryEvent::Chaos { site, die, ordinal } => {
                format!(",\"site\":\"{site}\",\"die\":{die},\"ordinal\":{ordinal}}}")
            }
            TelemetryEvent::Retest { die, windows } => {
                format!(",\"die\":{die},\"windows\":{windows}}}")
            }
            TelemetryEvent::Storage {
                op,
                damaged,
                replica,
            } => format!(",\"op\":\"{op}\",\"damaged\":{damaged},\"replica\":{replica}}}"),
        };
        head + &tail
    }
}

/// The buffered writer behind the event stream. `emit` is cheap (one
/// mutex push, no I/O); the sampler tick calls [`EventLog::flush`] to
/// append the batch as one framed record, keeping file writes off the
/// fleet's hot paths entirely.
#[derive(Debug)]
pub struct EventLog {
    journal: FramedJournal,
    buf: Mutex<Vec<String>>,
    next_seq: AtomicU64,
    next_record: AtomicU64,
    emitted: AtomicU64,
    dropped_writes: AtomicU64,
}

impl EventLog {
    /// An event log journaling to `path` (created on first flush).
    pub fn new(path: impl Into<PathBuf>) -> EventLog {
        EventLog {
            journal: FramedJournal::new(path, EVENTS_FORMAT),
            buf: Mutex::new(Vec::new()),
            next_seq: AtomicU64::new(0),
            next_record: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            dropped_writes: AtomicU64::new(0),
        }
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        self.journal.path()
    }

    /// Total events emitted so far (buffered or flushed).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Queues one event line, stamped `ms` since session start. Seq
    /// allocation happens under the buffer lock so concurrent emitters
    /// can't interleave lines out of seq order within a batch.
    pub(crate) fn emit(&self, event: &TelemetryEvent, ms: u64) {
        let mut buf = self.buf.lock().unwrap();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        buf.push(event.to_json_line(seq, ms));
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends all buffered lines as one framed record. Write failures
    /// are counted, not propagated — telemetry must never abort a fleet
    /// run over a full disk.
    pub(crate) fn flush(&self) {
        let batch: Vec<String> = {
            let mut buf = self.buf.lock().unwrap();
            if buf.is_empty() {
                return;
            }
            std::mem::take(&mut *buf)
        };
        let mut body = batch.join("\n");
        body.push('\n');
        let record = self.next_record.fetch_add(1, Ordering::Relaxed);
        if self.journal.append(record, &body).is_err() {
            self.dropped_writes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Replays every event line that survived in the journal at `path`,
/// oldest-first. Damaged records (torn tails from a kill) are skipped,
/// matching checkpoint recovery semantics.
pub fn read_events(path: &Path) -> Result<Vec<String>, CkptError> {
    let records = FramedJournal::new(path, EVENTS_FORMAT).load_all()?;
    Ok(records
        .into_iter()
        .flat_map(|(_, body)| body.lines().map(str::to_owned).collect::<Vec<_>>())
        .collect())
}

/// Summary of a validated event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventStreamStats {
    /// Event lines recovered.
    pub events: usize,
    /// Quarantine verdict events among them.
    pub quarantines: usize,
}

/// Structural validation of an event stream: every line must carry the
/// v1 envelope, a known `kind`, and strictly increasing `seq`. Returns
/// counts on success, a description of the first bad line otherwise.
pub fn validate_events(path: &Path) -> Result<EventStreamStats, String> {
    let lines = read_events(path).map_err(|e| e.to_string())?;
    let mut last_seq: Option<u64> = None;
    let mut quarantines = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let rest = line
            .strip_prefix("{\"v\":1,\"seq\":")
            .ok_or_else(|| format!("line {i}: missing v1 envelope: {line}"))?;
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        let seq: u64 = digits
            .parse()
            .map_err(|_| format!("line {i}: unparseable seq: {line}"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("line {i}: seq {seq} not above {prev}"));
            }
        }
        last_seq = Some(seq);
        let kind = EVENT_KINDS
            .iter()
            .find(|k| line.contains(&format!("\"kind\":\"{k}\"")))
            .ok_or_else(|| format!("line {i}: unknown event kind: {line}"))?;
        if *kind == "quarantine" {
            quarantines += 1;
        }
    }
    Ok(EventStreamStats {
        events: lines.len(),
        quarantines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aidft-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn event_lines_carry_envelope_and_kind() {
        let ev = TelemetryEvent::Session {
            die: 3,
            from: SessionState::Closed,
            to: SessionState::Backoff,
            attempt: 1,
        };
        assert_eq!(
            ev.to_json_line(7, 120),
            "{\"v\":1,\"seq\":7,\"ms\":120,\"kind\":\"session\",\"die\":3,\
             \"from\":\"closed\",\"to\":\"backoff\",\"attempt\":1}"
        );
        let ev = TelemetryEvent::Checkpoint {
            seq: 2,
            bytes: 512,
            ok: true,
        };
        assert!(ev.to_json_line(0, 0).contains("\"ckpt_seq\":2"));
    }

    #[test]
    fn log_batches_flushes_and_replays() {
        let log = EventLog::new(temp("events.jsonl"));
        log.emit(
            &TelemetryEvent::Quarantine {
                die: 9,
                defective: true,
                attempts: 3,
            },
            5,
        );
        log.emit(&TelemetryEvent::Retest { die: 2, windows: 4 }, 6);
        log.flush();
        log.emit(
            &TelemetryEvent::Chaos {
                site: "drop-conn",
                die: 1,
                ordinal: 42,
            },
            9,
        );
        log.flush();
        log.flush(); // empty buffer: no extra record
        assert_eq!(log.emitted(), 3);

        let lines = read_events(log.path()).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"quarantine\""));
        assert!(lines[2].contains("\"site\":\"drop-conn\""));
        let stats = validate_events(log.path()).unwrap();
        assert_eq!(
            stats,
            EventStreamStats {
                events: 3,
                quarantines: 1
            }
        );
        std::fs::remove_file(log.path()).unwrap();
    }

    #[test]
    fn validation_rejects_seq_regressions() {
        let path = temp("bad-events.jsonl");
        let j = FramedJournal::new(&path, EVENTS_FORMAT);
        j.append(
            0,
            "{\"v\":1,\"seq\":1,\"ms\":0,\"kind\":\"retest\",\"die\":0,\"windows\":1}\n",
        )
        .unwrap();
        j.append(
            1,
            "{\"v\":1,\"seq\":1,\"ms\":1,\"kind\":\"retest\",\"die\":0,\"windows\":1}\n",
        )
        .unwrap();
        let err = validate_events(&path).unwrap_err();
        assert!(err.contains("not above"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
