//! Property tests for the scrape exposition: for *any* sample — hostile
//! design names included — the Prometheus rendering is stable-ordered,
//! single-line-per-pair, correctly escaped, and parses back to exactly
//! the canonical pair list.
//!
//! The vendored mini-proptest has no string or collection strategies,
//! so each case draws a seed and a hostile design name, and the sample
//! fields are expanded from the seed with SplitMix64 in plain code.

use dft_metrics::HISTOGRAM_BUCKETS;
use dft_telemetry::{pair_value, parse_prometheus, TelemetrySample, STATS_SCHEMA};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sample_from_seed(seed: u64, design: &str) -> TelemetrySample {
    let mut st = seed;
    let mut int = |m: u64| splitmix64(&mut st) % m;
    let mut s = TelemetrySample {
        design: design.to_owned(),
        seq: int(1 << 32),
        uptime_ms: int(1 << 40),
        dies: int(100_000),
        dies_done: int(100_000),
        windows_per_die: int(1 << 20),
        sessions_active: int(4096),
        windows_in_flight: int(1 << 20),
        closed: int(4096),
        backoff: int(4096),
        quarantined: int(4096),
        scrapes: int(1 << 30),
        ..TelemetrySample::default()
    };
    let mut f = |m: f64| (splitmix64(&mut st) % (1 << 40)) as f64 / 1024.0 % m;
    s.dies_per_sec = f(1e6);
    s.signatures_per_sec = f(1e7);
    s.peak_dies_per_sec = f(1e6);
    s.window_p50_us = f(1e6);
    s.window_p99_us = f(1e6);
    s.signature_p50_us = f(1e6);
    s.signature_p99_us = f(1e6);
    for i in 0..HISTOGRAM_BUCKETS {
        s.window_buckets[i] = splitmix64(&mut st) % 10_000;
        s.signature_buckets[i] = splitmix64(&mut st) % 10_000;
    }
    let names = [
        "serve_signatures",
        "serve_windows",
        "serve_retries",
        "atpg_patterns",
    ];
    let n = (splitmix64(&mut st) % (names.len() as u64 + 1)) as usize;
    s.counters = names[..n]
        .iter()
        .map(|name| ((*name).to_owned(), splitmix64(&mut st) >> 1))
        .collect();
    s
}

proptest! {
    #[test]
    fn prometheus_exposition_roundtrips_and_is_stable(
        seed in 0u64..u64::MAX,
        design in proptest::select(vec![
            "mac4",
            "",
            "plain-design_v2",
            "quo\"ted",
            "back\\slash",
            "new\nline",
            "evil } label{x=\"1\"} 9",
            "mix\\\"ed\ncase\\",
            "π-design 设计",
        ]),
    ) {
        let s = sample_from_seed(seed, design);
        let text = s.to_prometheus();
        // Stable order: rendering twice is byte-identical.
        prop_assert_eq!(&text, &s.to_prometheus());
        // Escaping holds: every pair renders as exactly one line, so
        // line count is comments + pairs even with newlines in labels.
        let pairs = s.expo_pairs();
        let lines = text.lines().count();
        let comments = text.lines().filter(|l| l.starts_with('#')).count();
        prop_assert_eq!(lines, comments + pairs.len());
        // Parse round-trip: names identical, values identical bits
        // (all values finite here, so equality is exact).
        let parsed = parse_prometheus(&text);
        prop_assert_eq!(parsed.len(), pairs.len());
        for ((pn, pv), (n, v)) in parsed.iter().zip(pairs.iter()) {
            prop_assert_eq!(pn, n);
            prop_assert_eq!(pv.to_bits(), v.to_bits());
        }
        // The info line survives hostile design names.
        prop_assert_eq!(pair_value(&parsed, &pairs[0].0), Some(1.0));
        // JSON side: stable, schema-tagged, and also single-line safe.
        let json = s.to_json();
        prop_assert!(json.starts_with(&format!("{{\"schema\":\"{STATS_SCHEMA}\"")));
        prop_assert_eq!(&json, &s.to_json());
        prop_assert!(!json.contains('\n'));
    }
}
