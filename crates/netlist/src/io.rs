//! ISCAS-89 style `.bench` reader and writer.
//!
//! The `.bench` format is the lingua franca of academic test generation:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! G17 = NOT(G10)
//! G8 = DFF(G17)
//! ```
//!
//! We additionally accept `BUF`/`BUFF`, `MUX`, `CONST0`, `CONST1`.

use std::collections::HashMap;
use std::path::Path;

use crate::{GateId, GateKind, Netlist, NetlistError};

/// Reads and parses a `.bench` netlist from `path`. The design name is
/// the file stem (`designs/mac4.bench` → `mac4`).
///
/// # Errors
///
/// Returns [`NetlistError::Io`] (carrying the path and the rendered
/// cause) when the file cannot be opened or read, or any
/// [`parse_bench`] error for malformed content.
pub fn load_bench(path: impl AsRef<Path>) -> Result<Netlist, NetlistError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| NetlistError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    parse_bench(name, &text)
}

/// Parses a netlist from `.bench` text.
///
/// Gate definitions may appear in any order; forward references are
/// resolved in a second pass.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownGateType`] for unsupported gate types, and
/// [`NetlistError::UndefinedNet`] if a referenced net is never defined.
pub fn parse_bench(name: &str, text: &str) -> Result<Netlist, NetlistError> {
    enum Def {
        Input,
        Gate(GateKind, Vec<String>),
    }
    let mut defs: Vec<(String, Def)> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lno = lineno + 1;
        let parse_call = |s: &str| -> Result<(String, Vec<String>), NetlistError> {
            let open = s.find('(').ok_or(NetlistError::Parse {
                line: lno,
                message: "missing `(`".into(),
            })?;
            let close = s.rfind(')').ok_or(NetlistError::Parse {
                line: lno,
                message: "missing `)`".into(),
            })?;
            let func = s[..open].trim().to_uppercase();
            let args = s[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect();
            Ok((func, args))
        };

        if let Some(rest) = line
            .strip_prefix("INPUT")
            .filter(|r| r.trim_start().starts_with('('))
        {
            let (_, args) = parse_call(&format!("INPUT{rest}"))?;
            for a in args {
                defs.push((a, Def::Input));
            }
        } else if let Some(rest) = line
            .strip_prefix("OUTPUT")
            .filter(|r| r.trim_start().starts_with('('))
        {
            let (_, args) = parse_call(&format!("OUTPUT{rest}"))?;
            outputs.extend(args);
        } else if let Some(eq) = line.find('=') {
            let lhs = line[..eq].trim().to_owned();
            let (func, args) = parse_call(line[eq + 1..].trim())?;
            let kind = match func.as_str() {
                "AND" => GateKind::And,
                "NAND" => GateKind::Nand,
                "OR" => GateKind::Or,
                "NOR" => GateKind::Nor,
                "XOR" => GateKind::Xor,
                "XNOR" => GateKind::Xnor,
                "NOT" | "INV" => GateKind::Not,
                "BUF" | "BUFF" => GateKind::Buf,
                "MUX" => GateKind::Mux2,
                "DFF" => GateKind::Dff,
                "CONST0" => GateKind::Const0,
                "CONST1" => GateKind::Const1,
                other => {
                    return Err(NetlistError::UnknownGateType {
                        line: lno,
                        name: other.to_owned(),
                    })
                }
            };
            defs.push((lhs, Def::Gate(kind, args)));
        } else {
            return Err(NetlistError::Parse {
                line: lno,
                message: format!("unrecognized line `{line}`"),
            });
        }
    }

    // Pass 1: create all gates with placeholder fanins resolved in pass 2.
    // To keep ids topological where possible we create inputs first, then
    // iterate definitions repeatedly until all are placed (handles forward
    // references without recursion).
    let mut nl = Netlist::new(name);
    let mut placed: HashMap<String, GateId> = HashMap::new();
    for (net, def) in &defs {
        if let Def::Input = def {
            if placed.contains_key(net) {
                return Err(NetlistError::DuplicateName(net.clone()));
            }
            placed.insert(net.clone(), nl.add_input(net));
        }
    }
    // DFFs next: their Q net is a source, so other gates may reference it
    // before its D driver exists. Temporarily wire D to a const; fix later.
    let mut dff_fixups: Vec<(GateId, String)> = Vec::new();
    let tmp_const = nl.add_gate(GateKind::Const0, vec![], "__bench_tmp0");
    for (net, def) in &defs {
        if let Def::Gate(GateKind::Dff, args) = def {
            if args.len() != 1 {
                return Err(NetlistError::BadArity {
                    kind: "DFF",
                    expected: 1,
                    got: args.len(),
                });
            }
            if placed.contains_key(net) {
                return Err(NetlistError::DuplicateName(net.clone()));
            }
            let q = nl.add_dff(tmp_const, net);
            placed.insert(net.clone(), q);
            dff_fixups.push((q, args[0].clone()));
        }
    }
    // Remaining combinational gates, iterated until fixpoint.
    let mut remaining: Vec<(String, GateKind, Vec<String>)> = defs
        .into_iter()
        .filter_map(|(net, def)| match def {
            Def::Gate(k, args) if k != GateKind::Dff => Some((net, k, args)),
            _ => None,
        })
        .collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|(net, kind, args)| {
            let fanins: Option<Vec<GateId>> = args.iter().map(|a| placed.get(a).copied()).collect();
            match fanins {
                Some(f) => {
                    if placed.contains_key(net) {
                        return false; // duplicate handled below via validate
                    }
                    match nl.try_add_gate(*kind, f, net) {
                        Ok(id) => {
                            placed.insert(net.clone(), id);
                            false
                        }
                        Err(_) => true,
                    }
                }
                None => true,
            }
        });
        if remaining.len() == before {
            let (net, _, args) = &remaining[0];
            let missing = args
                .iter()
                .find(|a| !placed.contains_key(*a))
                .cloned()
                .unwrap_or_else(|| net.clone());
            return Err(NetlistError::UndefinedNet(missing));
        }
    }
    for (q, dname) in dff_fixups {
        let d = *placed
            .get(&dname)
            .ok_or_else(|| NetlistError::UndefinedNet(dname.clone()))?;
        nl.rewire_fanin(q, 0, d);
    }
    for o in outputs {
        let src = *placed
            .get(&o)
            .ok_or_else(|| NetlistError::UndefinedNet(o.clone()))?;
        nl.add_output(src, &format!("{o}_po"));
    }
    Ok(nl)
}

/// Serializes a netlist to `.bench` text.
///
/// Output markers are written as `OUTPUT(<driver net>)`; their own marker
/// names are not preserved (matching common `.bench` practice).
pub fn write_bench(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", nl.name()));
    for &pi in nl.inputs() {
        out.push_str(&format!("INPUT({})\n", nl.gate(pi).name));
    }
    for &po in nl.outputs() {
        let src = nl.gate(po).fanins[0];
        out.push_str(&format!("OUTPUT({})\n", nl.gate(src).name));
    }
    for (_, g) in nl.iter() {
        match g.kind {
            GateKind::Input | GateKind::Output => continue,
            GateKind::Const0 | GateKind::Const1 => {
                out.push_str(&format!("{} = {}()\n", g.name, g.kind.bench_name()));
            }
            _ => {
                let args: Vec<&str> = g.fanins.iter().map(|&f| nl.gate(f).name.as_str()).collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    g.name,
                    g.kind.bench_name(),
                    args.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = r"
# c17 benchmark
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

    #[test]
    fn parse_c17() {
        let nl = parse_bench("c17", C17).unwrap();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        // 5 PI + 6 NAND + 2 PO markers + 1 temp const = 14
        assert_eq!(nl.num_gates(), 14);
        nl.validate().unwrap();
    }

    #[test]
    fn parse_forward_reference() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(x)\nx = BUF(a)\n";
        let nl = parse_bench("fwd", text).unwrap();
        assert!(nl.find("x").is_some());
        assert!(nl.find("y").is_some());
    }

    #[test]
    fn parse_sequential_with_dff_loop() {
        // Self-feeding toggle: q = DFF(nq); nq = NOT(q)
        let text = "INPUT(en)\nOUTPUT(q)\nq = DFF(nq)\nnq = NOT(q)\n";
        let nl = parse_bench("tog", text).unwrap();
        assert_eq!(nl.num_dffs(), 1);
        let q = nl.find("q").unwrap();
        let nq = nl.find("nq").unwrap();
        assert_eq!(nl.gate(q).fanins, vec![nq]);
        nl.validate().unwrap();
    }

    #[test]
    fn round_trip_preserves_structure() {
        let nl = parse_bench("c17", C17).unwrap();
        let text = write_bench(&nl);
        let nl2 = parse_bench("c17rt", &text).unwrap();
        assert_eq!(nl2.num_inputs(), nl.num_inputs());
        assert_eq!(nl2.num_outputs(), nl.num_outputs());
        // Gate count may differ by the parser's temp const gate only.
        assert!(nl2.num_gates() >= nl.num_gates() - 1);
    }

    #[test]
    fn undefined_net_is_reported() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("bad", text).unwrap_err();
        assert!(matches!(err, NetlistError::UndefinedNet(n) if n == "ghost"));
    }

    #[test]
    fn load_bench_reads_files_and_reports_the_path_on_failure() {
        let dir = std::env::temp_dir().join(format!("aidft-nl-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c17.bench");
        std::fs::write(&path, C17).unwrap();
        let nl = load_bench(&path).unwrap();
        assert_eq!(nl.name(), "c17");
        assert_eq!(nl.num_inputs(), 5);

        let missing = dir.join("ghost.bench");
        let err = load_bench(&missing).unwrap_err();
        match &err {
            NetlistError::Io { path, message } => {
                assert!(path.contains("ghost.bench"), "{path}");
                assert!(!message.is_empty());
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(err.to_string().contains("ghost.bench"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_gate_type_is_reported() {
        let text = "INPUT(a)\ny = FROB(a)\n";
        let err = parse_bench("bad", text).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownGateType { .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nINPUT(a)  # trailing\nOUTPUT(a)\n";
        let nl = parse_bench("c", text).unwrap();
        assert_eq!(nl.num_inputs(), 1);
    }
}
