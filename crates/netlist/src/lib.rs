//! Gate-level netlist intermediate representation for the `aidft` DFT toolkit.
//!
//! This crate is the foundation of the workspace: every other crate (fault
//! modeling, simulation, ATPG, scan, compression, BIST, diagnosis, and the
//! AI-chip substrate) operates on the [`Netlist`] type defined here.
//!
//! # Overview
//!
//! A [`Netlist`] is a flat directed graph of [`Gate`]s. Each gate drives
//! exactly one net (the gate's output), so nets are identified with the
//! [`GateId`] of their driver. Primary inputs, primary outputs and D
//! flip-flops are ordinary gates with dedicated [`GateKind`]s; the full-scan
//! combinational view used by ATPG treats flip-flop outputs as pseudo primary
//! inputs and flip-flop data pins as pseudo primary outputs.
//!
//! # Example
//!
//! ```
//! use dft_netlist::{Netlist, GateKind};
//!
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let sum = nl.add_gate(GateKind::Xor, vec![a, b], "sum");
//! let carry = nl.add_gate(GateKind::And, vec![a, b], "carry");
//! nl.add_output(sum, "sum_po");
//! nl.add_output(carry, "carry_po");
//! assert_eq!(nl.num_gates(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cone;
mod error;
mod gate;
mod io;
mod levelize;
mod logic;
#[allow(clippy::module_inception)]
mod netlist;
mod stats;

pub mod generators;

pub use cone::{fanin_cone, fanout_cone, output_cone_map};
pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind};
pub use io::{load_bench, parse_bench, write_bench};
pub use levelize::Levelization;
pub use logic::Logic;
pub use netlist::Netlist;
pub use stats::{kind_histogram, NetlistStats};
