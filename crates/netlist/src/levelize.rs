//! Topological levelization of the combinational view.

use crate::{GateId, GateKind, Netlist, NetlistError};

/// Topological ordering of a netlist's combinational view.
///
/// Flip-flop Q nets and primary inputs are level 0 sources; every other gate
/// sits one level above its deepest fanin. Flip-flops and constant gates are
/// assigned level 0 (their D-pin cones end at them; the D value is a pseudo
/// primary output read *before* the flop updates).
///
/// The [`Levelization::order`] is the evaluation order used by every
/// simulator in the workspace.
#[derive(Debug, Clone)]
pub struct Levelization {
    levels: Vec<u32>,
    order: Vec<GateId>,
    max_level: u32,
}

impl Levelization {
    /// Computes levels for `nl`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if combinational gates
    /// form a cycle (cycles through flip-flops are fine).
    pub fn compute(nl: &Netlist) -> Result<Levelization, NetlistError> {
        let n = nl.num_gates();
        let mut levels = vec![0u32; n];
        let mut pending = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<GateId> = Vec::with_capacity(n);

        // Sources: gates whose value does not combinationally depend on any
        // other net — inputs, constants, and flip-flop Q outputs.
        for (id, g) in nl.iter() {
            match g.kind {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => {
                    queue.push(id);
                }
                _ => pending[id.index()] = g.fanins.len() as u32,
            }
        }

        let mut head = 0;
        let mut max_level = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            let gate = nl.gate(id);
            // A DFF's combinational influence starts at its Q output, so its
            // fanouts still depend on it; but its own D fanin does NOT gate
            // its readiness (it was enqueued as a source).
            for &fo in &gate.fanouts {
                let fog = nl.gate(fo);
                if matches!(fog.kind, GateKind::Dff) {
                    // The D pin is a sink; the flop itself was already
                    // scheduled as a source. Record its "sink level" lazily.
                    continue;
                }
                let p = &mut pending[fo.index()];
                debug_assert!(*p > 0);
                *p -= 1;
                let lv = levels[id.index()] + 1;
                if lv > levels[fo.index()] {
                    levels[fo.index()] = lv;
                }
                if *p == 0 {
                    max_level = max_level.max(levels[fo.index()]);
                    queue.push(fo);
                }
            }
        }

        // DFFs were scheduled as sources but still need to appear after
        // their D fanin in `order` for simulators that read D pins at the
        // end of a cycle. They already do (sources come first and D-pin
        // values are read from the driver's slot), so nothing extra needed.

        if order.len() != n {
            // Some combinational gate never became ready: a loop.
            let stuck = nl
                .iter()
                .find(|(id, g)| g.kind.is_logic() && pending[id.index()] > 0)
                .map(|(_, g)| g.name.clone())
                .unwrap_or_else(|| "<unknown>".into());
            return Err(NetlistError::CombinationalLoop(stuck));
        }

        Ok(Levelization {
            levels,
            order,
            max_level,
        })
    }

    /// Level of a gate (0 for sources).
    #[inline]
    pub fn level(&self, id: GateId) -> u32 {
        self.levels[id.index()]
    }

    /// Depth of the deepest gate.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Gates in a valid evaluation order (every gate after all its
    /// combinational fanins).
    #[inline]
    pub fn order(&self) -> &[GateId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn levels_of_simple_chain() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(GateKind::Not, vec![a], "n1");
        let n2 = nl.add_gate(GateKind::Not, vec![n1], "n2");
        let po = nl.add_output(n2, "po");
        let lv = Levelization::compute(&nl).unwrap();
        assert_eq!(lv.level(a), 0);
        assert_eq!(lv.level(n1), 1);
        assert_eq!(lv.level(n2), 2);
        assert_eq!(lv.level(po), 3);
        assert_eq!(lv.max_level(), 3);
    }

    #[test]
    fn order_respects_dependencies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(GateKind::And, vec![a, b], "x");
        let y = nl.add_gate(GateKind::Or, vec![x, a], "y");
        nl.add_output(y, "po");
        let lv = Levelization::compute(&nl).unwrap();
        let pos = |id: GateId| lv.order().iter().position(|&g| g == id).unwrap();
        assert!(pos(x) > pos(a) && pos(x) > pos(b));
        assert!(pos(y) > pos(x));
    }

    #[test]
    fn dff_breaks_cycles() {
        // a classic loop through a flop: q = DFF(not(q) & en)
        let mut nl = Netlist::new("seq");
        let en = nl.add_input("en");
        // placeholder input to be rewired
        let tmp = nl.add_input("tmp");
        let inv = nl.add_gate(GateKind::Not, vec![tmp], "inv");
        let and = nl.add_gate(GateKind::And, vec![inv, en], "and");
        let q = nl.add_dff(and, "q");
        nl.rewire_fanin(inv, 0, q);
        let lv = Levelization::compute(&nl).unwrap();
        assert_eq!(lv.level(q), 0);
        assert!(lv.level(and) > lv.level(inv));
    }

    #[test]
    fn combinational_loop_is_detected() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::And, vec![a, a], "g1");
        let g2 = nl.add_gate(GateKind::Or, vec![g1, a], "g2");
        // Create the cycle g1 <- g2.
        nl.rewire_fanin(g1, 1, g2);
        let err = Levelization::compute(&nl).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop(_)));
    }
}
