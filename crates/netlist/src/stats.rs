//! Summary statistics for netlists (used in experiment tables and logs).

use std::fmt;

use crate::{GateKind, Levelization, Netlist};

/// Aggregate statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Design name.
    pub name: String,
    /// Total gate count including I/O markers and flops.
    pub gates: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Combinational logic gates (excludes I/O markers, constants, flops).
    pub logic_gates: usize,
    /// Nets that fan out to more than one reader.
    pub stems: usize,
    /// Depth of the combinational view (0 if levelization failed).
    pub depth: u32,
}

impl NetlistStats {
    /// Computes statistics for `nl`.
    pub fn of(nl: &Netlist) -> NetlistStats {
        let mut logic_gates = 0;
        let mut stems = 0;
        for (_, g) in nl.iter() {
            if g.kind.is_logic() {
                logic_gates += 1;
            }
            if g.is_stem() {
                stems += 1;
            }
        }
        let depth = Levelization::compute(nl)
            .map(|l| l.max_level())
            .unwrap_or(0);
        NetlistStats {
            name: nl.name().to_owned(),
            gates: nl.num_gates(),
            inputs: nl.num_inputs(),
            outputs: nl.num_outputs(),
            dffs: nl.num_dffs(),
            logic_gates,
            stems,
            depth,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} logic, {} PI, {} PO, {} FF), depth {}, {} stems",
            self.name,
            self.gates,
            self.logic_gates,
            self.inputs,
            self.outputs,
            self.dffs,
            self.depth,
            self.stems
        )
    }
}

/// Returns the count of each gate kind, indexed by a `(kind, count)` list
/// sorted by descending count. Handy for experiment table footers.
pub fn kind_histogram(nl: &Netlist) -> Vec<(GateKind, usize)> {
    let mut counts: Vec<(GateKind, usize)> = Vec::new();
    for (_, g) in nl.iter() {
        match counts.iter_mut().find(|(k, _)| *k == g.kind) {
            Some((_, c)) => *c += 1,
            None => counts.push((g.kind, 1)),
        }
    }
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn stats_of_half_adder() {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate(GateKind::Xor, vec![a, b], "s");
        let c = nl.add_gate(GateKind::And, vec![a, b], "c");
        nl.add_output(s, "s_po");
        nl.add_output(c, "c_po");
        let st = NetlistStats::of(&nl);
        assert_eq!(st.gates, 6);
        assert_eq!(st.logic_gates, 2);
        assert_eq!(st.stems, 2); // a and b both branch
        assert_eq!(st.depth, 2);
        assert!(st.to_string().contains("ha"));
    }

    #[test]
    fn histogram_sorted_by_count() {
        let mut nl = Netlist::new("h");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, vec![a, b], "g1");
        let _g2 = nl.add_gate(GateKind::And, vec![g1, b], "g2");
        let h = kind_histogram(&nl);
        assert_eq!(h[0].1, 2);
    }
}
