//! Five-valued logic (Roth's D-calculus) used by ATPG and the event-driven
//! simulator.

use std::fmt;
use std::ops::Not;

use crate::GateKind;

/// A value in Roth's five-valued algebra.
///
/// `D` means "1 in the good machine, 0 in the faulty machine"; `Dbar` is the
/// opposite. `X` is unknown/unassigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic 0 in both machines.
    Zero,
    /// Logic 1 in both machines.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
    /// 1 in the good machine, 0 in the faulty machine.
    D,
    /// 0 in the good machine, 1 in the faulty machine.
    Dbar,
}

impl Logic {
    /// All five values, useful for exhaustive table tests.
    pub const ALL: [Logic; 5] = [Logic::Zero, Logic::One, Logic::X, Logic::D, Logic::Dbar];

    /// Converts a boolean to a known logic value.
    #[inline]
    pub fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// The good-machine component, or `None` for `X`.
    #[inline]
    pub fn good(self) -> Option<bool> {
        match self {
            Logic::Zero | Logic::Dbar => Some(false),
            Logic::One | Logic::D => Some(true),
            Logic::X => None,
        }
    }

    /// The faulty-machine component, or `None` for `X`.
    #[inline]
    pub fn faulty(self) -> Option<bool> {
        match self {
            Logic::Zero | Logic::D => Some(false),
            Logic::One | Logic::Dbar => Some(true),
            Logic::X => None,
        }
    }

    /// Builds a five-valued value from good/faulty components.
    #[inline]
    pub fn from_pair(good: Option<bool>, faulty: Option<bool>) -> Logic {
        match (good, faulty) {
            (Some(false), Some(false)) => Logic::Zero,
            (Some(true), Some(true)) => Logic::One,
            (Some(true), Some(false)) => Logic::D,
            (Some(false), Some(true)) => Logic::Dbar,
            _ => Logic::X,
        }
    }

    /// Returns `true` for `D` or `Dbar` (a propagating fault effect).
    #[inline]
    pub fn is_fault_effect(self) -> bool {
        matches!(self, Logic::D | Logic::Dbar)
    }

    /// Returns `true` for `0` or `1` (fully specified, no fault effect).
    #[inline]
    pub fn is_binary(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// Returns `true` unless the value is `X`.
    #[inline]
    pub fn is_assigned(self) -> bool {
        self != Logic::X
    }

    /// Five-valued AND.
    pub fn and(self, rhs: Logic) -> Logic {
        Logic::from_pair(
            and3(self.good(), rhs.good()),
            and3(self.faulty(), rhs.faulty()),
        )
    }

    /// Five-valued OR.
    pub fn or(self, rhs: Logic) -> Logic {
        Logic::from_pair(
            or3(self.good(), rhs.good()),
            or3(self.faulty(), rhs.faulty()),
        )
    }

    /// Five-valued XOR.
    pub fn xor(self, rhs: Logic) -> Logic {
        Logic::from_pair(
            xor3(self.good(), rhs.good()),
            xor3(self.faulty(), rhs.faulty()),
        )
    }

    /// Evaluates `kind` over five-valued fanin values.
    ///
    /// # Panics
    ///
    /// Panics if called for [`GateKind::Input`] (inputs are sources, not
    /// functions of other nets).
    pub fn eval_gate(kind: GateKind, inputs: &[Logic]) -> Logic {
        match kind {
            GateKind::Input => panic!("eval_gate on Input"),
            GateKind::Const0 => Logic::Zero,
            GateKind::Const1 => Logic::One,
            GateKind::Output | GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().copied().fold(Logic::One, Logic::and),
            GateKind::Nand => !inputs.iter().copied().fold(Logic::One, Logic::and),
            GateKind::Or => inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateKind::Nor => !inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateKind::Xor => inputs.iter().copied().fold(Logic::Zero, Logic::xor),
            GateKind::Xnor => !inputs.iter().copied().fold(Logic::Zero, Logic::xor),
            GateKind::Mux2 => {
                let (s, a, b) = (inputs[0], inputs[1], inputs[2]);
                // out = (!s & a) | (s & b), evaluated in the 5-valued algebra.
                (!s).and(a).or(s.and(b))
            }
        }
    }
}

/// Three-valued AND over `Option<bool>` (None = X).
fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued OR over `Option<bool>` (None = X).
fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued XOR over `Option<bool>` (None = X).
fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x ^ y),
        _ => None,
    }
}

impl Not for Logic {
    type Output = Logic;

    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
            Logic::D => Logic::Dbar,
            Logic::Dbar => Logic::D,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
            Logic::D => "D",
            Logic::Dbar => "D'",
        };
        f.write_str(s)
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Logic {
        Logic::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_is_involution() {
        for v in Logic::ALL {
            assert_eq!(!!v, v);
        }
    }

    #[test]
    fn d_calculus_and_table() {
        use Logic::*;
        assert_eq!(D.and(One), D);
        assert_eq!(D.and(Zero), Zero);
        assert_eq!(D.and(D), D);
        assert_eq!(D.and(Dbar), Zero); // good: 1&0=0, faulty: 0&1=0
        assert_eq!(D.and(X), X); // good: 1&X=X  -> X overall
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(X.and(X), X);
    }

    #[test]
    fn d_calculus_or_table() {
        use Logic::*;
        assert_eq!(D.or(Zero), D);
        assert_eq!(D.or(One), One);
        assert_eq!(D.or(Dbar), One);
        assert_eq!(D.or(D), D);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
    }

    #[test]
    fn d_calculus_xor_table() {
        use Logic::*;
        assert_eq!(D.xor(Zero), D);
        assert_eq!(D.xor(One), Dbar);
        assert_eq!(D.xor(D), Zero);
        assert_eq!(D.xor(Dbar), One);
        assert_eq!(D.xor(X), X);
    }

    #[test]
    fn consistency_with_component_semantics() {
        // The 5-valued algebra is the componentwise 3-valued computation,
        // except that half-known pairs (one component known, the other X)
        // are not representable and conservatively collapse to X.
        fn check(result: Logic, g: Option<bool>, f: Option<bool>) {
            match (g, f) {
                (Some(_), Some(_)) => assert_eq!(result, Logic::from_pair(g, f)),
                _ => assert_eq!(result, Logic::X),
            }
        }
        for a in Logic::ALL {
            for b in Logic::ALL {
                check(
                    a.and(b),
                    and3(a.good(), b.good()),
                    and3(a.faulty(), b.faulty()),
                );
                check(
                    a.or(b),
                    or3(a.good(), b.good()),
                    or3(a.faulty(), b.faulty()),
                );
                check(
                    a.xor(b),
                    xor3(a.good(), b.good()),
                    xor3(a.faulty(), b.faulty()),
                );
            }
        }
    }

    #[test]
    fn eval_gate_mux() {
        use Logic::*;
        assert_eq!(Logic::eval_gate(GateKind::Mux2, &[Zero, D, One]), D);
        assert_eq!(Logic::eval_gate(GateKind::Mux2, &[One, D, One]), One);
        // Unknown select with differing data -> X
        assert_eq!(Logic::eval_gate(GateKind::Mux2, &[X, Zero, One]), X);
        // Unknown select with equal binary data: the gate-level AND/OR
        // expansion is conservative and yields X (a consensus-aware
        // evaluator would yield One; 5-valued ATPG accepts the pessimism).
        assert_eq!(Logic::eval_gate(GateKind::Mux2, &[X, One, One]), X);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Logic::D.to_string(), "D");
        assert_eq!(Logic::Dbar.to_string(), "D'");
        assert_eq!(Logic::X.to_string(), "X");
    }
}
