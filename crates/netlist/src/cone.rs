//! Structural cone analysis (fanin/fanout cones, output reachability).
//!
//! Cones drive ATPG search-space pruning (X-path checks), diagnosis
//! back-tracing, and hierarchical test partitioning.

use crate::{GateId, GateKind, Netlist};

/// Returns the transitive fanin cone of `root` in the combinational view
/// (traversal stops at primary inputs, constants and flip-flop Q nets),
/// including `root` itself. The result is in discovery order.
pub fn fanin_cone(nl: &Netlist, root: GateId) -> Vec<GateId> {
    let mut seen = vec![false; nl.num_gates()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    seen[root.index()] = true;
    while let Some(id) = stack.pop() {
        cone.push(id);
        let g = nl.gate(id);
        // Do not traverse through a flop's D pin: the Q net is a source.
        if matches!(g.kind, GateKind::Dff) && id != root {
            continue;
        }
        for &f in &g.fanins {
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    cone
}

/// Returns the transitive fanout cone of `root` in the combinational view
/// (traversal stops at output markers and flip-flop D pins), including
/// `root` itself. The result is in discovery order.
pub fn fanout_cone(nl: &Netlist, root: GateId) -> Vec<GateId> {
    let mut seen = vec![false; nl.num_gates()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    seen[root.index()] = true;
    while let Some(id) = stack.pop() {
        cone.push(id);
        let g = nl.gate(id);
        if matches!(g.kind, GateKind::Output) {
            continue;
        }
        for &f in &g.fanouts {
            if !seen[f.index()] {
                seen[f.index()] = true;
                // A flop is a sink in the combinational view: include it
                // (its D pin observes the value) but do not go past it.
                if matches!(nl.gate(f).kind, GateKind::Dff) {
                    cone.push(f);
                    continue;
                }
                stack.push(f);
            }
        }
    }
    cone
}

/// For every gate, computes the bitset of combinational sinks (primary
/// outputs then flip-flops, in [`Netlist::combinational_sinks`] order) that
/// the gate can structurally reach. Sink index `i` is bit `i % 64` of word
/// `i / 64`.
///
/// Used by diagnosis to intersect candidate cones and by ATPG for quick
/// observability pruning.
pub fn output_cone_map(nl: &Netlist) -> Vec<Vec<u64>> {
    let sinks = nl.combinational_sinks();
    let words = sinks.len().div_ceil(64);
    let mut map = vec![vec![0u64; words]; nl.num_gates()];
    for (i, &s) in sinks.iter().enumerate() {
        map[s.index()][i / 64] |= 1u64 << (i % 64);
    }
    // Propagate backwards in reverse topological order. A reverse pass over
    // ids is not sufficient in general (ids are creation-ordered, which our
    // builders keep topological, but rewiring may break that), so iterate to
    // fixpoint; netlists are shallow so this converges in few passes.
    // Sink self-bits, used to stop absorption at flop D pins: a driver of a
    // flop's D pin observes only the flop-as-sink, never the flop's Q-side
    // (next-cycle) reachability.
    let self_bits: Vec<Vec<u64>> = map.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for idx in (0..nl.num_gates()).rev() {
            let id = GateId(idx as u32);
            let g = nl.gate(id);
            for &fo in &g.fanouts {
                for w in 0..words {
                    let bits = if matches!(nl.gate(fo).kind, GateKind::Dff) {
                        self_bits[fo.index()][w]
                    } else {
                        map[fo.index()][w]
                    };
                    if map[idx][w] | bits != map[idx][w] {
                        map[idx][w] |= bits;
                        changed = true;
                    }
                }
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn diamond() -> (Netlist, GateId, GateId, GateId, GateId) {
        // a -> inv1 -> and
        //   \-> inv2 --^    and -> po
        let mut nl = Netlist::new("diamond");
        let a = nl.add_input("a");
        let i1 = nl.add_gate(GateKind::Not, vec![a], "i1");
        let i2 = nl.add_gate(GateKind::Not, vec![a], "i2");
        let and = nl.add_gate(GateKind::And, vec![i1, i2], "and");
        nl.add_output(and, "po");
        (nl, a, i1, i2, and)
    }

    #[test]
    fn fanin_cone_collects_reconvergence_once() {
        let (nl, a, i1, i2, and) = diamond();
        let cone = fanin_cone(&nl, and);
        assert_eq!(cone.len(), 4);
        for g in [a, i1, i2, and] {
            assert!(cone.contains(&g));
        }
    }

    #[test]
    fn fanout_cone_reaches_output() {
        let (nl, a, ..) = diamond();
        let cone = fanout_cone(&nl, a);
        let po = nl.find("po").unwrap();
        assert!(cone.contains(&po));
        assert_eq!(cone.len(), 5);
    }

    #[test]
    fn cones_stop_at_dffs() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let inv = nl.add_gate(GateKind::Not, vec![a], "inv");
        let q = nl.add_dff(inv, "q");
        let buf = nl.add_gate(GateKind::Buf, vec![q], "buf");
        let po = nl.add_output(buf, "po");
        // Fanout of `a` must include the flop (as sink) but not cross it.
        let cone = fanout_cone(&nl, a);
        assert!(cone.contains(&q));
        assert!(!cone.contains(&buf));
        // Fanin of `po` must stop at q.
        let cone = fanin_cone(&nl, po);
        assert!(cone.contains(&q));
        assert!(!cone.contains(&inv));
    }

    #[test]
    fn output_cone_map_marks_reachable_sinks() {
        let (nl, a, i1, ..) = diamond();
        let map = output_cone_map(&nl);
        // Only one sink (the PO); everyone reaches it.
        assert_eq!(map[a.index()][0], 1);
        assert_eq!(map[i1.index()][0], 1);
    }

    #[test]
    fn output_cone_map_respects_flop_boundary() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff(a, "q");
        let b = nl.add_gate(GateKind::Buf, vec![q], "b");
        nl.add_output(b, "po");
        let map = output_cone_map(&nl);
        // sinks order: [po, q] -> po is bit 0, q is bit 1.
        assert_eq!(map[a.index()][0], 0b10, "a reaches only the flop sink");
        assert_eq!(map[q.index()][0], 0b11, "q is itself a sink and reaches po");
    }
}
