//! Gate kinds and the [`Gate`] node stored in a [`crate::Netlist`].

use std::fmt;

/// Identifier of a gate (and, equivalently, of the net it drives).
///
/// `GateId`s are dense indices into the netlist's gate table, assigned in
/// creation order. They are stable for the lifetime of the netlist: gates are
/// never removed, only rewired (e.g. by scan insertion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u32);

impl GateId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GateId {
    fn from(v: u32) -> Self {
        GateId(v)
    }
}

/// The function computed by a gate.
///
/// `Input` gates have no fanins. `Output` gates are one-input markers that
/// expose an internal net as a primary output. `Dff` gates have exactly one
/// fanin (the D pin); clocking is implicit because the toolkit uses the
/// standard full-scan combinational test model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// Primary output marker (one fanin; output value equals the fanin).
    Output,
    /// Constant logic 0 (no fanins).
    Const0,
    /// Constant logic 1 (no fanins).
    Const1,
    /// Buffer (one fanin).
    Buf,
    /// Inverter (one fanin).
    Not,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// N-input XOR (odd parity).
    Xor,
    /// N-input XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer; fanins are `[sel, a, b]`, output is `a` when
    /// `sel == 0` and `b` when `sel == 1`.
    Mux2,
    /// D flip-flop (one fanin: the D pin). Output is the Q pin.
    Dff,
}

impl GateKind {
    /// Returns `true` for gate kinds whose output inverts the "controlled"
    /// response (NAND, NOR, XNOR, NOT).
    #[inline]
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Controlling value of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless of
    /// the other inputs (0 for AND/NAND, 1 for OR/NOR). XOR-family gates and
    /// single-input gates have no controlling value.
    #[inline]
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The output produced when a controlling value is present, i.e. the
    /// "controlled response". `None` when the gate has no controlling value.
    #[inline]
    pub fn controlled_response(self) -> Option<bool> {
        match self {
            GateKind::And => Some(false),
            GateKind::Nand => Some(true),
            GateKind::Or => Some(true),
            GateKind::Nor => Some(false),
            _ => None,
        }
    }

    /// Returns `true` if this kind is a state element.
    #[inline]
    pub fn is_dff(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Returns `true` if this kind is combinational logic (not an input,
    /// output marker, constant or flip-flop).
    #[inline]
    pub fn is_logic(self) -> bool {
        !matches!(
            self,
            GateKind::Input
                | GateKind::Output
                | GateKind::Dff
                | GateKind::Const0
                | GateKind::Const1
        )
    }

    /// Number of fanins this kind requires, or `None` for variadic kinds.
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Output | GateKind::Buf | GateKind::Not | GateKind::Dff => Some(1),
            GateKind::Mux2 => Some(3),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => None,
        }
    }

    /// Canonical lowercase name used by the `.bench` writer.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Output => "OUTPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Mux2 => "MUX",
            GateKind::Dff => "DFF",
        }
    }

    /// Evaluates the gate over plain boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty for a variadic kind, or if called on
    /// `Input`/`Const*` kinds (which have no inputs to evaluate — use the
    /// simulator's source handling instead).
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Input => panic!("eval_bool on Input gate"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Output | GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Evaluates the gate over 64 patterns in parallel (one per bit).
    ///
    /// `Input`/`Const*` handling mirrors [`GateKind::eval_bool`].
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Input => panic!("eval_word on Input gate"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Output | GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Mux2 => (!inputs[0] & inputs[1]) | (inputs[0] & inputs[2]),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// A node of the netlist graph: one gate and the single net it drives.
#[derive(Debug, Clone)]
pub struct Gate {
    /// The function this gate computes.
    pub kind: GateKind,
    /// Driver gates of this gate's input pins, in pin order.
    pub fanins: Vec<GateId>,
    /// Gates that read this gate's output. Maintained by [`crate::Netlist`].
    pub fanouts: Vec<GateId>,
    /// Human-readable net name (unique within a netlist).
    pub name: String,
}

impl Gate {
    /// Number of input pins.
    #[inline]
    pub fn num_fanins(&self) -> usize {
        self.fanins.len()
    }

    /// Number of reader gates.
    #[inline]
    pub fn num_fanouts(&self) -> usize {
        self.fanouts.len()
    }

    /// Returns `true` if the net driven by this gate branches (fans out to
    /// more than one reader) — i.e. it is a fanout stem.
    #[inline]
    pub fn is_stem(&self) -> bool {
        self.fanouts.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn controlled_responses_match_truth_tables() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let cv = kind.controlling_value().unwrap();
            let resp = kind.controlled_response().unwrap();
            // With one input at the controlling value the output must be the
            // controlled response regardless of the other input.
            for other in [false, true] {
                assert_eq!(kind.eval_bool(&[cv, other]), resp, "{kind:?}");
                assert_eq!(kind.eval_bool(&[other, cv]), resp, "{kind:?}");
            }
        }
    }

    #[test]
    fn eval_bool_two_input_truth_tables() {
        let cases: [(GateKind, [bool; 4]); 6] = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = (i & 1) != 0;
                let b = (i & 2) != 0;
                assert_eq!(kind.eval_bool(&[a, b]), e, "{kind:?}({a},{b})");
            }
        }
    }

    #[test]
    fn eval_word_matches_eval_bool() {
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for kind in kinds {
            for pat in 0..8u64 {
                let bits = [(pat & 1) != 0, (pat & 2) != 0, (pat & 4) != 0];
                let words = [
                    if bits[0] { !0 } else { 0 },
                    if bits[1] { !0 } else { 0 },
                    if bits[2] { !0 } else { 0 },
                ];
                let wb = kind.eval_word(&words);
                let bb = kind.eval_bool(&bits);
                assert_eq!(wb == !0, bb, "{kind:?} pattern {pat}");
                assert!(wb == 0 || wb == !0);
            }
        }
    }

    #[test]
    fn mux_truth_table() {
        // fanins are [sel, a, b]
        assert!(!GateKind::Mux2.eval_bool(&[false, false, true]));
        assert!(GateKind::Mux2.eval_bool(&[false, true, false]));
        assert!(GateKind::Mux2.eval_bool(&[true, false, true]));
        assert!(!GateKind::Mux2.eval_bool(&[true, true, false]));
        assert_eq!(GateKind::Mux2.eval_word(&[0, 0xff, 0xf0f0]), 0xff);
        assert_eq!(GateKind::Mux2.eval_word(&[!0, 0xff, 0xf0f0]), 0xf0f0);
    }

    #[test]
    fn xor_is_odd_parity_for_wide_gates() {
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, true, true]));
        assert!(GateKind::Xnor.eval_bool(&[true, true, true, true]));
    }

    #[test]
    fn arity_constraints() {
        assert_eq!(GateKind::Input.arity(), Some(0));
        assert_eq!(GateKind::Not.arity(), Some(1));
        assert_eq!(GateKind::Mux2.arity(), Some(3));
        assert_eq!(GateKind::And.arity(), None);
    }

    #[test]
    fn gate_id_display_and_index() {
        let id = GateId(42);
        assert_eq!(id.to_string(), "g42");
        assert_eq!(id.index(), 42);
        assert_eq!(GateId::from(7u32), GateId(7));
    }
}
