//! Fixed benchmark circuits and the standard experiment suite.
//!
//! `c17` and `s27` are the classic ISCAS-85/89 circuits, embedded verbatim;
//! the rest of the suite is produced by the parameterized generators.

use crate::{parse_bench, Netlist};

use super::{
    alu, array_multiplier, barrel_shifter, cla_adder, counter, decoder, mac_pe, mux_tree,
    parity_tree, popcount, random_logic, ripple_adder, shift_register, systolic_array,
    wallace_multiplier, SystolicConfig,
};

/// ISCAS-85 c17 (the smallest standard combinational benchmark).
pub fn c17() -> Netlist {
    parse_bench(
        "c17",
        r"
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
",
    )
    .expect("embedded c17 parses")
}

/// ISCAS-89 s27 (the smallest standard sequential benchmark).
pub fn s27() -> Netlist {
    parse_bench(
        "s27",
        r"
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = OR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
",
    )
    .expect("embedded s27 parses")
}

/// A named circuit in the experiment suite.
#[derive(Debug)]
pub struct NamedCircuit {
    /// Short identifier used in experiment tables.
    pub name: &'static str,
    /// The circuit.
    pub netlist: Netlist,
}

/// The standard circuit suite used by the experiment harness (E1-E3, E5,
/// E8, E11). Mixes random-pattern-friendly (parity, adders) and
/// random-pattern-resistant (decoder, mux tree) blocks plus the AI-chip
/// MAC/systolic structures the tutorial focuses on.
pub fn benchmark_suite() -> Vec<NamedCircuit> {
    vec![
        NamedCircuit {
            name: "c17",
            netlist: c17(),
        },
        NamedCircuit {
            name: "s27",
            netlist: s27(),
        },
        NamedCircuit {
            name: "add8",
            netlist: ripple_adder(8),
        },
        NamedCircuit {
            name: "add32",
            netlist: ripple_adder(32),
        },
        NamedCircuit {
            name: "mult4",
            netlist: array_multiplier(4),
        },
        NamedCircuit {
            name: "mult8",
            netlist: array_multiplier(8),
        },
        NamedCircuit {
            name: "alu8",
            netlist: alu(8),
        },
        NamedCircuit {
            name: "parity16",
            netlist: parity_tree(16),
        },
        NamedCircuit {
            name: "dec5",
            netlist: decoder(5),
        },
        NamedCircuit {
            name: "mux32",
            netlist: mux_tree(5),
        },
        NamedCircuit {
            name: "cnt8",
            netlist: counter(8),
        },
        NamedCircuit {
            name: "sr16",
            netlist: shift_register(16),
        },
        NamedCircuit {
            name: "cla16",
            netlist: cla_adder(16),
        },
        NamedCircuit {
            name: "wal6",
            netlist: wallace_multiplier(6),
        },
        NamedCircuit {
            name: "bsh8",
            netlist: barrel_shifter(8),
        },
        NamedCircuit {
            name: "pop9",
            netlist: popcount(9),
        },
        NamedCircuit {
            name: "rand2k",
            netlist: random_logic(32, 2000, 0xD1CE),
        },
        NamedCircuit {
            name: "mac4",
            netlist: mac_pe(4),
        },
        NamedCircuit {
            name: "mac8",
            netlist: mac_pe(8),
        },
        NamedCircuit {
            name: "sys2x2",
            netlist: systolic_array(SystolicConfig {
                rows: 2,
                cols: 2,
                width: 4,
            }),
        },
        NamedCircuit {
            name: "sys4x4",
            netlist: systolic_array(SystolicConfig {
                rows: 4,
                cols: 4,
                width: 4,
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Levelization, NetlistStats};

    #[test]
    fn c17_shape() {
        let nl = c17();
        assert_eq!(nl.num_inputs(), 5);
        assert_eq!(nl.num_outputs(), 2);
        let st = NetlistStats::of(&nl);
        assert_eq!(st.logic_gates, 6);
    }

    #[test]
    fn s27_shape() {
        let nl = s27();
        assert_eq!(nl.num_inputs(), 4);
        assert_eq!(nl.num_outputs(), 1);
        assert_eq!(nl.num_dffs(), 3);
        nl.validate().unwrap();
        Levelization::compute(&nl).unwrap();
    }

    #[test]
    fn suite_is_complete_and_valid() {
        let suite = benchmark_suite();
        assert!(suite.len() >= 14);
        for c in &suite {
            c.netlist.validate().unwrap_or_else(|e| {
                panic!("{} invalid: {e}", c.name);
            });
            Levelization::compute(&c.netlist)
                .unwrap_or_else(|e| panic!("{} not levelizable: {e}", c.name));
        }
        // Names unique.
        let mut names: Vec<_> = suite.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
