//! Arithmetic building blocks: adders, subtractors, multipliers, ALU,
//! comparator.

use crate::{GateId, GateKind, Netlist};

use super::{input_bus, output_bus, Bus};

/// Inserts a half adder; returns `(sum, carry)`.
pub fn half_adder(nl: &mut Netlist, a: GateId, b: GateId, tag: &str) -> (GateId, GateId) {
    let s = nl.add_gate(GateKind::Xor, vec![a, b], &format!("{tag}_s"));
    let c = nl.add_gate(GateKind::And, vec![a, b], &format!("{tag}_c"));
    (s, c)
}

/// Inserts a full adder; returns `(sum, carry_out)`.
pub fn full_adder(
    nl: &mut Netlist,
    a: GateId,
    b: GateId,
    cin: GateId,
    tag: &str,
) -> (GateId, GateId) {
    let axb = nl.add_gate(GateKind::Xor, vec![a, b], &format!("{tag}_axb"));
    let s = nl.add_gate(GateKind::Xor, vec![axb, cin], &format!("{tag}_s"));
    let t1 = nl.add_gate(GateKind::And, vec![axb, cin], &format!("{tag}_t1"));
    let t2 = nl.add_gate(GateKind::And, vec![a, b], &format!("{tag}_t2"));
    let co = nl.add_gate(GateKind::Or, vec![t1, t2], &format!("{tag}_co"));
    (s, co)
}

/// Inserts a ripple-carry adder over two equal-width buses; returns
/// `(sum_bus, carry_out)`.
///
/// # Panics
///
/// Panics if the buses differ in width or are empty.
pub fn ripple_adder_bus(
    nl: &mut Netlist,
    a: &[GateId],
    b: &[GateId],
    cin: Option<GateId>,
    tag: &str,
) -> (Bus, GateId) {
    assert_eq!(a.len(), b.len(), "adder bus width mismatch");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        let t = format!("{tag}_fa{i}");
        let (s, co) = match carry {
            None => half_adder(nl, ai, bi, &t),
            Some(c) => full_adder(nl, ai, bi, c, &t),
        };
        sum.push(s);
        carry = Some(co);
    }
    (sum, carry.expect("non-empty adder has a carry"))
}

/// Inserts a ripple-borrow subtractor computing `a - b` (two's complement);
/// returns `(diff_bus, borrow_out)` where `borrow_out == 1` iff `a < b`.
pub fn ripple_subtractor_bus(
    nl: &mut Netlist,
    a: &[GateId],
    b: &[GateId],
    tag: &str,
) -> (Bus, GateId) {
    // a - b = a + !b + 1
    let nb: Vec<GateId> = b
        .iter()
        .enumerate()
        .map(|(i, &bi)| nl.add_gate(GateKind::Not, vec![bi], &format!("{tag}_nb{i}")))
        .collect();
    let one = nl.add_gate(GateKind::Const1, vec![], &format!("{tag}_one"));
    let (diff, cout) = ripple_adder_bus(nl, a, &nb, Some(one), tag);
    // carry-out 1 means no borrow; invert to get borrow.
    let borrow = nl.add_gate(GateKind::Not, vec![cout], &format!("{tag}_borrow"));
    (diff, borrow)
}

/// Builds a standalone `width`-bit ripple-carry adder circuit with inputs
/// `a*`, `b*`, `cin` and outputs `s*`, `cout`.
pub fn ripple_adder(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("add{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let cin = nl.add_input("cin");
    let (sum, cout) = ripple_adder_bus(&mut nl, &a, &b, Some(cin), "add");
    output_bus(&mut nl, "s", &sum);
    nl.add_output(cout, "cout");
    nl
}

/// Inserts an unsigned array multiplier over two equal-width buses; returns
/// the `2*width`-bit product bus.
///
/// The structure is the classic partial-product array reduced with
/// ripple-carry rows — dense in AND/XOR logic, which makes it a good ATPG
/// stress block and the core of the MAC PE.
pub fn array_multiplier_bus(nl: &mut Netlist, a: &[GateId], b: &[GateId], tag: &str) -> Bus {
    assert_eq!(a.len(), b.len(), "multiplier bus width mismatch");
    let w = a.len();
    assert!(w >= 1);
    // Partial products pp[j][i] = a[i] & b[j].
    let mut pp: Vec<Vec<GateId>> = Vec::with_capacity(w);
    for (j, &bj) in b.iter().enumerate() {
        let row = a
            .iter()
            .enumerate()
            .map(|(i, &ai)| nl.add_gate(GateKind::And, vec![ai, bj], &format!("{tag}_pp{j}_{i}")))
            .collect();
        pp.push(row);
    }
    // Accumulate rows with ripple adders: acc starts as row 0 extended.
    let mut product: Bus = Vec::with_capacity(2 * w);
    product.push(pp[0][0]);
    let mut acc: Vec<GateId> = pp[0][1..].to_vec(); // w-1 bits, weight 2^1..
    for (j, row) in pp.iter().enumerate().skip(1) {
        // Add row j (weight starts at 2^j) to acc (weight starts at 2^j).
        // acc currently has w-1 bits; row j has w bits.
        let mut sum_bits = Vec::with_capacity(w);
        let mut carry: Option<GateId> = None;
        for (i, &row_bit) in row.iter().enumerate() {
            let t = format!("{tag}_r{j}c{i}");
            let acc_bit = acc.get(i).copied();
            let (s, co) = match (acc_bit, carry) {
                (Some(ab), Some(c)) => full_adder(nl, row_bit, ab, c, &t),
                (Some(ab), None) => half_adder(nl, row_bit, ab, &t),
                (None, Some(c)) => half_adder(nl, row_bit, c, &t),
                (None, None) => {
                    sum_bits.push(row_bit);
                    continue;
                }
            };
            sum_bits.push(s);
            carry = Some(co);
        }
        // Lowest sum bit has weight 2^j and is final.
        product.push(sum_bits[0]);
        acc = sum_bits[1..].to_vec();
        if let Some(c) = carry {
            acc.push(c);
        }
    }
    product.extend(acc);
    // A 1x1 multiplier has only one product bit; pad to the promised 2*w.
    while product.len() < 2 * w {
        product.push(nl.add_gate(
            GateKind::Const0,
            vec![],
            &format!("{tag}_pad{}", product.len()),
        ));
    }
    debug_assert_eq!(product.len(), 2 * w);
    product
}

/// Builds a standalone `width x width` unsigned array multiplier circuit
/// with inputs `a*`, `b*` and outputs `p*` (2*width bits).
pub fn array_multiplier(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("mult{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let p = array_multiplier_bus(&mut nl, &a, &b, "mul");
    output_bus(&mut nl, "p", &p);
    nl
}

/// Builds a `width`-bit ALU with a 2-bit opcode:
/// `00 = AND`, `01 = OR`, `10 = XOR`, `11 = ADD` (carry-out on `cout`).
pub fn alu(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("alu{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let op0 = nl.add_input("op0");
    let op1 = nl.add_input("op1");
    let zero = nl.add_gate(GateKind::Const0, vec![], "zero");
    let (add, cout) = ripple_adder_bus(&mut nl, &a, &b, Some(zero), "alu_add");
    let mut y = Vec::with_capacity(width);
    for i in 0..width {
        let and = nl.add_gate(GateKind::And, vec![a[i], b[i]], &format!("alu_and{i}"));
        let or = nl.add_gate(GateKind::Or, vec![a[i], b[i]], &format!("alu_or{i}"));
        let xor = nl.add_gate(GateKind::Xor, vec![a[i], b[i]], &format!("alu_xor{i}"));
        // Two-level mux: op0 picks within pairs, op1 picks between pairs.
        let lo = nl.add_gate(GateKind::Mux2, vec![op0, and, or], &format!("alu_lo{i}"));
        let hi = nl.add_gate(
            GateKind::Mux2,
            vec![op0, xor, add[i]],
            &format!("alu_hi{i}"),
        );
        let out = nl.add_gate(GateKind::Mux2, vec![op1, lo, hi], &format!("alu_y{i}"));
        y.push(out);
    }
    output_bus(&mut nl, "y", &y);
    nl.add_output(cout, "cout");
    nl
}

/// Builds a `width`-bit unsigned comparator with outputs `eq` and `lt`
/// (`a < b`).
pub fn comparator(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("cmp{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    // eq = AND of per-bit XNOR.
    let xnors: Vec<GateId> = (0..width)
        .map(|i| nl.add_gate(GateKind::Xnor, vec![a[i], b[i]], &format!("eq{i}")))
        .collect();
    let eq = if xnors.len() == 1 {
        xnors[0]
    } else {
        nl.add_gate(GateKind::And, xnors.clone(), "eq_all")
    };
    // lt via subtractor borrow.
    let (_, borrow) = ripple_subtractor_bus(&mut nl, &a, &b, "cmp_sub");
    nl.add_output(eq, "eq");
    nl.add_output(borrow, "lt");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Levelization};

    /// Tiny reference evaluator: computes all gate values for one input
    /// assignment using the levelized order.
    fn eval(nl: &Netlist, assign: &[(GateId, bool)]) -> Vec<bool> {
        let lv = Levelization::compute(nl).unwrap();
        let mut vals = vec![false; nl.num_gates()];
        for &(g, v) in assign {
            vals[g.index()] = v;
        }
        for &id in lv.order() {
            let g = nl.gate(id);
            if matches!(g.kind, GateKind::Input) {
                continue;
            }
            if matches!(g.kind, GateKind::Dff) {
                continue; // combinational tests only
            }
            let ins: Vec<bool> = g.fanins.iter().map(|&f| vals[f.index()]).collect();
            vals[id.index()] = g.kind.eval_bool(&ins);
        }
        vals
    }

    fn bus_value(vals: &[bool], bus: &[GateId]) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0, |acc, (i, &g)| acc | ((vals[g.index()] as u64) << i))
    }

    fn assign_bus(bus: &[GateId], value: u64) -> Vec<(GateId, bool)> {
        bus.iter()
            .enumerate()
            .map(|(i, &g)| (g, (value >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn ripple_adder_exhaustive_4bit() {
        let nl = ripple_adder(4);
        let a: Vec<GateId> = (0..4).map(|i| nl.find(&format!("a{i}")).unwrap()).collect();
        let b: Vec<GateId> = (0..4).map(|i| nl.find(&format!("b{i}")).unwrap()).collect();
        let cin = nl.find("cin").unwrap();
        let s: Vec<GateId> = (0..4)
            .map(|i| {
                let po = nl.find(&format!("s{i}")).unwrap();
                nl.gate(po).fanins[0]
            })
            .collect();
        let cout = nl.gate(nl.find("cout").unwrap()).fanins[0];
        for av in 0..16u64 {
            for bv in 0..16u64 {
                for cv in 0..2u64 {
                    let mut asg = assign_bus(&a, av);
                    asg.extend(assign_bus(&b, bv));
                    asg.push((cin, cv == 1));
                    let vals = eval(&nl, &asg);
                    let got = bus_value(&vals, &s) | ((vals[cout.index()] as u64) << 4);
                    assert_eq!(got, av + bv + cv, "{av}+{bv}+{cv}");
                }
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_4bit() {
        let nl = array_multiplier(4);
        let a: Vec<GateId> = (0..4).map(|i| nl.find(&format!("a{i}")).unwrap()).collect();
        let b: Vec<GateId> = (0..4).map(|i| nl.find(&format!("b{i}")).unwrap()).collect();
        let p: Vec<GateId> = (0..8)
            .map(|i| {
                let po = nl.find(&format!("p{i}")).unwrap();
                nl.gate(po).fanins[0]
            })
            .collect();
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut asg = assign_bus(&a, av);
                asg.extend(assign_bus(&b, bv));
                let vals = eval(&nl, &asg);
                assert_eq!(bus_value(&vals, &p), av * bv, "{av}*{bv}");
            }
        }
    }

    #[test]
    fn subtractor_borrow_semantics() {
        let mut nl = Netlist::new("sub");
        let a = input_bus(&mut nl, "a", 4);
        let b = input_bus(&mut nl, "b", 4);
        let (d, borrow) = ripple_subtractor_bus(&mut nl, &a, &b, "sub");
        output_bus(&mut nl, "d", &d);
        nl.add_output(borrow, "bo");
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut asg = assign_bus(&a, av);
                asg.extend(assign_bus(&b, bv));
                let vals = eval(&nl, &asg);
                let diff = bus_value(&vals, &d);
                assert_eq!(diff, (av.wrapping_sub(bv)) & 0xf, "{av}-{bv}");
                assert_eq!(vals[borrow.index()], av < bv, "borrow {av}<{bv}");
            }
        }
    }

    #[test]
    fn alu_all_ops_8bit_sampled() {
        let nl = alu(8);
        let a: Vec<GateId> = (0..8).map(|i| nl.find(&format!("a{i}")).unwrap()).collect();
        let b: Vec<GateId> = (0..8).map(|i| nl.find(&format!("b{i}")).unwrap()).collect();
        let op0 = nl.find("op0").unwrap();
        let op1 = nl.find("op1").unwrap();
        let y: Vec<GateId> = (0..8)
            .map(|i| nl.gate(nl.find(&format!("y{i}")).unwrap()).fanins[0])
            .collect();
        let samples = [
            (0u64, 0u64),
            (0xff, 0x0f),
            (0xaa, 0x55),
            (0x3c, 0xc3),
            (7, 200),
        ];
        for &(av, bv) in &samples {
            for op in 0..4u64 {
                let mut asg = assign_bus(&a, av);
                asg.extend(assign_bus(&b, bv));
                asg.push((op0, op & 1 == 1));
                asg.push((op1, op & 2 == 2));
                let vals = eval(&nl, &asg);
                let got = bus_value(&vals, &y);
                let expect = match op {
                    0 => av & bv,
                    1 => av | bv,
                    2 => av ^ bv,
                    _ => (av + bv) & 0xff,
                };
                assert_eq!(got, expect, "op={op} a={av:#x} b={bv:#x}");
            }
        }
    }

    #[test]
    fn comparator_semantics() {
        let nl = comparator(4);
        let a: Vec<GateId> = (0..4).map(|i| nl.find(&format!("a{i}")).unwrap()).collect();
        let b: Vec<GateId> = (0..4).map(|i| nl.find(&format!("b{i}")).unwrap()).collect();
        let eq = nl.gate(nl.find("eq").unwrap()).fanins[0];
        let lt = nl.gate(nl.find("lt").unwrap()).fanins[0];
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut asg = assign_bus(&a, av);
                asg.extend(assign_bus(&b, bv));
                let vals = eval(&nl, &asg);
                assert_eq!(vals[eq.index()], av == bv);
                assert_eq!(vals[lt.index()], av < bv);
            }
        }
    }
}
