//! Faster arithmetic structures: carry-lookahead, carry-save (Wallace)
//! reduction, barrel shifter, population count.
//!
//! These widen the benchmark mix with the shallow/wide topologies real
//! datapaths use — different ATPG and fault-simulation behaviour than the
//! ripple structures in [`super::arith`] (reconvergence-heavy, more XOR).

use crate::{GateId, GateKind, Netlist};

use super::arith::{full_adder, half_adder};
use super::{input_bus, output_bus, Bus};

/// Builds a `width`-bit carry-lookahead adder (block size 4) with inputs
/// `a*`, `b*`, `cin` and outputs `s*`, `cout`.
pub fn cla_adder(width: usize) -> Netlist {
    assert!(width >= 1);
    let mut nl = Netlist::new(format!("cla{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let cin = nl.add_input("cin");

    // Generate/propagate per bit.
    let g: Vec<GateId> = (0..width)
        .map(|i| nl.add_gate(GateKind::And, vec![a[i], b[i]], &format!("g{i}")))
        .collect();
    let p: Vec<GateId> = (0..width)
        .map(|i| nl.add_gate(GateKind::Xor, vec![a[i], b[i]], &format!("p{i}")))
        .collect();

    // Lookahead carries: c[i+1] = g[i] | p[i]&c[i], expanded per 4-bit
    // block from the block carry-in (two-level AND-OR inside a block).
    let mut carries: Vec<GateId> = Vec::with_capacity(width + 1);
    carries.push(cin);
    for block in 0..width.div_ceil(4) {
        let base = block * 4;
        let cin_b = carries[base];
        let top = (base + 4).min(width);
        for i in base..top {
            // c[i+1] = g[i] | p[i]g[i-1] | ... | p[i..base]cin_b
            let mut terms: Vec<GateId> = Vec::new();
            terms.push(g[i]);
            for j in (base..i).rev() {
                let mut ands: Vec<GateId> = (j + 1..=i).map(|k| p[k]).collect();
                ands.push(g[j]);
                terms.push(nl.add_gate(GateKind::And, ands, &format!("c{}t{}", i + 1, j)));
            }
            let mut ands: Vec<GateId> = (base..=i).map(|k| p[k]).collect();
            ands.push(cin_b);
            terms.push(nl.add_gate(GateKind::And, ands, &format!("c{}tc", i + 1)));
            let c = if terms.len() == 1 {
                terms[0]
            } else {
                nl.add_gate(GateKind::Or, terms, &format!("c{}", i + 1))
            };
            carries.push(c);
        }
    }

    let s: Bus = (0..width)
        .map(|i| nl.add_gate(GateKind::Xor, vec![p[i], carries[i]], &format!("s{i}_g")))
        .collect();
    output_bus(&mut nl, "s", &s);
    nl.add_output(carries[width], "cout");
    nl
}

/// Builds a `width x width` Wallace-tree multiplier (carry-save reduction
/// of the partial products, final ripple adder) with inputs `a*`, `b*`
/// and outputs `q*` (2*width bits).
pub fn wallace_multiplier(width: usize) -> Netlist {
    assert!(width >= 2);
    let mut nl = Netlist::new(format!("wal{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);

    // Column-wise partial-product collection.
    let mut cols: Vec<Vec<GateId>> = vec![Vec::new(); 2 * width];
    for (j, &bj) in b.iter().enumerate() {
        for (i, &ai) in a.iter().enumerate() {
            let pp = nl.add_gate(GateKind::And, vec![ai, bj], &format!("pp{j}_{i}"));
            cols[i + j].push(pp);
        }
    }
    // Carry-save reduction: reduce every column to <= 2 bits with full and
    // half adders, pushing carries to the next column.
    let mut stage = 0usize;
    loop {
        let max = cols.iter().map(|c| c.len()).max().unwrap_or(0);
        if max <= 2 {
            break;
        }
        let mut next: Vec<Vec<GateId>> = vec![Vec::new(); 2 * width];
        for (ci, col) in cols.iter().enumerate() {
            let mut it = col.iter().copied().peekable();
            let mut outs = Vec::new();
            while it.peek().is_some() {
                let x = it.next().unwrap();
                match (it.next(), it.next()) {
                    (Some(y), Some(z)) => {
                        let (s, c) =
                            full_adder(&mut nl, x, y, z, &format!("w{stage}c{ci}f{}", outs.len()));
                        outs.push(s);
                        next[ci + 1].push(c);
                    }
                    (Some(y), None) => {
                        let (s, c) =
                            half_adder(&mut nl, x, y, &format!("w{stage}c{ci}h{}", outs.len()));
                        outs.push(s);
                        next[ci + 1].push(c);
                    }
                    (None, _) => outs.push(x),
                }
            }
            next[ci].extend(outs);
        }
        cols = next;
        stage += 1;
        assert!(stage < 32, "reduction failed to converge");
    }
    // Final carry-propagate addition over the two rows.
    let mut q: Bus = Vec::with_capacity(2 * width);
    let mut carry: Option<GateId> = None;
    for (ci, col) in cols.iter().enumerate() {
        let bits: Vec<GateId> = col.clone();
        let tag = format!("fin{ci}");
        let (s, co) = match (bits.len(), carry) {
            (0, None) => {
                q.push(nl.add_gate(GateKind::Const0, vec![], &format!("{tag}_z")));
                continue;
            }
            (0, Some(c)) => {
                q.push(c);
                carry = None;
                continue;
            }
            (1, None) => {
                q.push(bits[0]);
                continue;
            }
            (1, Some(c)) => half_adder(&mut nl, bits[0], c, &tag),
            (2, None) => half_adder(&mut nl, bits[0], bits[1], &tag),
            (2, Some(c)) => full_adder(&mut nl, bits[0], bits[1], c, &tag),
            _ => unreachable!("column reduced to <= 2"),
        };
        q.push(s);
        carry = Some(co);
    }
    q.truncate(2 * width);
    while q.len() < 2 * width {
        let z = nl.add_gate(GateKind::Const0, vec![], &format!("pad{}", q.len()));
        q.push(z);
    }
    output_bus(&mut nl, "q", &q);
    nl
}

/// Builds a logarithmic barrel shifter (left shift) for `width` a power
/// of two: inputs `d*`, `sh*` (log2(width) bits); outputs `y*`.
pub fn barrel_shifter(width: usize) -> Netlist {
    assert!(width.is_power_of_two() && width >= 2);
    let stages = width.trailing_zeros() as usize;
    let mut nl = Netlist::new(format!("bsh{width}"));
    let d = input_bus(&mut nl, "d", width);
    let sh = input_bus(&mut nl, "sh", stages);
    let zero = nl.add_gate(GateKind::Const0, vec![], "zero");
    let mut cur = d;
    for (s, &sel) in sh.iter().enumerate() {
        let amount = 1usize << s;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let shifted = if i >= amount { cur[i - amount] } else { zero };
            next.push(nl.add_gate(
                GateKind::Mux2,
                vec![sel, cur[i], shifted],
                &format!("st{s}_{i}"),
            ));
        }
        cur = next;
    }
    output_bus(&mut nl, "y", &cur);
    nl
}

/// Builds a `width`-input population-count circuit (adder tree of full
/// adders), outputs `c*` (`ceil(log2(width+1))` bits).
pub fn popcount(width: usize) -> Netlist {
    assert!(width >= 2);
    let mut nl = Netlist::new(format!("pop{width}"));
    let inputs = input_bus(&mut nl, "x", width);
    // Column reduction identical to a Wallace tree with 1-bit inputs.
    let out_bits = (usize::BITS - width.leading_zeros()) as usize;
    let mut cols: Vec<Vec<GateId>> = vec![Vec::new(); out_bits + 1];
    cols[0] = inputs;
    let mut stage = 0;
    loop {
        let max = cols.iter().map(|c| c.len()).max().unwrap_or(0);
        if max <= 1 {
            break;
        }
        let mut next: Vec<Vec<GateId>> = vec![Vec::new(); cols.len() + 1];
        for (ci, col) in cols.iter().enumerate() {
            let mut it = col.iter().copied().peekable();
            while it.peek().is_some() {
                let x = it.next().unwrap();
                match (it.next(), it.next()) {
                    (Some(y), Some(z)) => {
                        let (s, c) = full_adder(
                            &mut nl,
                            x,
                            y,
                            z,
                            &format!("p{stage}c{ci}f{}", next[ci].len()),
                        );
                        next[ci].push(s);
                        next[ci + 1].push(c);
                    }
                    (Some(y), None) => {
                        let (s, c) =
                            half_adder(&mut nl, x, y, &format!("p{stage}c{ci}h{}", next[ci].len()));
                        next[ci].push(s);
                        next[ci + 1].push(c);
                    }
                    (None, _) => next[ci].push(x),
                }
            }
        }
        cols = next;
        stage += 1;
        assert!(stage < 32);
    }
    let bits: Bus = cols
        .iter()
        .take(out_bits)
        .map(|c| {
            c.first().copied().unwrap_or_else(|| {
                nl.add_gate(GateKind::Const0, vec![], &format!("z{}", nl.num_gates()))
            })
        })
        .collect();
    output_bus(&mut nl, "c", &bits);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Levelization;

    fn eval(nl: &Netlist, assign: &[(GateId, bool)]) -> Vec<bool> {
        let lv = Levelization::compute(nl).unwrap();
        let mut vals = vec![false; nl.num_gates()];
        for &(g, v) in assign {
            vals[g.index()] = v;
        }
        for &id in lv.order() {
            let g = nl.gate(id);
            if matches!(g.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let ins: Vec<bool> = g.fanins.iter().map(|&f| vals[f.index()]).collect();
            vals[id.index()] = g.kind.eval_bool(&ins);
        }
        vals
    }

    fn get_bus(nl: &Netlist, vals: &[bool], prefix: &str, width: usize) -> u64 {
        (0..width).fold(0, |acc, i| {
            let po = nl.find(&format!("{prefix}{i}")).unwrap();
            let src = nl.gate(po).fanins[0];
            acc | ((vals[src.index()] as u64) << i)
        })
    }

    fn set_bus(nl: &Netlist, prefix: &str, width: usize, v: u64) -> Vec<(GateId, bool)> {
        (0..width)
            .map(|i| (nl.find(&format!("{prefix}{i}")).unwrap(), (v >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn cla_exhaustive_6bit() {
        let nl = cla_adder(6);
        let cin = nl.find("cin").unwrap();
        for av in 0..64u64 {
            for bv in (0..64u64).step_by(7) {
                for cv in 0..2u64 {
                    let mut asg = set_bus(&nl, "a", 6, av);
                    asg.extend(set_bus(&nl, "b", 6, bv));
                    asg.push((cin, cv == 1));
                    let vals = eval(&nl, &asg);
                    let got = get_bus(&nl, &vals, "s", 6)
                        | ((vals[nl.gate(nl.find("cout").unwrap()).fanins[0].index()] as u64) << 6);
                    assert_eq!(got, av + bv + cv, "{av}+{bv}+{cv}");
                }
            }
        }
    }

    #[test]
    fn cla_is_shallower_than_ripple() {
        let cla = cla_adder(16);
        let ripple = super::super::ripple_adder(16);
        let d_cla = Levelization::compute(&cla).unwrap().max_level();
        let d_rip = Levelization::compute(&ripple).unwrap().max_level();
        assert!(d_cla < d_rip, "cla {d_cla} vs ripple {d_rip}");
    }

    #[test]
    fn wallace_exhaustive_4bit() {
        let nl = wallace_multiplier(4);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let mut asg = set_bus(&nl, "a", 4, av);
                asg.extend(set_bus(&nl, "b", 4, bv));
                let vals = eval(&nl, &asg);
                assert_eq!(get_bus(&nl, &vals, "q", 8), av * bv, "{av}*{bv}");
            }
        }
    }

    #[test]
    fn wallace_matches_array_multiplier_sampled() {
        let w = wallace_multiplier(6);
        let arr = super::super::array_multiplier(6);
        for (av, bv) in [(0u64, 0u64), (63, 63), (21, 42), (7, 56), (33, 18)] {
            let mut asg = set_bus(&w, "a", 6, av);
            asg.extend(set_bus(&w, "b", 6, bv));
            let got_w = get_bus(&w, &eval(&w, &asg), "q", 12);
            let mut asg = set_bus(&arr, "a", 6, av);
            asg.extend(set_bus(&arr, "b", 6, bv));
            let got_a = get_bus(&arr, &eval(&arr, &asg), "p", 12);
            assert_eq!(got_w, got_a);
            assert_eq!(got_w, av * bv);
        }
    }

    #[test]
    fn barrel_shifts_correctly() {
        let nl = barrel_shifter(8);
        for dv in [0b10110001u64, 0xff, 1] {
            for sh in 0..8u64 {
                let mut asg = set_bus(&nl, "d", 8, dv);
                asg.extend(set_bus(&nl, "sh", 3, sh));
                let vals = eval(&nl, &asg);
                assert_eq!(
                    get_bus(&nl, &vals, "y", 8),
                    (dv << sh) & 0xff,
                    "{dv:#b} << {sh}"
                );
            }
        }
    }

    #[test]
    fn popcount_matches_count_ones() {
        let nl = popcount(9);
        for v in 0..512u64 {
            let asg = set_bus(&nl, "x", 9, v);
            let vals = eval(&nl, &asg);
            assert_eq!(get_bus(&nl, &vals, "c", 4), v.count_ones() as u64, "{v:#b}");
        }
    }
}
