//! AI-accelerator substrate: gate-level MAC processing elements and
//! systolic arrays.
//!
//! The tutorial's AI-chip architecture discussion centers on large arrays of
//! identical multiply-accumulate processing elements (PEs). These generators
//! produce the gate-level equivalent: each PE is an output-stationary MAC
//! (product of the incoming operands added into a local accumulator
//! register) with registered operand forwarding, and the array wires PEs in
//! the classic systolic mesh (activations flow east, weights flow south).

use crate::{GateId, GateKind, Netlist};

use super::arith::{array_multiplier_bus, ripple_adder_bus};
use super::{input_bus, output_bus, Bus};

/// Configuration of a systolic MAC array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicConfig {
    /// Number of PE rows (activations enter at the west edge, one bus per
    /// row).
    pub rows: usize,
    /// Number of PE columns (weights enter at the north edge, one bus per
    /// column).
    pub cols: usize,
    /// Operand bit width of each PE.
    pub width: usize,
}

impl Default for SystolicConfig {
    fn default() -> Self {
        SystolicConfig {
            rows: 4,
            cols: 4,
            width: 4,
        }
    }
}

impl SystolicConfig {
    /// Accumulator width: enough for a full product plus log2(K) guard bits
    /// for realistic dot-product depth (we use 4 guard bits).
    pub fn acc_width(&self) -> usize {
        2 * self.width + 4
    }
}

/// Handles to the nets of one inserted PE.
#[derive(Debug, Clone)]
pub struct PeHandles {
    /// Registered copy of the activation operand (east output).
    pub a_out: Bus,
    /// Registered copy of the weight operand (south output).
    pub b_out: Bus,
    /// Accumulator register outputs.
    pub acc: Bus,
}

/// Inserts one MAC PE into `nl`.
///
/// * `a_in`/`b_in` — operand buses (width = `width`).
/// * `clear` — when 1, the accumulator resets to 0 on the next clock.
/// * `acc_width` — accumulator register width (≥ `2 * width`).
pub fn insert_mac_pe(
    nl: &mut Netlist,
    a_in: &[GateId],
    b_in: &[GateId],
    clear: GateId,
    acc_width: usize,
    tag: &str,
) -> PeHandles {
    let w = a_in.len();
    assert_eq!(w, b_in.len());
    assert!(acc_width >= 2 * w);

    // Operand forwarding registers.
    let a_out: Bus = a_in
        .iter()
        .enumerate()
        .map(|(i, &a)| nl.add_dff(a, &format!("{tag}_areg{i}")))
        .collect();
    let b_out: Bus = b_in
        .iter()
        .enumerate()
        .map(|(i, &b)| nl.add_dff(b, &format!("{tag}_breg{i}")))
        .collect();

    // Accumulator registers (D pins rewired after the adder exists).
    let tmp = nl.add_gate(GateKind::Const0, vec![], &format!("{tag}_tmp"));
    let acc: Bus = (0..acc_width)
        .map(|i| nl.add_dff(tmp, &format!("{tag}_acc{i}")))
        .collect();

    // Product of the incoming (unregistered) operands.
    let product = array_multiplier_bus(nl, a_in, b_in, &format!("{tag}_mul"));

    // Zero-extend the product to the accumulator width.
    let zero = nl.add_gate(GateKind::Const0, vec![], &format!("{tag}_zero"));
    let mut product_ext = product;
    while product_ext.len() < acc_width {
        product_ext.push(zero);
    }

    // acc_next = acc + product (carry-out discarded: wrap-around).
    let (sum, _carry) = ripple_adder_bus(nl, &acc, &product_ext, None, &format!("{tag}_accadd"));

    // Clear gating: d = sum & !clear.
    let nclear = nl.add_gate(GateKind::Not, vec![clear], &format!("{tag}_nclr"));
    for (i, (&ff, &s)) in acc.iter().zip(&sum).enumerate() {
        let d = nl.add_gate(GateKind::And, vec![s, nclear], &format!("{tag}_accd{i}"));
        nl.rewire_fanin(ff, 0, d);
    }

    PeHandles { a_out, b_out, acc }
}

/// Builds a standalone single-PE circuit (`width`-bit MAC) with inputs
/// `a*`, `b*`, `clr` and outputs for the forwarded operands and the
/// accumulator.
pub fn mac_pe(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("mac{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let clr = nl.add_input("clr");
    let pe = insert_mac_pe(&mut nl, &a, &b, clr, 2 * width + 4, "pe");
    output_bus(&mut nl, "ao", &pe.a_out);
    output_bus(&mut nl, "bo", &pe.b_out);
    output_bus(&mut nl, "acc", &pe.acc);
    nl
}

/// Builds a `rows x cols` systolic array of `width`-bit MAC PEs.
///
/// Inputs: `a{r}_{i}` activation buses (one per row, west edge),
/// `b{c}_{i}` weight buses (one per column, north edge), and a global
/// `clr`. Outputs: east-edge forwarded activations, south-edge forwarded
/// weights, and every PE's accumulator (named `acc_r{r}c{c}_{i}`).
pub fn systolic_array(cfg: SystolicConfig) -> Netlist {
    let SystolicConfig { rows, cols, width } = cfg;
    assert!(rows >= 1 && cols >= 1 && width >= 1);
    let mut nl = Netlist::new(format!("systolic{rows}x{cols}w{width}"));
    let clr = nl.add_input("clr");
    let a_in: Vec<Bus> = (0..rows)
        .map(|r| input_bus(&mut nl, &format!("a{r}_"), width))
        .collect();
    let b_in: Vec<Bus> = (0..cols)
        .map(|c| input_bus(&mut nl, &format!("b{c}_"), width))
        .collect();

    // Wire the mesh. a flows west->east along rows; b flows north->south
    // along columns.
    let mut a_bus = a_in;
    let mut b_cols = b_in;
    for (r, a_row) in a_bus.iter_mut().enumerate() {
        let mut a_cur = a_row.clone();
        for (c, b_col) in b_cols.iter_mut().enumerate() {
            let pe = insert_mac_pe(
                &mut nl,
                &a_cur,
                b_col,
                clr,
                cfg.acc_width(),
                &format!("pe_r{r}c{c}"),
            );
            output_bus(&mut nl, &format!("acc_r{r}c{c}_"), &pe.acc);
            a_cur = pe.a_out;
            *b_col = pe.b_out;
        }
        *a_row = a_cur;
        // East edge outputs for the last column.
        output_bus(&mut nl, &format!("aout{r}_"), a_row);
    }
    for (c, b) in b_cols.iter().enumerate() {
        output_bus(&mut nl, &format!("bout{c}_"), b);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Levelization, NetlistStats};

    /// Clock-accurate interpreter for sequential netlists (test helper).
    struct SeqSim<'a> {
        nl: &'a Netlist,
        lv: Levelization,
        state: Vec<bool>,
    }

    impl<'a> SeqSim<'a> {
        fn new(nl: &'a Netlist) -> Self {
            let lv = Levelization::compute(nl).unwrap();
            SeqSim {
                nl,
                lv,
                state: vec![false; nl.num_gates()],
            }
        }

        fn set(&mut self, name: &str, v: u64, width: usize) {
            for i in 0..width {
                let g = self.nl.find(&format!("{name}{i}")).unwrap();
                self.state[g.index()] = (v >> i) & 1 == 1;
            }
        }

        fn set1(&mut self, name: &str, v: bool) {
            let g = self.nl.find(name).unwrap();
            self.state[g.index()] = v;
        }

        fn settle_and_clock(&mut self) {
            let mut vals = self.state.clone();
            for &id in self.lv.order() {
                let g = self.nl.gate(id);
                if matches!(g.kind, GateKind::Input | GateKind::Dff) {
                    continue;
                }
                let ins: Vec<bool> = g.fanins.iter().map(|&f| vals[f.index()]).collect();
                vals[id.index()] = g.kind.eval_bool(&ins);
            }
            for &ff in self.nl.dffs() {
                let d = self.nl.gate(ff).fanins[0];
                self.state[ff.index()] = vals[d.index()];
            }
        }

        fn get(&self, name: &str, width: usize) -> u64 {
            (0..width).fold(0, |acc, i| {
                let g = self.nl.find(&format!("{name}{i}")).unwrap();
                acc | ((self.state[g.index()] as u64) << i)
            })
        }
    }

    #[test]
    fn mac_pe_accumulates_products() {
        let nl = mac_pe(4);
        let mut sim = SeqSim::new(&nl);
        // Clear first.
        sim.set1("clr", true);
        sim.settle_and_clock();
        sim.set1("clr", false);
        let pairs = [(3u64, 5u64), (7, 7), (15, 15), (1, 0)];
        let mut expect = 0u64;
        for (a, b) in pairs {
            sim.set("a", a, 4);
            sim.set("b", b, 4);
            sim.settle_and_clock();
            expect += a * b;
            assert_eq!(sim.get("pe_acc", 12), expect & 0xfff, "after {a}*{b}");
        }
    }

    #[test]
    fn mac_pe_forwards_operands_with_one_cycle_delay() {
        let nl = mac_pe(4);
        let mut sim = SeqSim::new(&nl);
        sim.set("a", 9, 4);
        sim.set("b", 6, 4);
        sim.settle_and_clock();
        assert_eq!(sim.get("pe_areg", 4), 9);
        assert_eq!(sim.get("pe_breg", 4), 6);
    }

    #[test]
    fn mac_pe_clear_resets_accumulator() {
        let nl = mac_pe(4);
        let mut sim = SeqSim::new(&nl);
        sim.set("a", 5, 4);
        sim.set("b", 5, 4);
        sim.settle_and_clock();
        assert_ne!(sim.get("pe_acc", 12), 0);
        sim.set1("clr", true);
        sim.settle_and_clock();
        assert_eq!(sim.get("pe_acc", 12), 0);
    }

    #[test]
    fn systolic_2x2_computes_outer_product_sums() {
        // Feed constant a and b for several cycles with clr released; PE
        // (r,c) sees a row-r activations delayed by c cycles and column-c
        // weights delayed by r cycles. With constant inputs the steady
        // state accumulates a[r]*b[c] per cycle once the wavefront arrives.
        let cfg = SystolicConfig {
            rows: 2,
            cols: 2,
            width: 4,
        };
        let nl = systolic_array(cfg);
        let mut sim = SeqSim::new(&nl);
        sim.set1("clr", true);
        sim.settle_and_clock();
        sim.set1("clr", false);
        sim.set("a0_", 2, 4);
        sim.set("a1_", 3, 4);
        sim.set("b0_", 4, 4);
        sim.set("b1_", 5, 4);
        for _ in 0..6 {
            sim.settle_and_clock();
        }
        let acc_w = cfg.acc_width();
        // PE(0,0) saw 6 full cycles of 2*4.
        assert_eq!(sim.get("pe_r0c0_acc", acc_w), 6 * 2 * 4);
        // PE(0,1): a delayed 1 cycle -> 5 cycles of 2*5.
        assert_eq!(sim.get("pe_r0c1_acc", acc_w), 5 * 2 * 5);
        // PE(1,0): b delayed 1 cycle -> 5 cycles of 3*4.
        assert_eq!(sim.get("pe_r1c0_acc", acc_w), 5 * 3 * 4);
        // PE(1,1): a arrives via PE(1,0)'s forwarding register and b via
        // PE(0,1)'s — both one cycle late, so exactly one accumulation
        // cycle is lost: 5 cycles of 3*5.
        assert_eq!(sim.get("pe_r1c1_acc", acc_w), 5 * 3 * 5);
    }

    #[test]
    fn systolic_array_scales() {
        let nl = systolic_array(SystolicConfig {
            rows: 4,
            cols: 4,
            width: 4,
        });
        let st = NetlistStats::of(&nl);
        assert_eq!(st.name, "systolic4x4w4");
        assert!(
            st.gates > 2000,
            "expected a sizable array, got {}",
            st.gates
        );
        assert_eq!(nl.num_dffs(), 16 * (4 + 4 + 12));
        nl.validate().unwrap();
    }
}
