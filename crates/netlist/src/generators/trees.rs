//! Tree-structured blocks: parity trees, mux trees, decoders, majority.

use crate::{GateId, GateKind, Netlist};

use super::{input_bus, output_bus};

/// Builds a balanced XOR parity tree over `width` inputs with a single
/// output `p`. Parity trees are the canonical *random-pattern-friendly*
/// circuit (every input flip propagates).
pub fn parity_tree(width: usize) -> Netlist {
    assert!(width >= 2, "parity tree needs at least 2 inputs");
    let mut nl = Netlist::new(format!("parity{width}"));
    let mut layer = input_bus(&mut nl, "a", width);
    let mut depth = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (i, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(nl.add_gate(
                    GateKind::Xor,
                    vec![pair[0], pair[1]],
                    &format!("x{depth}_{i}"),
                ));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        depth += 1;
    }
    nl.add_output(layer[0], "p");
    nl
}

/// Builds a `2^sel_bits : 1` multiplexer tree. Inputs: `d0..d{2^n-1}` data
/// and `s0..s{n-1}` select; output `y`.
pub fn mux_tree(sel_bits: usize) -> Netlist {
    assert!((1..=16).contains(&sel_bits));
    let n = 1usize << sel_bits;
    let mut nl = Netlist::new(format!("mux{n}"));
    let data = input_bus(&mut nl, "d", n);
    let sel = input_bus(&mut nl, "s", sel_bits);
    let mut layer = data;
    for (lvl, &s) in sel.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (i, pair) in layer.chunks(2).enumerate() {
            next.push(nl.add_gate(
                GateKind::Mux2,
                vec![s, pair[0], pair[1]],
                &format!("m{lvl}_{i}"),
            ));
        }
        layer = next;
    }
    nl.add_output(layer[0], "y");
    nl
}

/// Builds an `n : 2^n` one-hot decoder with enable. Inputs `a0..a{n-1}`,
/// `en`; outputs `y0..y{2^n-1}`. Decoders are *random-pattern-resistant*:
/// each output needs a specific input combination, so they exercise the
/// deterministic top-off phase of ATPG and test-point insertion in LBIST.
pub fn decoder(n: usize) -> Netlist {
    assert!((1..=12).contains(&n));
    let mut nl = Netlist::new(format!("dec{n}"));
    let a = input_bus(&mut nl, "a", n);
    let en = nl.add_input("en");
    let nots: Vec<GateId> = a
        .iter()
        .enumerate()
        .map(|(i, &ai)| nl.add_gate(GateKind::Not, vec![ai], &format!("na{i}")))
        .collect();
    let mut outs = Vec::with_capacity(1 << n);
    for code in 0..(1usize << n) {
        let mut fanins: Vec<GateId> = (0..n)
            .map(|bit| {
                if (code >> bit) & 1 == 1 {
                    a[bit]
                } else {
                    nots[bit]
                }
            })
            .collect();
        fanins.push(en);
        outs.push(nl.add_gate(GateKind::And, fanins, &format!("y{code}_g")));
    }
    output_bus(&mut nl, "y", &outs);
    nl
}

/// Builds a 3-input majority voter (the TMR cell). Inputs `a,b,c`, output
/// `m`.
pub fn majority() -> Netlist {
    let mut nl = Netlist::new("maj3");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let ab = nl.add_gate(GateKind::And, vec![a, b], "ab");
    let bc = nl.add_gate(GateKind::And, vec![b, c], "bc");
    let ac = nl.add_gate(GateKind::And, vec![a, c], "ac");
    let m = nl.add_gate(GateKind::Or, vec![ab, bc, ac], "m");
    nl.add_output(m, "m_po");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Levelization;

    fn eval_one(nl: &Netlist, assign: &[(GateId, bool)]) -> Vec<bool> {
        let lv = Levelization::compute(nl).unwrap();
        let mut vals = vec![false; nl.num_gates()];
        for &(g, v) in assign {
            vals[g.index()] = v;
        }
        for &id in lv.order() {
            let g = nl.gate(id);
            if matches!(g.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let ins: Vec<bool> = g.fanins.iter().map(|&f| vals[f.index()]).collect();
            vals[id.index()] = g.kind.eval_bool(&ins);
        }
        vals
    }

    #[test]
    fn parity_matches_popcount() {
        let nl = parity_tree(7);
        let a: Vec<GateId> = (0..7).map(|i| nl.find(&format!("a{i}")).unwrap()).collect();
        let p = nl.gate(nl.find("p").unwrap()).fanins[0];
        for v in 0..128u32 {
            let asg: Vec<(GateId, bool)> = a
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, (v >> i) & 1 == 1))
                .collect();
            let vals = eval_one(&nl, &asg);
            assert_eq!(vals[p.index()], v.count_ones() % 2 == 1, "v={v}");
        }
    }

    #[test]
    fn parity_tree_is_logarithmic() {
        let nl = parity_tree(64);
        let lv = Levelization::compute(&nl).unwrap();
        assert!(lv.max_level() <= 8, "depth {}", lv.max_level());
    }

    #[test]
    fn mux_tree_selects_correct_leaf() {
        let nl = mux_tree(3);
        let d: Vec<GateId> = (0..8).map(|i| nl.find(&format!("d{i}")).unwrap()).collect();
        let s: Vec<GateId> = (0..3).map(|i| nl.find(&format!("s{i}")).unwrap()).collect();
        let y = nl.gate(nl.find("y").unwrap()).fanins[0];
        for sel in 0..8usize {
            for hot in 0..8usize {
                let mut asg: Vec<(GateId, bool)> =
                    d.iter().enumerate().map(|(i, &g)| (g, i == hot)).collect();
                asg.extend(s.iter().enumerate().map(|(i, &g)| (g, (sel >> i) & 1 == 1)));
                let vals = eval_one(&nl, &asg);
                assert_eq!(vals[y.index()], sel == hot, "sel={sel} hot={hot}");
            }
        }
    }

    #[test]
    fn decoder_is_one_hot() {
        let nl = decoder(3);
        let a: Vec<GateId> = (0..3).map(|i| nl.find(&format!("a{i}")).unwrap()).collect();
        let en = nl.find("en").unwrap();
        let y: Vec<GateId> = (0..8)
            .map(|i| nl.gate(nl.find(&format!("y{i}")).unwrap()).fanins[0])
            .collect();
        for code in 0..8usize {
            let mut asg: Vec<(GateId, bool)> = a
                .iter()
                .enumerate()
                .map(|(i, &g)| (g, (code >> i) & 1 == 1))
                .collect();
            asg.push((en, true));
            let vals = eval_one(&nl, &asg);
            for (i, &yi) in y.iter().enumerate() {
                assert_eq!(vals[yi.index()], i == code);
            }
            // Disabled: all outputs low.
            asg.pop();
            asg.push((en, false));
            let vals = eval_one(&nl, &asg);
            assert!(y.iter().all(|&yi| !vals[yi.index()]));
        }
    }

    #[test]
    fn majority_truth_table() {
        let nl = majority();
        let a = nl.find("a").unwrap();
        let b = nl.find("b").unwrap();
        let c = nl.find("c").unwrap();
        let m = nl.gate(nl.find("m_po").unwrap()).fanins[0];
        for v in 0..8u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            let vals = eval_one(&nl, &[(a, bits[0]), (b, bits[1]), (c, bits[2])]);
            let expect = (bits[0] as u8 + bits[1] as u8 + bits[2] as u8) >= 2;
            assert_eq!(vals[m.index()], expect);
        }
    }
}
