//! Sequential blocks: counters and shift registers.
//!
//! These provide flip-flop-rich designs for scan-insertion and
//! transition-fault experiments.

use crate::{GateId, GateKind, Netlist};

use super::output_bus;

/// Builds a `width`-bit synchronous up-counter with enable.
///
/// Inputs: `en`. Outputs: `q0..q{width-1}`. Next state is `q + en`.
pub fn counter(width: usize) -> Netlist {
    assert!(width >= 1);
    let mut nl = Netlist::new(format!("cnt{width}"));
    let en = nl.add_input("en");
    // Create flops first (their D pins are rewired after the increment
    // logic exists — the classic two-phase trick for feedback).
    let tmp = nl.add_gate(GateKind::Const0, vec![], "tmp0");
    let q: Vec<GateId> = (0..width)
        .map(|i| nl.add_dff(tmp, &format!("q{i}")))
        .collect();
    // Incrementer: d[i] = q[i] ^ carry[i], carry[0] = en,
    // carry[i+1] = carry[i] & q[i].
    let mut carry = en;
    for (i, &qi) in q.iter().enumerate() {
        let d = nl.add_gate(GateKind::Xor, vec![qi, carry], &format!("d{i}"));
        nl.rewire_fanin(qi, 0, d);
        if i + 1 < width {
            carry = nl.add_gate(GateKind::And, vec![carry, qi], &format!("c{}", i + 1));
        }
    }
    output_bus(&mut nl, "qo", &q);
    nl
}

/// Builds a serial-in serial-out shift register of `len` stages.
///
/// Inputs: `sin`. Outputs: `sout` plus per-stage taps `t0..`.
pub fn shift_register(len: usize) -> Netlist {
    assert!(len >= 1);
    let mut nl = Netlist::new(format!("sr{len}"));
    let sin = nl.add_input("sin");
    let mut prev = sin;
    let mut taps = Vec::with_capacity(len);
    for i in 0..len {
        let q = nl.add_dff(prev, &format!("r{i}"));
        taps.push(q);
        prev = q;
    }
    nl.add_output(prev, "sout");
    output_bus(&mut nl, "t", &taps);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Levelization;

    #[test]
    fn counter_structure() {
        let nl = counter(8);
        assert_eq!(nl.num_dffs(), 8);
        assert_eq!(nl.num_inputs(), 1);
        assert_eq!(nl.num_outputs(), 8);
        nl.validate().unwrap();
        Levelization::compute(&nl).unwrap();
    }

    /// Cycle-accurate check: simulate the counter for a few clocks using a
    /// naive interpreter and verify it counts.
    #[test]
    fn counter_counts() {
        let nl = counter(4);
        let lv = Levelization::compute(&nl).unwrap();
        let en = nl.find("en").unwrap();
        let q: Vec<GateId> = (0..4).map(|i| nl.find(&format!("q{i}")).unwrap()).collect();
        let mut state = vec![false; nl.num_gates()];
        for clock in 0..20u64 {
            // Combinational settle.
            let mut vals = state.clone();
            vals[en.index()] = true;
            for &id in lv.order() {
                let g = nl.gate(id);
                if matches!(g.kind, GateKind::Input | GateKind::Dff) {
                    continue;
                }
                let ins: Vec<bool> = g.fanins.iter().map(|&f| vals[f.index()]).collect();
                vals[id.index()] = g.kind.eval_bool(&ins);
            }
            let count: u64 = q
                .iter()
                .enumerate()
                .map(|(i, &g)| (state[g.index()] as u64) << i)
                .sum();
            assert_eq!(count, clock % 16, "clock {clock}");
            // Clock edge: Q <= D.
            let mut next = state.clone();
            for &ff in nl.dffs() {
                let d = nl.gate(ff).fanins[0];
                next[ff.index()] = vals[d.index()];
            }
            state = next;
            state[en.index()] = true;
        }
    }

    #[test]
    fn shift_register_chains() {
        let nl = shift_register(16);
        assert_eq!(nl.num_dffs(), 16);
        // Each stage's D is the previous stage's Q.
        let r0 = nl.find("r0").unwrap();
        let r1 = nl.find("r1").unwrap();
        assert_eq!(nl.gate(r1).fanins, vec![r0]);
        nl.validate().unwrap();
    }
}
