//! Seeded random logic generator.
//!
//! Produces a random combinational DAG with controllable size and shape.
//! Used for scale benchmarks and property tests; the same seed always
//! produces the same netlist.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GateId, GateKind, Netlist};

/// Generates a random combinational netlist with `num_inputs` inputs and
/// `num_gates` logic gates (2-4 input AND/NAND/OR/NOR/XOR/XNOR plus
/// inverters). Any net without a reader becomes a primary output, keeping
/// all logic observable.
///
/// # Panics
///
/// Panics if `num_inputs < 2` or `num_gates == 0`.
pub fn random_logic(num_inputs: usize, num_gates: usize, seed: u64) -> Netlist {
    assert!(num_inputs >= 2 && num_gates > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand{num_gates}_s{seed}"));
    let mut nets: Vec<GateId> = (0..num_inputs)
        .map(|i| nl.add_input(&format!("i{i}")))
        .collect();
    // Bias fanin selection towards recent nets so depth grows realistically.
    for g in 0..num_gates {
        let kind = match rng.gen_range(0..10) {
            0 | 1 => GateKind::And,
            2 | 3 => GateKind::Nand,
            4 => GateKind::Or,
            5 => GateKind::Nor,
            6 => GateKind::Xor,
            7 => GateKind::Xnor,
            8 => GateKind::Not,
            _ => GateKind::Nand,
        };
        let nfan = match kind {
            GateKind::Not => 1,
            _ => rng.gen_range(2..=4.min(nets.len())),
        };
        let mut fanins = Vec::with_capacity(nfan);
        for _ in 0..nfan {
            // 70% recent half, 30% anywhere.
            let idx = if rng.gen_bool(0.7) && nets.len() > 1 {
                rng.gen_range(nets.len() / 2..nets.len())
            } else {
                rng.gen_range(0..nets.len())
            };
            fanins.push(nets[idx]);
        }
        fanins.dedup();
        let kind = if fanins.len() == 1 && kind != GateKind::Not {
            GateKind::Buf
        } else {
            kind
        };
        let id = nl.add_gate(kind, fanins, &format!("g{g}"));
        nets.push(id);
    }
    // Expose every dangling net as a primary output.
    let dangling: Vec<GateId> = nl
        .iter()
        .filter(|(_, g)| g.fanouts.is_empty() && !matches!(g.kind, GateKind::Output))
        .map(|(id, _)| id)
        .collect();
    for (i, id) in dangling.into_iter().enumerate() {
        nl.add_output(id, &format!("o{i}"));
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Levelization;

    #[test]
    fn deterministic_for_same_seed() {
        let a = random_logic(16, 200, 42);
        let b = random_logic(16, 200, 42);
        assert_eq!(a.num_gates(), b.num_gates());
        for (ga, gb) in a.iter().zip(b.iter()) {
            assert_eq!(ga.1.kind, gb.1.kind);
            assert_eq!(ga.1.fanins, gb.1.fanins);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_logic(16, 200, 1);
        let b = random_logic(16, 200, 2);
        let same = a
            .iter()
            .zip(b.iter())
            .all(|(ga, gb)| ga.1.kind == gb.1.kind && ga.1.fanins == gb.1.fanins);
        assert!(!same);
    }

    #[test]
    fn generated_netlist_is_acyclic_and_valid() {
        let nl = random_logic(32, 1000, 7);
        nl.validate().unwrap();
        Levelization::compute(&nl).unwrap();
        assert!(nl.num_outputs() > 0, "all logic must be observable");
    }

    #[test]
    fn no_dangling_internal_nets() {
        let nl = random_logic(8, 300, 3);
        for (_, g) in nl.iter() {
            if !matches!(g.kind, crate::GateKind::Output) {
                assert!(!g.fanouts.is_empty(), "net {} dangles", g.name);
            }
        }
    }
}
