//! Parameterized gate-level circuit generators.
//!
//! These replace the proprietary synthesized netlists an industrial DFT flow
//! would consume. Every generator produces a self-contained
//! [`Netlist`](crate::Netlist) whose
//! structure matches the textbook implementation of the block (ripple
//! adders, array multipliers, MAC processing elements, systolic arrays, …),
//! so ATPG/fault-simulation behaviour is representative of real logic.
//!
//! Multi-bit signals are represented as a [`Bus`]: a vector of net ids in
//! little-endian bit order (`bus[0]` is the LSB).

mod arith;
mod arith2;
mod benchmarks;
mod mac;
mod random;
mod sequential;
mod trees;

pub use arith::{
    alu, array_multiplier, array_multiplier_bus, comparator, full_adder, half_adder, ripple_adder,
    ripple_adder_bus, ripple_subtractor_bus,
};
pub use arith2::{barrel_shifter, cla_adder, popcount, wallace_multiplier};
pub use benchmarks::{benchmark_suite, c17, s27, NamedCircuit};
pub use mac::{mac_pe, systolic_array, SystolicConfig};
pub use random::random_logic;
pub use sequential::{counter, shift_register};
pub use trees::{decoder, majority, mux_tree, parity_tree};

use crate::GateId;

/// A multi-bit signal: net ids in little-endian bit order.
pub type Bus = Vec<GateId>;

/// Creates `width` named primary inputs `"{prefix}{i}"` and returns them as
/// a [`Bus`].
pub fn input_bus(nl: &mut crate::Netlist, prefix: &str, width: usize) -> Bus {
    (0..width)
        .map(|i| nl.add_input(&format!("{prefix}{i}")))
        .collect()
}

/// Adds output markers `"{prefix}{i}"` for every bit of `bus`.
pub fn output_bus(nl: &mut crate::Netlist, prefix: &str, bus: &[GateId]) {
    for (i, &b) in bus.iter().enumerate() {
        nl.add_output(b, &format!("{prefix}{i}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    #[test]
    fn input_output_bus_roundtrip() {
        let mut nl = Netlist::new("t");
        let a = input_bus(&mut nl, "a", 4);
        output_bus(&mut nl, "y", &a);
        assert_eq!(nl.num_inputs(), 4);
        assert_eq!(nl.num_outputs(), 4);
        assert_eq!(nl.gate(a[0]).name, "a0");
    }
}
