//! Error type for netlist construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was created with the wrong number of fanins for its kind.
    BadArity {
        /// The offending gate kind name.
        kind: &'static str,
        /// Fanins the kind requires.
        expected: usize,
        /// Fanins provided.
        got: usize,
    },
    /// A net name was used twice.
    DuplicateName(String),
    /// A referenced net name was never defined.
    UndefinedNet(String),
    /// The combinational view contains a cycle through the named gate.
    CombinationalLoop(String),
    /// A `.bench` file line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An unknown gate type name appeared in a `.bench` file.
    UnknownGateType {
        /// 1-based line number.
        line: usize,
        /// The unknown type token.
        name: String,
    },
    /// A `.bench` file could not be opened or read. Carries the path and
    /// the rendered cause (the error type is `Clone + Eq`, so the raw
    /// `io::Error` is flattened to text).
    Io {
        /// The path that failed to open.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity {
                kind,
                expected,
                got,
            } => write!(f, "gate kind {kind} requires {expected} fanins, got {got}"),
            NetlistError::DuplicateName(n) => write!(f, "duplicate net name `{n}`"),
            NetlistError::UndefinedNet(n) => write!(f, "undefined net `{n}`"),
            NetlistError::CombinationalLoop(n) => {
                write!(f, "combinational loop through gate `{n}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UnknownGateType { line, name } => {
                write!(f, "unknown gate type `{name}` at line {line}")
            }
            NetlistError::Io { path, message } => write!(f, "read {path}: {message}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::BadArity {
            kind: "NOT",
            expected: 1,
            got: 2,
        };
        assert_eq!(e.to_string(), "gate kind NOT requires 1 fanins, got 2");
        let e = NetlistError::Parse {
            line: 3,
            message: "missing `=`".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
