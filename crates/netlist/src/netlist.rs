//! The flat gate-level [`Netlist`] container.

use std::collections::HashMap;

use crate::{Gate, GateId, GateKind, NetlistError};

/// A flat gate-level netlist.
///
/// Gates are stored in a dense table indexed by [`GateId`]; each gate drives
/// exactly one net, so the gate id doubles as the net id. Primary inputs,
/// primary outputs and flip-flops are tracked in dedicated index lists.
///
/// The structure is append-only: gates are never deleted, which keeps every
/// `GateId` (and every fault site derived from one) stable across transforms
/// such as scan insertion or test-point insertion.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    pis: Vec<GateId>,
    pos: Vec<GateId>,
    dffs: Vec<GateId>,
    by_name: HashMap<String, GateId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of gates (including inputs, output markers and DFFs).
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.pos.len()
    }

    /// Number of D flip-flops.
    #[inline]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Primary input gate ids, in creation order.
    #[inline]
    pub fn inputs(&self) -> &[GateId] {
        &self.pis
    }

    /// Primary output marker gate ids, in creation order.
    #[inline]
    pub fn outputs(&self) -> &[GateId] {
        &self.pos
    }

    /// Flip-flop gate ids, in creation order. The scan-chain order used by
    /// the `dft-scan` crate is defined over this list.
    #[inline]
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Borrows a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Looks up a gate id by net name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(GateId, &Gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Ids of all gates, in id order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len() as u32).map(GateId)
    }

    fn intern_name(&mut self, requested: &str, id: GateId) -> String {
        let name = if requested.is_empty() || self.by_name.contains_key(requested) {
            // Deduplicate silently: transforms frequently clone cell names.
            let mut n = 0usize;
            loop {
                let candidate = if requested.is_empty() {
                    format!("n{}", id.0)
                } else {
                    format!("{requested}_{n}")
                };
                if !self.by_name.contains_key(&candidate) {
                    break candidate;
                }
                n += 1;
            }
        } else {
            requested.to_owned()
        };
        self.by_name.insert(name.clone(), id);
        name
    }

    fn push_gate(&mut self, kind: GateKind, fanins: Vec<GateId>, name: &str) -> GateId {
        let id = GateId(self.gates.len() as u32);
        let name = self.intern_name(name, id);
        for &f in &fanins {
            self.gates[f.index()].fanouts.push(id);
        }
        self.gates.push(Gate {
            kind,
            fanins,
            fanouts: Vec::new(),
            name,
        });
        id
    }

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self, name: &str) -> GateId {
        let id = self.push_gate(GateKind::Input, Vec::new(), name);
        self.pis.push(id);
        id
    }

    /// Adds a primary output marker reading `src` and returns its id.
    pub fn add_output(&mut self, src: GateId, name: &str) -> GateId {
        let id = self.push_gate(GateKind::Output, vec![src], name);
        self.pos.push(id);
        id
    }

    /// Adds a D flip-flop whose D pin reads `d` and returns its id (the Q
    /// net).
    pub fn add_dff(&mut self, d: GateId, name: &str) -> GateId {
        let id = self.push_gate(GateKind::Dff, vec![d], name);
        self.dffs.push(id);
        id
    }

    /// Adds a combinational gate and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the fanin count violates the kind's arity (use
    /// [`Netlist::try_add_gate`] for a fallible version), or if `kind` is
    /// `Input`/`Output`/`Dff` (use the dedicated methods).
    pub fn add_gate(&mut self, kind: GateKind, fanins: Vec<GateId>, name: &str) -> GateId {
        self.try_add_gate(kind, fanins, name)
            .expect("invalid gate construction")
    }

    /// Fallible variant of [`Netlist::add_gate`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the fanin count does not match
    /// the kind's arity, or if a variadic gate has no fanins.
    pub fn try_add_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<GateId>,
        name: &str,
    ) -> Result<GateId, NetlistError> {
        assert!(
            !matches!(kind, GateKind::Input | GateKind::Output | GateKind::Dff),
            "use add_input/add_output/add_dff for {kind}"
        );
        match kind.arity() {
            Some(n) if fanins.len() != n => {
                return Err(NetlistError::BadArity {
                    kind: kind.bench_name(),
                    expected: n,
                    got: fanins.len(),
                })
            }
            None if fanins.is_empty() => {
                return Err(NetlistError::BadArity {
                    kind: kind.bench_name(),
                    expected: 1,
                    got: 0,
                })
            }
            _ => {}
        }
        for &f in &fanins {
            assert!(f.index() < self.gates.len(), "fanin {f} out of range");
        }
        Ok(self.push_gate(kind, fanins, name))
    }

    /// Replaces pin `pin` of gate `gate` so it reads `new_src` instead,
    /// updating fanout lists on both the old and new drivers.
    ///
    /// This is the primitive used by scan insertion and test-point insertion.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range for the gate.
    pub fn rewire_fanin(&mut self, gate: GateId, pin: usize, new_src: GateId) {
        let old_src = self.gates[gate.index()].fanins[pin];
        if old_src == new_src {
            return;
        }
        // Remove ONE occurrence of `gate` from the old driver's fanout list.
        let fanouts = &mut self.gates[old_src.index()].fanouts;
        if let Some(pos) = fanouts.iter().position(|&g| g == gate) {
            fanouts.swap_remove(pos);
        }
        self.gates[gate.index()].fanins[pin] = new_src;
        self.gates[new_src.index()].fanouts.push(gate);
    }

    /// The sources of the combinational view: primary inputs plus flip-flop
    /// Q nets (pseudo primary inputs), in that order.
    ///
    /// This ordering defines the meaning of a *test pattern slot*: pattern
    /// bit `i` drives `combinational_sources()[i]`.
    pub fn combinational_sources(&self) -> Vec<GateId> {
        let mut v = Vec::with_capacity(self.pis.len() + self.dffs.len());
        v.extend_from_slice(&self.pis);
        v.extend_from_slice(&self.dffs);
        v
    }

    /// The sinks of the combinational view: primary output markers plus
    /// flip-flop gate ids (whose D-pin values are the pseudo primary
    /// outputs), in that order.
    ///
    /// Response bit `i` of a test pattern is observed at
    /// `combinational_sinks()[i]`.
    pub fn combinational_sinks(&self) -> Vec<GateId> {
        let mut v = Vec::with_capacity(self.pos.len() + self.dffs.len());
        v.extend_from_slice(&self.pos);
        v.extend_from_slice(&self.dffs);
        v
    }

    /// Validates structural invariants (fanin/fanout symmetry, name table
    /// consistency). Intended for tests and after hand-built construction.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, g) in self.iter() {
            for &f in &g.fanins {
                if !self.gates[f.index()].fanouts.contains(&id) {
                    return Err(NetlistError::UndefinedNet(format!(
                        "{} missing fanout link to {}",
                        self.gates[f.index()].name,
                        g.name
                    )));
                }
            }
            match self.by_name.get(&g.name) {
                Some(&found) if found == id => {}
                _ => return Err(NetlistError::DuplicateName(g.name.clone())),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate(GateKind::Xor, vec![a, b], "s");
        let c = nl.add_gate(GateKind::And, vec![a, b], "c");
        nl.add_output(s, "s_po");
        nl.add_output(c, "c_po");
        nl
    }

    #[test]
    fn construction_and_counts() {
        let nl = half_adder();
        assert_eq!(nl.num_gates(), 6);
        assert_eq!(nl.num_inputs(), 2);
        assert_eq!(nl.num_outputs(), 2);
        assert_eq!(nl.num_dffs(), 0);
        nl.validate().unwrap();
    }

    #[test]
    fn fanout_lists_are_maintained() {
        let nl = half_adder();
        let a = nl.find("a").unwrap();
        // `a` feeds both the XOR and the AND.
        assert_eq!(nl.gate(a).num_fanouts(), 2);
        assert!(nl.gate(a).is_stem());
    }

    #[test]
    fn name_lookup_and_dedup() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("x");
        let b = nl.add_input("x"); // duplicate request gets a fresh name
        assert_ne!(nl.gate(a).name, nl.gate(b).name);
        assert_eq!(nl.find("x"), Some(a));
        nl.validate().unwrap();
    }

    #[test]
    fn rewire_updates_both_sides() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let inv = nl.add_gate(GateKind::Not, vec![a], "inv");
        nl.rewire_fanin(inv, 0, b);
        assert_eq!(nl.gate(inv).fanins, vec![b]);
        assert!(nl.gate(a).fanouts.is_empty());
        assert_eq!(nl.gate(b).fanouts, vec![inv]);
        nl.validate().unwrap();
    }

    #[test]
    fn rewire_same_source_is_noop() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv = nl.add_gate(GateKind::Not, vec![a], "inv");
        nl.rewire_fanin(inv, 0, a);
        assert_eq!(nl.gate(a).fanouts, vec![inv]);
    }

    #[test]
    fn bad_arity_is_reported() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let err = nl
            .try_add_gate(GateKind::Not, vec![a, a], "bad")
            .unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 2, .. }));
        let err = nl.try_add_gate(GateKind::And, vec![], "bad2").unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 0, .. }));
    }

    #[test]
    fn combinational_view_ordering() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff(a, "q");
        let x = nl.add_gate(GateKind::Xor, vec![a, q], "x");
        nl.add_output(x, "po");
        let sources = nl.combinational_sources();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0], a);
        assert_eq!(sources[1], q);
        let sinks = nl.combinational_sinks();
        assert_eq!(sinks.len(), 2);
        assert_eq!(sinks[1], q);
    }
}
