//! Partially-specified test cubes.
//!
//! ATPG produces *cubes* — assignments where only the care bits needed to
//! detect the target fault are specified. Cubes are the currency of static
//! compaction (merging compatible cubes) and of EDT compression (the GF(2)
//! solver encodes only care bits).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Pattern;

/// A partially-specified test pattern: `Some(bit)` for care bits, `None`
/// for don't-cares.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestCube {
    bits: Vec<Option<bool>>,
}

impl TestCube {
    /// All-X cube of the given width.
    pub fn all_x(width: usize) -> TestCube {
        TestCube {
            bits: vec![None; width],
        }
    }

    /// Builds a cube from raw bits.
    pub fn from_bits(bits: Vec<Option<bool>>) -> TestCube {
        TestCube { bits }
    }

    /// Cube width.
    #[inline]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<bool> {
        self.bits[idx]
    }

    /// Sets the bit at `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize, v: bool) {
        self.bits[idx] = Some(v);
    }

    /// Clears the bit at `idx` back to X.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        self.bits[idx] = None;
    }

    /// Raw access to the bits.
    #[inline]
    pub fn bits(&self) -> &[Option<bool>] {
        &self.bits
    }

    /// Number of specified (care) bits.
    pub fn care_bits(&self) -> usize {
        self.bits.iter().filter(|b| b.is_some()).count()
    }

    /// Care-bit density in `[0, 1]`.
    pub fn care_density(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.care_bits() as f64 / self.bits.len() as f64
    }

    /// `true` if the two cubes agree on every bit where both are
    /// specified.
    pub fn compatible(&self, other: &TestCube) -> bool {
        debug_assert_eq!(self.width(), other.width());
        self.bits
            .iter()
            .zip(&other.bits)
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Merges `other` into `self` (union of care bits).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the cubes are incompatible; call
    /// [`TestCube::compatible`] first.
    pub fn merge(&mut self, other: &TestCube) {
        debug_assert!(self.compatible(other));
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            if a.is_none() {
                *a = *b;
            }
        }
    }

    /// Fills don't-cares with seeded random values, producing a
    /// fully-specified pattern. Random fill is the industry default: it
    /// lets one deterministic cube detect many untargeted faults.
    pub fn random_fill(&self, seed: u64) -> Pattern {
        let mut rng = StdRng::seed_from_u64(seed);
        self.bits
            .iter()
            .map(|b| b.unwrap_or_else(|| rng.gen_bool(0.5)))
            .collect()
    }

    /// Fills don't-cares with a constant value.
    pub fn fill_with(&self, value: bool) -> Pattern {
        self.bits.iter().map(|b| b.unwrap_or(value)).collect()
    }
}

impl From<Pattern> for TestCube {
    fn from(p: Pattern) -> TestCube {
        TestCube {
            bits: p.into_iter().map(Some).collect(),
        }
    }
}

impl std::fmt::Display for TestCube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.bits {
            let c = match b {
                Some(true) => '1',
                Some(false) => '0',
                None => 'X',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_and_merge() {
        let mut a = TestCube::all_x(4);
        a.set(0, true);
        a.set(2, false);
        let mut b = TestCube::all_x(4);
        b.set(1, true);
        b.set(2, false);
        assert!(a.compatible(&b));
        a.merge(&b);
        assert_eq!(a.to_string(), "11".to_owned() + "0X");
        let mut c = TestCube::all_x(4);
        c.set(0, false);
        assert!(!a.compatible(&c));
    }

    #[test]
    fn care_accounting() {
        let mut c = TestCube::all_x(10);
        assert_eq!(c.care_bits(), 0);
        c.set(3, true);
        c.set(7, false);
        assert_eq!(c.care_bits(), 2);
        assert!((c.care_density() - 0.2).abs() < 1e-12);
        c.clear(3);
        assert_eq!(c.care_bits(), 1);
    }

    #[test]
    fn random_fill_respects_care_bits() {
        let mut c = TestCube::all_x(64);
        c.set(5, true);
        c.set(40, false);
        for seed in 0..10 {
            let p = c.random_fill(seed);
            assert!(p[5]);
            assert!(!p[40]);
        }
        // Different seeds give different fills (overwhelmingly likely).
        assert_ne!(c.random_fill(1), c.random_fill(2));
    }

    #[test]
    fn display_format() {
        let mut c = TestCube::all_x(3);
        c.set(1, true);
        assert_eq!(c.to_string(), "X1X");
    }

    #[test]
    fn from_pattern_is_fully_specified() {
        let c: TestCube = vec![true, false].into();
        assert_eq!(c.care_bits(), 2);
        assert_eq!(c.fill_with(false), vec![true, false]);
    }
}
