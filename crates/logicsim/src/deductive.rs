//! Deductive fault simulation: a second, independent engine.
//!
//! For one pattern, a single forward pass propagates *fault lists* — for
//! every net, the set of faults whose presence would flip that net's
//! value. The union of the lists at the observation points is exactly the
//! set of detected faults. Deductive simulation predates PPSFP (Armstrong
//! 1972) and computes all-faults detection for one pattern in one pass;
//! here it doubles as a cross-check oracle for the bit-parallel engine
//! (see the property tests).
//!
//! Propagation through a gate uses the exact rule: fault `f` is in the
//! output list iff evaluating the gate with every input `i` flipped when
//! `f ∈ list(i)` changes the output — correct for every gate type
//! including XOR and MUX, where the classic controlling-value shortcut
//! does not apply.

use std::collections::{HashMap, HashSet};

use dft_fault::{Fault, FaultSite};
use dft_metrics::MetricsHandle;
use dft_netlist::{GateId, GateKind, Levelization, Netlist};
use dft_trace::TraceHandle;

use crate::Pattern;

/// Deductive (fault-list propagation) simulator.
#[derive(Debug)]
pub struct DeductiveSim<'a> {
    nl: &'a Netlist,
    lv: Levelization,
    sources: Vec<GateId>,
    metrics: MetricsHandle,
    trace: TraceHandle,
}

impl<'a> DeductiveSim<'a> {
    /// Builds a simulator for `nl`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational loop.
    pub fn new(nl: &'a Netlist) -> DeductiveSim<'a> {
        DeductiveSim {
            nl,
            lv: Levelization::compute(nl).expect("netlist must be acyclic"),
            sources: nl.combinational_sources(),
            metrics: MetricsHandle::disabled(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Points pattern/gate-evaluation counters at `metrics`.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> DeductiveSim<'a> {
        self.metrics = metrics;
        self
    }

    /// Points span recording at `trace`: each [`DeductiveSim::detected`]
    /// call records a `deductive_pattern` span (`arg` = universe size).
    pub fn with_trace(mut self, trace: TraceHandle) -> DeductiveSim<'a> {
        self.trace = trace;
        self
    }

    /// Simulates `pattern` once and returns, for every fault in
    /// `universe`, whether the pattern detects it.
    #[deprecated(
        since = "0.6.0",
        note = "use the SimKernel API for batch detection; DeductiveSim remains a \
                test-only cross-check oracle"
    )]
    pub fn detected(&self, pattern: &Pattern, universe: &[Fault]) -> Vec<bool> {
        assert_eq!(pattern.len(), self.sources.len(), "pattern width");
        let _span = self
            .trace
            .span_arg("deductive_pattern", universe.len() as u64);
        let nl = self.nl;

        // Index the universe by site for O(1) local-fault lookup.
        let mut out_faults: HashMap<GateId, Vec<(u32, bool)>> = HashMap::new();
        let mut pin_faults: HashMap<(GateId, u8), Vec<(u32, bool)>> = HashMap::new();
        for (i, f) in universe.iter().enumerate() {
            let stuck = f.kind.stuck_value();
            match f.site {
                FaultSite { gate, pin: None } => {
                    out_faults.entry(gate).or_default().push((i as u32, stuck))
                }
                FaultSite { gate, pin: Some(p) } => pin_faults
                    .entry((gate, p))
                    .or_default()
                    .push((i as u32, stuck)),
            }
        }

        // Good values.
        let mut gate_evals = 0u64;
        let mut value = vec![false; nl.num_gates()];
        for (s, &g) in self.sources.iter().enumerate() {
            value[g.index()] = pattern[s];
        }
        let mut lists: Vec<HashSet<u32>> = vec![HashSet::new(); nl.num_gates()];

        let add_local = |list: &mut HashSet<u32>, faults: Option<&Vec<(u32, bool)>>, good: bool| {
            if let Some(fs) = faults {
                for &(idx, stuck) in fs {
                    if stuck != good {
                        list.insert(idx);
                    }
                }
            }
        };

        for &id in self.lv.order() {
            let g = nl.gate(id);
            match g.kind {
                GateKind::Input | GateKind::Dff => {
                    let mut l = HashSet::new();
                    add_local(&mut l, out_faults.get(&id), value[id.index()]);
                    lists[id.index()] = l;
                    continue;
                }
                GateKind::Const0 | GateKind::Const1 => {
                    value[id.index()] = matches!(g.kind, GateKind::Const1);
                    continue; // constants carry no faults
                }
                _ => {}
            }
            // Per-pin effective lists and values.
            let mut pin_vals: Vec<bool> = Vec::with_capacity(g.fanins.len());
            let mut pin_lists: Vec<HashSet<u32>> = Vec::with_capacity(g.fanins.len());
            for (p, &f) in g.fanins.iter().enumerate() {
                let v = value[f.index()];
                let mut l = lists[f.index()].clone();
                add_local(&mut l, pin_faults.get(&(id, p as u8)), v);
                pin_vals.push(v);
                pin_lists.push(l);
            }
            let good_out = g.kind.eval_bool(&pin_vals);
            gate_evals += 1;
            value[id.index()] = good_out;

            // Exact propagation: a fault flips the output iff the gate
            // evaluated with its flipped pins differs.
            let mut union: HashSet<u32> = HashSet::new();
            for l in &pin_lists {
                union.extend(l.iter().copied());
            }
            let mut out_list: HashSet<u32> = HashSet::new();
            let mut flipped: Vec<bool> = pin_vals.clone();
            for f in union {
                for (p, l) in pin_lists.iter().enumerate() {
                    flipped[p] = pin_vals[p] ^ l.contains(&f);
                }
                gate_evals += 1;
                if g.kind.eval_bool(&flipped) != good_out {
                    out_list.insert(f);
                }
            }
            // Local output faults.
            add_local(&mut out_list, out_faults.get(&id), good_out);
            lists[id.index()] = out_list;
        }

        // Detection: union over PO markers and flop D pins (with the D-pin
        // branch faults added).
        let mut detected = vec![false; universe.len()];
        for &s in nl.combinational_sinks().iter() {
            let g = nl.gate(s);
            if matches!(g.kind, GateKind::Output) {
                for &f in &lists[s.index()] {
                    detected[f as usize] = true;
                }
            } else {
                // Flop sink: the D driver's list plus D-pin faults.
                let d = g.fanins[0];
                for &f in &lists[d.index()] {
                    detected[f as usize] = true;
                }
                let v = value[d.index()];
                if let Some(fs) = pin_faults.get(&(s, 0)) {
                    for &(idx, stuck) in fs {
                        if stuck != v {
                            detected[idx as usize] = true;
                        }
                    }
                }
            }
        }
        if let Some(m) = self.metrics.get() {
            m.deductive_patterns.inc();
            m.deductive_gate_evals.add(gate_evals);
        }
        detected
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // exercises the legacy oracle directly
    use super::*;
    use crate::{FaultSim, PatternSet};
    use dft_fault::universe_stuck_at;
    use dft_netlist::generators::{alu, c17, mac_pe, random_logic, s27};

    fn cross_check(nl: &Netlist, patterns: usize, seed: u64) {
        let universe = universe_stuck_at(nl);
        let ded = DeductiveSim::new(nl);
        let ppsfp = FaultSim::new(nl);
        let ps = PatternSet::random(nl, patterns, seed);
        for p in ps.iter() {
            let d = ded.detected(p, &universe);
            for (i, &fault) in universe.iter().enumerate() {
                assert_eq!(
                    d[i],
                    ppsfp.detects(p, fault),
                    "engines disagree on {} ({})",
                    fault,
                    nl.name()
                );
            }
        }
    }

    #[test]
    fn deductive_matches_ppsfp_on_c17() {
        cross_check(&c17(), 24, 1);
    }

    #[test]
    fn deductive_matches_ppsfp_on_s27() {
        cross_check(&s27(), 24, 2);
    }

    #[test]
    fn deductive_matches_ppsfp_on_alu() {
        cross_check(&alu(4), 12, 3);
    }

    #[test]
    fn deductive_matches_ppsfp_on_mac() {
        cross_check(&mac_pe(2), 8, 4);
    }

    #[test]
    fn deductive_matches_ppsfp_on_random_logic() {
        for seed in 0..4 {
            cross_check(&random_logic(8, 120, seed), 8, seed ^ 0xD);
        }
    }

    #[test]
    fn xor_reconvergence_handled_exactly() {
        // A fault reaching both XOR inputs cancels: x = a XOR a' where
        // both branches carry the same fault list. Deductive must NOT
        // report it at the output.
        use dft_netlist::{GateKind, Netlist};
        let mut nl = Netlist::new("xr");
        let a = nl.add_input("a");
        let b1 = nl.add_gate(GateKind::Buf, vec![a], "b1");
        let b2 = nl.add_gate(GateKind::Buf, vec![a], "b2");
        let x = nl.add_gate(GateKind::Xor, vec![b1, b2], "x");
        nl.add_output(x, "po");
        let universe = universe_stuck_at(&nl);
        let ded = DeductiveSim::new(&nl);
        let det = ded.detected(&vec![false], &universe);
        // a SA1 flips both XOR inputs -> output unchanged -> undetected.
        let a_sa1 = universe
            .iter()
            .position(|f| *f == Fault::stuck_at_output(a, true))
            .unwrap();
        assert!(!det[a_sa1], "reconvergent cancellation missed");
        // But b1 SA1 (single branch) flips the output -> detected.
        let b1_sa1 = universe
            .iter()
            .position(|f| *f == Fault::stuck_at_output(b1, true))
            .unwrap();
        assert!(det[b1_sa1]);
    }
}
