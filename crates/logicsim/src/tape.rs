//! Compile-once levelized gate tape with 256-pattern-wide evaluation.
//!
//! [`GateTape::compile`] makes one pass over a [`Netlist`] and produces a
//! flat, levelized, structure-of-arrays instruction tape: gates renumbered
//! into `(level, GateId)` order, fanin/fanout adjacency flattened into
//! `u32` range arrays, and per-level slices precomputed. The tape is
//! immutable and reused across every pattern set, so the graph walk that
//! the legacy simulators repeat per evaluation is paid exactly once.
//!
//! Evaluation is 256 patterns per pass: values are [`WideWord`]s —
//! `[u64; 4]` lanes, laid out so each lane is one legacy 64-pattern block
//! (`std::simd`-ready; the lane loops vectorize as straight-line code).
//! Fault propagation replaces the legacy level-sorted insertion frontier
//! with per-level buckets, which removes both the quadratic frontier
//! insert and the per-gate fanin allocation from the hot path.
//!
//! Detection semantics are bit-identical to the legacy engines: the
//! detect word of a (fault, pattern block) is an exact function of both,
//! and first-detection order falls out of scanning blocks (and lanes
//! within a wide block) in pattern order.

use dft_fault::{Fault, FaultSite};
use dft_netlist::{GateId, GateKind, Levelization, Netlist};

use crate::PatternSet;

/// Number of 64-bit lanes in a [`WideWord`].
pub const LANES: usize = 4;

/// Patterns evaluated per wide pass.
pub const WIDE_PATTERNS: usize = 64 * LANES;

/// One simulation value for 256 patterns: lane `l` carries patterns
/// `64*l .. 64*(l+1)` of the wide block, in the same bit layout as the
/// legacy 64-pattern `u64` words.
pub type WideWord = [u64; LANES];

const WIDE_ZERO: WideWord = [0; LANES];

#[inline]
fn wide_all_zero(w: &WideWord) -> bool {
    w.iter().all(|&x| x == 0)
}

/// `(a ^ b) & mask`, lane-wise.
#[inline]
fn wide_diff(a: &WideWord, b: &WideWord, mask: &WideWord) -> WideWord {
    std::array::from_fn(|l| (a[l] ^ b[l]) & mask[l])
}

/// Evaluates `kind` over gathered wide fanin values (mirror of
/// [`GateKind::eval_word`], lane-parallel).
fn eval_wide_ins(kind: GateKind, ins: &[WideWord]) -> WideWord {
    match kind {
        GateKind::Input => unreachable!("eval on Input gate"),
        GateKind::Const0 => WIDE_ZERO,
        GateKind::Const1 => [!0; LANES],
        GateKind::Output | GateKind::Buf | GateKind::Dff => ins[0],
        GateKind::Not => std::array::from_fn(|l| !ins[0][l]),
        GateKind::And => ins
            .iter()
            .fold([!0; LANES], |acc, w| std::array::from_fn(|l| acc[l] & w[l])),
        GateKind::Nand => {
            let v = ins
                .iter()
                .fold([!0; LANES], |acc, w| std::array::from_fn(|l| acc[l] & w[l]));
            std::array::from_fn(|l| !v[l])
        }
        GateKind::Or => ins
            .iter()
            .fold(WIDE_ZERO, |acc, w| std::array::from_fn(|l| acc[l] | w[l])),
        GateKind::Nor => {
            let v = ins
                .iter()
                .fold(WIDE_ZERO, |acc, w| std::array::from_fn(|l| acc[l] | w[l]));
            std::array::from_fn(|l| !v[l])
        }
        GateKind::Xor => ins
            .iter()
            .fold(WIDE_ZERO, |acc, w| std::array::from_fn(|l| acc[l] ^ w[l])),
        GateKind::Xnor => {
            let v = ins
                .iter()
                .fold(WIDE_ZERO, |acc, w| std::array::from_fn(|l| acc[l] ^ w[l]));
            std::array::from_fn(|l| !v[l])
        }
        GateKind::Mux2 => {
            std::array::from_fn(|l| (!ins[0][l] & ins[1][l]) | (ins[0][l] & ins[2][l]))
        }
    }
}

/// A compiled, levelized, SoA representation of a netlist's combinational
/// view. Build once with [`GateTape::compile`], then evaluate any number
/// of pattern sets against it.
///
/// Gates are renumbered into dense *tape positions* sorted by
/// `(level, GateId)`; every adjacency array below is indexed by position,
/// so the forward pass is a single cache-friendly sweep and fault events
/// always flow toward strictly higher positions.
#[derive(Debug)]
pub struct GateTape {
    /// Gate function per position.
    kinds: Vec<GateKind>,
    /// CSR ranges into `fanins`; position `p`'s fanins are
    /// `fanins[fanin_start[p]..fanin_start[p+1]]` (pin order preserved;
    /// a flop's single fanin is its D driver).
    fanin_start: Vec<u32>,
    fanins: Vec<u32>,
    /// CSR ranges into `fanouts`: the *combinational* readers of each
    /// position (flip-flop readers are excluded — their capture is
    /// observation, not propagation).
    fanout_start: Vec<u32>,
    fanouts: Vec<u32>,
    /// Number of levels (`max_level + 1`).
    num_levels: usize,
    /// Position → original [`GateId`].
    orig: Vec<GateId>,
    /// Original gate index → position.
    pos_of: Vec<u32>,
    /// Positions of the combinational sources, in pattern-bit order.
    sources: Vec<u32>,
    /// Position whose value each sink reports: the sink itself for PO
    /// markers, the D driver for flip-flops.
    sink_value_pos: Vec<u32>,
    /// `true` when a change at this position is observable: the position
    /// is a PO marker, or its value is captured by a sink flop's D pin
    /// (same observability rule as the legacy detection scan).
    observable: Vec<bool>,
    /// Positions evaluated by a forward pass (everything but
    /// inputs/flops), in tape order.
    eval_list: Vec<u32>,
    /// Hot-loop metadata packed per position (plus one sentinel record):
    /// the scalar propagation path reads `nodes[pos]`/`nodes[pos + 1]`
    /// instead of touching four parallel arrays, so one injection event
    /// costs two adjacent 12-byte loads for all of kind, observability,
    /// and both CSR ranges.
    nodes: Vec<Node>,
}

/// Per-position hot metadata; see [`GateTape::nodes`]. The CSR *ends*
/// live in the following record (`nodes[p + 1]`), like the `*_start`
/// arrays.
#[derive(Debug, Clone, Copy)]
struct Node {
    fanin_start: u32,
    fanout_start: u32,
    kind: GateKind,
    observable: bool,
    /// Branchless evaluation selector: `OP_AND`/`OP_OR`/`OP_XOR` fold the
    /// fanins with one bitwise op (single-fanin kinds degenerate to a
    /// copy), `OP_OTHER` falls back to a `kind` match (Mux2, constants).
    op: u8,
    /// 1 when the folded value is complemented (Nand/Nor/Xnor/Not).
    inv: u8,
}

const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_XOR: u8 = 2;
const OP_OTHER: u8 = 3;

impl Node {
    fn classify(kind: GateKind) -> (u8, u8) {
        match kind {
            GateKind::And | GateKind::Buf | GateKind::Output | GateKind::Dff => (OP_AND, 0),
            GateKind::Nand | GateKind::Not => (OP_AND, 1),
            GateKind::Or => (OP_OR, 0),
            GateKind::Nor => (OP_OR, 1),
            GateKind::Xor => (OP_XOR, 0),
            GateKind::Xnor => (OP_XOR, 1),
            GateKind::Mux2 | GateKind::Const0 | GateKind::Const1 | GateKind::Input => (OP_OTHER, 0),
        }
    }
}

impl GateTape {
    /// Compiles `nl` into a tape. One pass: levelize, renumber, flatten.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational loop.
    pub fn compile(nl: &Netlist) -> GateTape {
        let lv = Levelization::compute(nl).expect("netlist must be acyclic");
        let n = nl.num_gates();

        // Renumber into (level, GateId) order: a valid evaluation order
        // (every combinational fanin has a strictly lower level), and
        // deterministic within a level.
        let mut by_level: Vec<GateId> = (0..n as u32).map(GateId).collect();
        by_level.sort_by_key(|&id| (lv.level(id), id));
        let mut pos_of = vec![0u32; n];
        for (pos, &id) in by_level.iter().enumerate() {
            pos_of[id.index()] = pos as u32;
        }

        let sink_ids = nl.combinational_sinks();
        let mut is_sink = vec![false; n];
        for &s in &sink_ids {
            is_sink[s.index()] = true;
        }

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_start = Vec::with_capacity(n + 1);
        let mut fanins = Vec::new();
        let mut fanout_start = Vec::with_capacity(n + 1);
        let mut fanouts = Vec::new();
        let mut observes_dff = vec![false; n];
        let mut eval_list = Vec::new();
        fanin_start.push(0);
        fanout_start.push(0);
        for (pos, &id) in by_level.iter().enumerate() {
            let g = nl.gate(id);
            kinds.push(g.kind);
            fanins.extend(g.fanins.iter().map(|f| pos_of[f.index()]));
            fanin_start.push(fanins.len() as u32);
            for &fo in &g.fanouts {
                match nl.gate(fo).kind {
                    GateKind::Dff => {
                        if is_sink[fo.index()] {
                            observes_dff[pos] = true;
                        }
                    }
                    GateKind::Input => {}
                    _ => fanouts.push(pos_of[fo.index()]),
                }
            }
            fanout_start.push(fanouts.len() as u32);
            if !matches!(g.kind, GateKind::Input | GateKind::Dff) {
                eval_list.push(pos as u32);
            }
        }

        let observable: Vec<bool> = kinds
            .iter()
            .zip(&observes_dff)
            .map(|(k, &o)| matches!(k, GateKind::Output) || o)
            .collect();

        let mut nodes: Vec<Node> = (0..n)
            .map(|p| {
                let (op, inv) = Node::classify(kinds[p]);
                Node {
                    fanin_start: fanin_start[p],
                    fanout_start: fanout_start[p],
                    kind: kinds[p],
                    observable: observable[p],
                    op,
                    inv,
                }
            })
            .collect();
        // Sentinel: `nodes[p + 1]` is always a valid CSR end.
        nodes.push(Node {
            fanin_start: fanins.len() as u32,
            fanout_start: fanouts.len() as u32,
            kind: GateKind::Input,
            observable: false,
            op: OP_OTHER,
            inv: 0,
        });

        let sources: Vec<u32> = nl
            .combinational_sources()
            .iter()
            .map(|s| pos_of[s.index()])
            .collect();
        let mut sink_value_pos = Vec::with_capacity(sink_ids.len());
        for &s in &sink_ids {
            let pos = pos_of[s.index()];
            sink_value_pos.push(if matches!(nl.gate(s).kind, GateKind::Dff) {
                pos_of[nl.gate(s).fanins[0].index()]
            } else {
                pos
            });
        }

        GateTape {
            kinds,
            fanin_start,
            fanins,
            fanout_start,
            fanouts,
            num_levels: lv.max_level() as usize + 1,
            orig: by_level,
            pos_of,
            sources,
            sink_value_pos,
            observable,
            eval_list,
            nodes,
        }
    }

    /// Number of tape positions (= gates).
    #[inline]
    pub fn num_positions(&self) -> usize {
        self.kinds.len()
    }

    /// Number of topological levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Wide gate evaluations per forward pass (a constant of the tape).
    #[inline]
    pub fn evals_per_pass(&self) -> u64 {
        self.eval_list.len() as u64
    }

    /// Tape position of a gate.
    #[inline]
    pub fn position(&self, id: GateId) -> usize {
        self.pos_of[id.index()] as usize
    }

    /// Original gate at a tape position.
    #[inline]
    pub fn gate_at(&self, pos: usize) -> GateId {
        self.orig[pos]
    }

    /// Tape position of the net a fault site refers to (the gate's own
    /// net for stem faults, the driving net for pin faults).
    #[inline]
    pub fn site_position(&self, site: FaultSite) -> usize {
        let gate_pos = self.pos_of[site.gate.index()] as usize;
        match site.pin {
            None => gate_pos,
            Some(pin) => self.fanins[self.fanin_start[gate_pos] as usize + pin as usize] as usize,
        }
    }

    #[inline]
    fn fanin_range(&self, pos: usize) -> &[u32] {
        &self.fanins[self.fanin_start[pos] as usize..self.fanin_start[pos + 1] as usize]
    }

    #[inline]
    fn fanout_range(&self, pos: usize) -> &[u32] {
        &self.fanouts[self.fanout_start[pos] as usize..self.fanout_start[pos + 1] as usize]
    }

    /// Packs patterns `[start, start + 256)` into one [`WideWord`] per
    /// source bit; lane `l` holds patterns `start + 64*l ..`. Returns the
    /// number of valid patterns in the wide block (≤ 256).
    pub fn pack_wide(patterns: &PatternSet, start: usize) -> (Vec<WideWord>, usize) {
        let mut words = vec![WIDE_ZERO; patterns.width()];
        let mut count = 0usize;
        for (lane, s) in (start..start + 64 * LANES).step_by(64).enumerate() {
            if s >= patterns.len() {
                break;
            }
            let (w, c) = patterns.pack_block(s);
            for (src, &word) in w.iter().enumerate() {
                words[src][lane] = word;
            }
            count += c;
        }
        (words, count)
    }

    /// The valid-pattern mask for a wide block of `count` patterns.
    pub fn wide_mask(count: usize) -> WideWord {
        std::array::from_fn(|lane| {
            let c = count.saturating_sub(64 * lane).min(64);
            if c >= 64 {
                !0
            } else {
                (1u64 << c) - 1
            }
        })
    }

    /// Evaluates one wide block: `src[s]` carries 256 values of source
    /// `s`. Fills `vals` with one [`WideWord`] per tape position (flops
    /// carry their Q/source value, as in the legacy good machine).
    pub fn eval_wide(&self, src: &[WideWord], vals: &mut Vec<WideWord>) {
        assert_eq!(src.len(), self.sources.len(), "source width");
        vals.clear();
        vals.resize(self.kinds.len(), WIDE_ZERO);
        for (s, &pos) in self.sources.iter().enumerate() {
            vals[pos as usize] = src[s];
        }
        for &pos in &self.eval_list {
            let p = pos as usize;
            let nd = self.nodes[p];
            let fr = &self.fanins[nd.fanin_start as usize..self.nodes[p + 1].fanin_start as usize];
            // Gather and evaluate fused, reading fanin values in place
            // (all fanins sit at strictly lower positions); same
            // branchless op-mask fold as the scalar propagation path.
            let read = |f: &u32| vals[*f as usize];
            let val = if nd.op != OP_OTHER {
                let m_or = ((nd.op == OP_OR) as u64).wrapping_neg();
                let m_xor = ((nd.op == OP_XOR) as u64).wrapping_neg();
                let m_and = !(m_or | m_xor);
                let inv = (nd.inv as u64).wrapping_neg();
                let mut acc = read(&fr[0]);
                for f in &fr[1..] {
                    let w = read(f);
                    acc = std::array::from_fn(|l| {
                        let both = acc[l] & w[l];
                        let x = acc[l] ^ w[l];
                        (both & m_and) | ((both | x) & m_or) | (x & m_xor)
                    });
                }
                acc.map(|x| x ^ inv)
            } else {
                match nd.kind {
                    GateKind::Mux2 => {
                        let s = read(&fr[0]);
                        let a = read(&fr[1]);
                        let b = read(&fr[2]);
                        std::array::from_fn(|l| (!s[l] & a[l]) | (s[l] & b[l]))
                    }
                    GateKind::Const0 => WIDE_ZERO,
                    GateKind::Const1 => [!0; LANES],
                    _ => unreachable!("inputs are not in the eval list"),
                }
            };
            vals[p] = val;
        }
    }

    /// Extracts the per-sink response words from an [`GateTape::eval_wide`]
    /// result (PO markers report their own value, flops their D pin).
    pub fn sink_words_wide(&self, vals: &[WideWord]) -> Vec<WideWord> {
        self.sink_value_pos
            .iter()
            .map(|&p| vals[p as usize])
            .collect()
    }

    /// Computes the 256-pattern detection word of `fault` against the
    /// wide good values `good` (from [`GateTape::eval_wide`]): bit `k` of
    /// lane `l` set means pattern `64*l + k` of the block detects the
    /// fault. Also returns the number of wide faulty gate evaluations.
    ///
    /// The detect word is exact (complete single-fault propagation), so
    /// it is bit-for-bit the lane-packed concatenation of the legacy
    /// [`crate::FaultSim::detect_word`] results for the four underlying
    /// 64-pattern blocks.
    pub fn detect_wide(
        &self,
        good: &[WideWord],
        mask: &WideWord,
        fault: Fault,
        ws: &mut TapeWorkspace,
    ) -> (WideWord, u64) {
        let forced = if fault.kind.stuck_value() {
            !0u64
        } else {
            0u64
        };

        // Activation: the site must differ from its good value somewhere.
        let site_pos = self.site_position(fault.site);
        if wide_all_zero(&wide_diff(&good[site_pos], &[forced; LANES], mask)) {
            return (WIDE_ZERO, 0);
        }

        ws.begin();
        let mut evals = 0u64;
        let gate_pos = self.pos_of[fault.site.gate.index()] as usize;
        match fault.site.pin {
            // Stem fault: force the net, propagate from it.
            None => ws.set(gate_pos, [forced; LANES]),
            // Branch fault: re-evaluate only the site gate with the
            // forced pin value.
            Some(pin) => match self.kinds[gate_pos] {
                // A fault on a flop's D pin (or a PO marker pin) is
                // observed directly in the captured value.
                GateKind::Dff | GateKind::Output => {
                    let d = good[self.fanin_range(gate_pos)[0] as usize];
                    return (wide_diff(&d, &[forced; LANES], mask), 0);
                }
                kind => {
                    ws.ins.clear();
                    for (i, &f) in self.fanin_range(gate_pos).iter().enumerate() {
                        ws.ins.push(if i == pin as usize {
                            [forced; LANES]
                        } else {
                            good[f as usize]
                        });
                    }
                    evals += 1;
                    let val = eval_wide_ins(kind, &ws.ins);
                    if wide_all_zero(&wide_diff(&val, &good[gate_pos], mask)) {
                        return (WIDE_ZERO, evals);
                    }
                    ws.set(gate_pos, val);
                }
            },
        }

        let (det, e) = self.propagate_and_detect(good, mask, ws);
        (det, evals + e)
    }

    /// Extracts one 64-pattern lane of a wide evaluation into a packed
    /// `u64`-per-position array (the cache-dense input to
    /// [`TapeWorkspace::load_lane`]).
    pub fn lane_values(vals: &[WideWord], lane: usize) -> Vec<u64> {
        vals.iter().map(|w| w[lane]).collect()
    }

    /// Computes the 64-pattern detection word of `fault` against the lane
    /// of good values loaded via [`TapeWorkspace::load_lane`]: the exact
    /// scalar equivalent of [`GateTape::detect_wide`] restricted to one
    /// legacy block.
    ///
    /// Faults are dropped on first detection and most drops happen in the
    /// first 64 patterns of a wide block, so propagating the first lane
    /// alone — packed u64 values, a quarter of the memory traffic —
    /// before paying for the remaining 192 patterns is the PPSFP fast
    /// path. The workspace keeps a current-value array that doubles as
    /// the good machine (changed entries are restored on the next
    /// injection), so the inner gather is one unconditional load per
    /// fanin — no per-fanin stamp branch.
    ///
    /// The frontier is a position-indexed bitset rather than the wide
    /// path's level buckets: positions are level-sorted and fanouts point
    /// strictly forward, so consuming set bits in increasing position
    /// order visits each gate exactly once, after all of its changed
    /// fanins are final — the same evaluation order the buckets produce.
    /// Scheduling is one idempotent OR (multi-fanin convergence needs no
    /// dedup array), and a consumed sweep leaves the bitset zeroed for
    /// the next injection. Detection folds into the event loop: a gate
    /// changes at most once per injection, so OR-ing the difference of
    /// observable positions as they are set equals the post-hoc scan.
    pub fn detect_lane(&self, mask: u64, fault: Fault, ws: &mut TapeWorkspace) -> (u64, u64) {
        let forced = if fault.kind.stuck_value() {
            !0u64
        } else {
            0u64
        };

        let site_pos = self.site_position(fault.site);
        if (ws.good_lane[site_pos] ^ forced) & mask == 0 {
            return (0, 0);
        }

        ws.begin_lane();
        let mut evals = 0u64;
        let mut det = 0u64;
        let gate_pos = self.pos_of[fault.site.gate.index()] as usize;
        let root = match fault.site.pin {
            None => {
                ws.cur[gate_pos] = forced;
                gate_pos
            }
            Some(pin) => match self.kinds[gate_pos] {
                GateKind::Dff | GateKind::Output => {
                    let d = ws.good_lane[self.fanin_range(gate_pos)[0] as usize];
                    return ((d ^ forced) & mask, 0);
                }
                kind => {
                    ws.ins_lane.clear();
                    for (i, &f) in self.fanin_range(gate_pos).iter().enumerate() {
                        ws.ins_lane.push(if i == pin as usize {
                            forced
                        } else {
                            ws.good_lane[f as usize]
                        });
                    }
                    evals += 1;
                    let val = kind.eval_word(&ws.ins_lane);
                    if (val ^ ws.good_lane[gate_pos]) & mask == 0 {
                        return (0, evals);
                    }
                    ws.cur[gate_pos] = val;
                    gate_pos
                }
            },
        };
        ws.changed.push(root as u32);
        if self.observable[root] {
            det |= (ws.cur[root] ^ ws.good_lane[root]) & mask;
        }

        // The root's fanouts all sit at strictly higher positions, so the
        // sweep starts at the root's word and the root itself can never
        // be rescheduled (no injection-root guard needed). `pending`
        // counts bits set but not yet consumed, so the sweep stops the
        // moment the frontier drains instead of scanning the zero tail of
        // the bitset (events usually die far from the end of the tape).
        ws.sched_dirty = true;
        let mut pending = 0u32;
        for &fo in self.fanout_range(root) {
            let wi = (fo >> 6) as usize;
            let m = 1u64 << (fo & 63);
            pending += (ws.sched[wi] & m == 0) as u32;
            ws.sched[wi] |= m;
        }
        let mut w = root >> 6;
        while pending > 0 {
            // Re-read the word every iteration: a consumed gate may
            // schedule fanouts into its own word (always above the bit
            // just cleared, so the scan never moves backwards, and never
            // below `w`, so `pending > 0` guarantees a bit at or above
            // `w` exists).
            let bits = ws.sched[w];
            if bits == 0 {
                w += 1;
                continue;
            }
            ws.sched[w] = bits & (bits - 1);
            pending -= 1;
            let pos = (w << 6) | bits.trailing_zeros() as usize;
            // All hot per-position metadata comes from two adjacent
            // packed records; the gather is fused with evaluation: `cur`
            // carries faulty values for the current injection's changed
            // positions and good values everywhere else, so each fanin is
            // one load. A scheduled gate always has at least one changed
            // fanin, so there is no dead-input check to skip.
            let nd = self.nodes[pos];
            let nx = self.nodes[pos + 1];
            let fr = &self.fanins[nd.fanin_start as usize..nx.fanin_start as usize];
            let read = |f: &u32| ws.cur[*f as usize];
            evals += 1;
            // Branchless fold for the common kinds: with p = a & b and
            // x = a ^ b, AND = p, OR = p | x, XOR = x; the op masks
            // select one without a data-dependent branch (gate kinds
            // alternate unpredictably along a cone, so a `match` here
            // pays a mispredict per event).
            let val = if nd.op != OP_OTHER {
                let m_or = ((nd.op == OP_OR) as u64).wrapping_neg();
                let m_xor = ((nd.op == OP_XOR) as u64).wrapping_neg();
                let mut acc = read(&fr[0]);
                for f in &fr[1..] {
                    let b = read(f);
                    let p = acc & b;
                    let x = acc ^ b;
                    acc = (p & !(m_or | m_xor)) | ((p | x) & m_or) | (x & m_xor);
                }
                acc ^ (nd.inv as u64).wrapping_neg()
            } else {
                match nd.kind {
                    GateKind::Mux2 => {
                        let s = read(&fr[0]);
                        (!s & read(&fr[1])) | (s & read(&fr[2]))
                    }
                    GateKind::Const0 => 0,
                    GateKind::Const1 => !0,
                    _ => unreachable!("inputs are never scheduled"),
                }
            };
            let d = (val ^ ws.good_lane[pos]) & mask;
            if d == 0 {
                continue; // event died here
            }
            ws.cur[pos] = val;
            ws.changed.push(pos as u32);
            if nd.observable {
                det |= d;
            }
            for &fo in &self.fanouts[nd.fanout_start as usize..nx.fanout_start as usize] {
                let wi = (fo >> 6) as usize;
                let m = 1u64 << (fo & 63);
                pending += (ws.sched[wi] & m == 0) as u32;
                ws.sched[wi] |= m;
            }
        }
        ws.sched_dirty = false;
        (det, evals)
    }

    /// Position-ordered event propagation from the injected roots with
    /// detection folded in (same bitset frontier as the scalar path; see
    /// [`GateTape::detect_lane`]). Mirrors the legacy event semantics
    /// exactly — an event dies where the recomputed value matches the
    /// good value on every live pattern — and never allocates in the
    /// loop. Observability is the legacy rule: PO markers observe their
    /// own value; any changed net feeding a sink flop's D pin is
    /// captured.
    fn propagate_and_detect(
        &self,
        good: &[WideWord],
        mask: &WideWord,
        ws: &mut TapeWorkspace,
    ) -> (WideWord, u64) {
        let mut evals = 0u64;
        let mut det = WIDE_ZERO;
        ws.sched_dirty = true;
        let mut pending = 0u32;
        let mut first = usize::MAX;
        for ri in 0..ws.changed.len() {
            let root = ws.changed[ri] as usize;
            first = first.min(root);
            if self.observable[root] {
                let d = wide_diff(&ws.faulty[root], &good[root], mask);
                for l in 0..LANES {
                    det[l] |= d[l];
                }
            }
            for &fo in self.fanout_range(root) {
                let wi = (fo >> 6) as usize;
                let m = 1u64 << (fo & 63);
                pending += (ws.sched[wi] & m == 0) as u32;
                ws.sched[wi] |= m;
            }
        }
        let mut w = if first == usize::MAX { 0 } else { first >> 6 };
        while pending > 0 {
            let bits = ws.sched[w];
            if bits == 0 {
                w += 1;
                continue;
            }
            ws.sched[w] = bits & (bits - 1);
            pending -= 1;
            let pos = (w << 6) | bits.trailing_zeros() as usize;
            let nd = self.nodes[pos];
            let nx = self.nodes[pos + 1];
            // Gather: a fanin stamped this epoch reads its faulty value,
            // anything else the shared good slice. A scheduled gate
            // always has at least one changed fanin.
            ws.ins.clear();
            for &f in &self.fanins[nd.fanin_start as usize..nx.fanin_start as usize] {
                let fp = f as usize;
                ws.ins.push(if ws.stamp[fp] == ws.epoch {
                    ws.faulty[fp]
                } else {
                    good[fp]
                });
            }
            evals += 1;
            let val = eval_wide_ins(nd.kind, &ws.ins);
            let d = wide_diff(&val, &good[pos], mask);
            if wide_all_zero(&d) {
                continue; // event died here
            }
            ws.set(pos, val);
            if nd.observable {
                for l in 0..LANES {
                    det[l] |= d[l];
                }
            }
            for &fo in &self.fanouts[nd.fanout_start as usize..nx.fanout_start as usize] {
                let wi = (fo >> 6) as usize;
                let m = 1u64 << (fo & 63);
                pending += (ws.sched[wi] & m == 0) as u32;
                ws.sched[wi] |= m;
            }
        }
        ws.sched_dirty = false;
        (det, evals)
    }
}

/// Reusable, allocation-free scratch memory for tape fault propagation
/// (one per worker thread).
#[derive(Debug, Clone)]
pub struct TapeWorkspace {
    faulty: Vec<WideWord>,
    /// Current scalar values for [`GateTape::detect_lane`]: the loaded
    /// good lane with this epoch's changed positions overwritten by their
    /// faulty values. [`TapeWorkspace::begin`] restores changed entries,
    /// so reads never need a stamp check. Shares the stamp/changed
    /// machinery with the wide path (an injection uses one path or the
    /// other, never both within an epoch).
    cur: Vec<u64>,
    /// The packed good lane `cur` is restored against.
    good_lane: Vec<u64>,
    stamp: Vec<u32>,
    epoch: u32,
    changed: Vec<u32>,
    /// Position-indexed frontier bitset, shared by both propagation
    /// paths (an injection uses one path at a time). Zero between
    /// injections; `sched_dirty` marks a sweep that was abandoned
    /// mid-flight (panic) and needs a full clear.
    sched: Vec<u64>,
    sched_dirty: bool,
    /// Fanin gather buffer.
    ins: Vec<WideWord>,
    /// Scalar fanin gather buffer.
    ins_lane: Vec<u64>,
}

impl TapeWorkspace {
    /// Creates a workspace sized for `tape`.
    pub fn new(tape: &GateTape) -> TapeWorkspace {
        let n = tape.num_positions();
        TapeWorkspace {
            faulty: vec![WIDE_ZERO; n],
            cur: vec![0; n],
            good_lane: vec![0; n],
            stamp: vec![0; n],
            // Starts at 1 so a fresh workspace has nothing marked.
            epoch: 1,
            changed: Vec::with_capacity(256),
            sched: vec![0; n.div_ceil(64)],
            sched_dirty: false,
            ins: Vec::with_capacity(8),
            ins_lane: Vec::with_capacity(8),
        }
    }

    /// Loads one packed good lane (from [`GateTape::lane_values`]) as the
    /// baseline for [`GateTape::detect_lane`] injections. Call once per
    /// (worker, block); the per-injection restore in [`Self::begin`]
    /// keeps `cur` synced to it from then on.
    pub fn load_lane(&mut self, good: &[u64]) {
        self.good_lane.copy_from_slice(good);
        self.cur.copy_from_slice(good);
    }

    /// Re-arms the workspace for the next injection. Always restores a
    /// clean state, even if the previous propagation panicked mid-flight.
    fn begin(&mut self) {
        // Undo the previous injection's scalar writes (panic-safe: runs
        // before every injection, whatever happened to the last one).
        for i in 0..self.changed.len() {
            let pos = self.changed[i] as usize;
            self.cur[pos] = self.good_lane[pos];
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: reset (rare; 4G injections).
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.changed.clear();
        if self.sched_dirty {
            self.sched.fill(0);
            self.sched_dirty = false;
        }
    }

    #[inline]
    fn set(&mut self, pos: usize, w: WideWord) {
        if self.stamp[pos] != self.epoch {
            self.stamp[pos] = self.epoch;
            self.changed.push(pos as u32);
        }
        self.faulty[pos] = w;
    }

    /// Re-arms the scalar-lane state for the next
    /// [`GateTape::detect_lane`] injection: undoes the previous
    /// injection's `cur` writes and clears the frontier bitset if a
    /// panic abandoned a sweep (a completed sweep consumes every bit it
    /// sets, so the bitset is normally already zero). The lane path
    /// tracks changes through `changed` alone — no stamps, no epochs —
    /// because the position-ordered sweep touches each gate at most
    /// once.
    fn begin_lane(&mut self) {
        for i in 0..self.changed.len() {
            let pos = self.changed[i] as usize;
            self.cur[pos] = self.good_lane[pos];
        }
        self.changed.clear();
        if self.sched_dirty {
            self.sched.fill(0);
            self.sched_dirty = false;
        }
    }

    /// Reads the faulty value of the gate at `pos` left by the most
    /// recent injection, falling back to the good value.
    #[inline]
    pub fn value_or(&self, pos: usize, good: &[WideWord]) -> WideWord {
        if self.stamp[pos] == self.epoch {
            self.faulty[pos]
        } else {
            good[pos]
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]
    use super::*;
    use crate::{FaultSim, GoodSim, SimWorkspace};
    use dft_fault::universe_stuck_at;
    use dft_netlist::generators::{c17, counter, mac_pe, ripple_adder};

    /// The legacy 64-block detect word for comparison.
    fn legacy_detect(sim: &FaultSim<'_>, ps: &PatternSet, fault: Fault) -> Vec<u64> {
        let mut ws = SimWorkspace::new(sim.good_sim().netlist().num_gates());
        ps.blocks()
            .map(|(_, words, count)| {
                let good = sim.good_sim().eval_block(&words);
                let mask = if count >= 64 { !0 } else { (1u64 << count) - 1 };
                sim.detect_word(&good, mask, fault, &mut ws).0
            })
            .collect()
    }

    #[test]
    fn wide_good_eval_matches_legacy() {
        for nl in [c17(), ripple_adder(8), counter(6), mac_pe(4)] {
            let tape = GateTape::compile(&nl);
            let sim = GoodSim::new(&nl);
            let ps = PatternSet::random(&nl, 300, 7);
            let legacy = sim.simulate_all(&ps);
            let mut vals = Vec::new();
            let mut got = Vec::new();
            let mut start = 0;
            while start < ps.len() {
                let (src, count) = GateTape::pack_wide(&ps, start);
                tape.eval_wide(&src, &mut vals);
                let sinks = tape.sink_words_wide(&vals);
                for k in 0..count {
                    got.push(
                        sinks
                            .iter()
                            .map(|w| (w[k / 64] >> (k % 64)) & 1 == 1)
                            .collect::<Vec<bool>>(),
                    );
                }
                start += WIDE_PATTERNS;
            }
            assert_eq!(got, legacy, "{}", nl.name());
        }
    }

    #[test]
    fn wide_detect_words_match_legacy_lane_for_lane() {
        for nl in [c17(), ripple_adder(6), counter(5), mac_pe(3)] {
            let tape = GateTape::compile(&nl);
            let sim = FaultSim::new(&nl);
            let ps = PatternSet::random(&nl, 200, 23);
            let mut ws = TapeWorkspace::new(&tape);
            let mut vals = Vec::new();
            for fault in universe_stuck_at(&nl) {
                let legacy = legacy_detect(&sim, &ps, fault);
                let mut wide = Vec::new();
                let mut start = 0;
                while start < ps.len() {
                    let (src, count) = GateTape::pack_wide(&ps, start);
                    tape.eval_wide(&src, &mut vals);
                    let mask = GateTape::wide_mask(count);
                    let (det, _) = tape.detect_wide(&vals, &mask, fault, &mut ws);
                    let lanes = count.div_ceil(64);
                    wide.extend_from_slice(&det[..lanes]);
                    start += WIDE_PATTERNS;
                }
                assert_eq!(wide, legacy, "{} fault {fault}", nl.name());
            }
        }
    }

    #[test]
    fn wide_mask_covers_partial_blocks() {
        assert_eq!(GateTape::wide_mask(256), [!0; LANES]);
        assert_eq!(GateTape::wide_mask(64), [!0, 0, 0, 0]);
        assert_eq!(GateTape::wide_mask(65), [!0, 1, 0, 0]);
        assert_eq!(GateTape::wide_mask(3), [0b111, 0, 0, 0]);
        assert_eq!(GateTape::wide_mask(130), [!0, !0, 0b11, 0]);
    }

    #[test]
    fn tape_positions_are_level_sorted() {
        let nl = mac_pe(4);
        let tape = GateTape::compile(&nl);
        let lv = Levelization::compute(&nl).unwrap();
        for p in 1..tape.num_positions() {
            assert!(lv.level(tape.gate_at(p - 1)) <= lv.level(tape.gate_at(p)));
        }
        // Round-trip gate <-> position.
        for p in 0..tape.num_positions() {
            assert_eq!(tape.position(tape.gate_at(p)), p);
        }
    }
}
